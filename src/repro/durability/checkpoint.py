"""The on-disk checkpoint store: MANIFEST + snapshot + recovery journal.

Layout of a checkpoint directory::

    MANIFEST.json    identity: schema, account, config_hash, cadence
    snapshot.json    last compacted full state (atomic, checksummed)
    journal.jsonl    framed delta entries since (at most) that snapshot

Crash-consistency contract
--------------------------
Compaction writes the snapshot *first* (atomic rename), then resets the
journal to a single ``basis`` marker carrying the snapshot's seq and
checksum (atomic rename).  A crash between the two leaves a journal
whose basis *lags* the snapshot — benign, the overlapped entries are
discarded on load.  A journal basis *ahead* of the snapshot can only
mean the snapshot write was lost after the journal moved on
(``stale_snapshot``) and is a hard :class:`RecoveryError`.  Journal
appends can tear mid-line on crash; torn *tails* are truncated under
``repair=True`` and fatal otherwise; corruption anywhere earlier is
always fatal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.common.errors import RecoveryError
from repro.durability.codec import state_checksum
from repro.durability.io import (
    append_journal_entry,
    atomic_write_bytes,
    atomic_write_text,
    frame_entry,
    read_journal,
)
from repro.lint.output import dumps_json

SCHEMA = "repro.durability/1"

__all__ = ["SCHEMA", "CheckpointLoad", "CheckpointStore"]


class CheckpointLoad:
    """Validated contents of a checkpoint directory."""

    def __init__(
        self,
        manifest: dict[str, Any],
        snapshot: dict[str, Any],
        entries: list[dict[str, Any]],
        repairs: list[str],
    ):
        self.manifest = manifest
        self.snapshot = snapshot  # wrapper: schema/seq/time/checksum/state
        self.entries = entries  # journal entries with seq > snapshot seq
        self.repairs = repairs  # torn-tail truncations applied (repair mode)

    @property
    def state(self) -> dict[str, Any]:
        return self.snapshot["state"]


class CheckpointStore:
    """File-format owner for one checkpoint directory.

    The store is deliberately schema-agnostic about *what* is inside the
    snapshot state and journal entries — that vocabulary belongs to
    :mod:`repro.core.optimizer`.  It owns identity (MANIFEST), atomicity,
    framing, sequencing, and corruption detection.
    """

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)
        self.manifest_path = self.directory / "MANIFEST.json"
        self.snapshot_path = self.directory / "snapshot.json"
        self.journal_path = self.directory / "journal.jsonl"

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def initialize(self, *, account: str, config_hash: str, cadence_seconds: float) -> None:
        """Create the directory and write its identity manifest."""
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema": SCHEMA,
            "account": account,
            "config_hash": config_hash,
            "cadence_seconds": cadence_seconds,
        }
        atomic_write_text(self.manifest_path, dumps_json(manifest))

    def write_snapshot(self, *, seq: int, time: float, state: dict[str, Any]) -> None:
        """Compact: publish a full-state snapshot, then reset the journal.

        Ordering matters (see module docstring): snapshot first, basis
        second, so the only crash window produces a *lagging* journal.
        """
        checksum = state_checksum(state)
        wrapper = {
            "schema": SCHEMA,
            "seq": seq,
            "time": time,
            "checksum": checksum,
            "state": state,
        }
        atomic_write_text(self.snapshot_path, dumps_json(wrapper))
        basis = {"seq": seq, "kind": "basis", "checksum": checksum}
        atomic_write_bytes(self.journal_path, frame_entry(basis))

    def append(self, payload: dict[str, Any]) -> None:
        """Append one delta entry (payload must carry a contiguous seq)."""
        append_journal_entry(self.journal_path, payload)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def load(
        self, *, expected_config_hash: str | None = None, repair: bool = False
    ) -> CheckpointLoad:
        """Read and validate every artifact; all-or-nothing."""
        manifest = self._read_manifest()
        if expected_config_hash is not None and manifest["config_hash"] != expected_config_hash:
            raise RecoveryError(
                f"checkpoint config_hash {manifest['config_hash']!r} does not match "
                f"the running scenario {expected_config_hash!r}"
            )
        snapshot = self._read_snapshot()
        scan = read_journal(self.journal_path, start_seq=None, repair=repair)
        repairs = [f"truncated torn journal tail ({scan.torn_tail})"] if scan.torn_tail else []
        if not scan.entries:
            raise RecoveryError("journal.jsonl has no basis entry")
        basis = scan.entries[0]
        if basis.get("kind") != "basis":
            raise RecoveryError("journal.jsonl does not start with a basis entry")
        if basis["seq"] > snapshot["seq"]:
            raise RecoveryError(
                f"stale snapshot: journal basis seq {basis['seq']} is ahead of "
                f"snapshot seq {snapshot['seq']} (snapshot write was lost)"
            )
        if basis["seq"] == snapshot["seq"] and basis["checksum"] != snapshot["checksum"]:
            raise RecoveryError("journal basis checksum does not match the snapshot")
        entries = [entry for entry in scan.entries[1:] if entry["seq"] > snapshot["seq"]]
        expected = snapshot["seq"] + 1
        for entry in entries:
            if entry["seq"] != expected:
                raise RecoveryError(
                    f"journal entry seq {entry['seq']} != expected {expected} after snapshot"
                )
            expected += 1
        return CheckpointLoad(manifest, snapshot, entries, repairs)

    def verify(self, *, expected_config_hash: str | None = None) -> dict[str, Any]:
        """Non-raising validation report (CLI ``durability verify``)."""
        report: dict[str, Any] = {
            "directory": str(self.directory),
            "ok": False,
            "errors": [],
            "snapshot_seq": None,
            "journal_entries": None,
        }
        try:
            load = self.load(expected_config_hash=expected_config_hash, repair=False)
        except RecoveryError as exc:
            report["errors"].append(str(exc))
            return report
        report["ok"] = True
        report["snapshot_seq"] = load.snapshot["seq"]
        report["journal_entries"] = len(load.entries)
        return report

    def _read_manifest(self) -> dict[str, Any]:
        if not self.manifest_path.exists():
            raise RecoveryError(f"missing {self.manifest_path.name}")
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except ValueError as exc:
            raise RecoveryError(f"{self.manifest_path.name} is not valid JSON") from exc
        if not isinstance(manifest, dict) or manifest.get("schema") != SCHEMA:
            raise RecoveryError(
                f"{self.manifest_path.name} schema is not {SCHEMA!r}"
            )
        return manifest

    def _read_snapshot(self) -> dict[str, Any]:
        if not self.snapshot_path.exists():
            raise RecoveryError(f"missing {self.snapshot_path.name}")
        text = self.snapshot_path.read_text()
        if not text.strip():
            raise RecoveryError(f"{self.snapshot_path.name} is empty")
        try:
            wrapper = json.loads(text)
        except ValueError as exc:
            raise RecoveryError(f"{self.snapshot_path.name} is not valid JSON") from exc
        for key in ("schema", "seq", "time", "checksum", "state"):
            if not isinstance(wrapper, dict) or key not in wrapper:
                raise RecoveryError(f"{self.snapshot_path.name} missing {key!r}")
        if wrapper["schema"] != SCHEMA:
            raise RecoveryError(f"{self.snapshot_path.name} schema is not {SCHEMA!r}")
        if state_checksum(wrapper["state"]) != wrapper["checksum"]:
            raise RecoveryError(f"{self.snapshot_path.name} checksum mismatch (corrupt state)")
        return wrapper

    # ------------------------------------------------------------------
    # fault-injection hooks (repro.faults process-level kinds)
    # ------------------------------------------------------------------
    def inject_torn_write(self) -> None:
        """Append only the first half of a framed line (crash mid-append)."""
        line = frame_entry({"seq": -1, "kind": "torn"})
        # Deliberately non-atomic: this hook *simulates* the torn write the
        # atomic helpers exist to prevent.
        with open(self.journal_path, "ab") as handle:  # repro-lint: disable=R019
            handle.write(line[: max(1, len(line) // 2)])

    def inject_truncated_journal(self, drop_bytes: int = 5) -> None:
        """Drop trailing bytes from the journal (lost tail of a write)."""
        size = self.journal_path.stat().st_size
        with open(self.journal_path, "ab") as handle:  # repro-lint: disable=R019
            handle.truncate(max(0, size - drop_bytes))

    def inject_stale_snapshot(self) -> None:
        """Reset the journal as if a compaction ran, without the snapshot.

        Models the ordering bug the store's write discipline exists to
        prevent: the journal basis moves ahead of the snapshot seq, so the
        entries that would rebuild the newer state are gone.
        """
        wrapper = self._read_snapshot()
        basis = {
            "seq": wrapper["seq"] + 1,
            "kind": "basis",
            "checksum": wrapper["checksum"],
        }
        atomic_write_bytes(self.journal_path, frame_entry(basis))
