"""State serialisation primitives shared by every durable component.

The :class:`StateCodec` protocol is the shape a component must implement
to participate in checkpoint/restore: ``state_dict()`` returns a
JSON-serialisable dict that fully determines its mutable state, and
``load_state_dict(state)`` overwrites the live state from such a dict.
Class-level constructors (``Foo.from_state``) exist where a component is
rebuilt from scratch rather than mutated in place.

Encoding conventions (all byte-stable):

- numpy arrays → ``{"dtype", "shape", "b64"}`` with base64 of the raw
  C-order bytes.  No npz: zip containers embed member timestamps and are
  therefore not byte-stable across runs.
- ``WarehouseConfig`` → a sorted-key dict of its six knobs with enum
  members flattened to their names/values.
- floats ride as JSON numbers — ``repr``-based round-tripping in the
  stdlib encoder is exact for finite doubles.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.common.errors import RecoveryError
from repro.common.simtime import Window
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import ScalingPolicy, WarehouseSize

__all__ = [
    "StateCodec",
    "encode_array",
    "decode_array",
    "encode_config",
    "decode_config",
    "encode_window",
    "decode_window",
    "state_checksum",
    "require_keys",
]


@runtime_checkable
class StateCodec(Protocol):
    """A component whose mutable state round-trips through a JSON dict."""

    def state_dict(self) -> dict[str, Any]: ...

    def load_state_dict(self, state: dict[str, Any]) -> None: ...


def encode_array(arr: np.ndarray) -> dict[str, Any]:
    """Encode an ndarray as dtype/shape/base64-of-bytes (byte-stable)."""
    contiguous = np.ascontiguousarray(arr)
    return {
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
        "b64": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(state: dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    raw = base64.b64decode(state["b64"])
    arr = np.frombuffer(raw, dtype=np.dtype(state["dtype"]))
    return arr.reshape(tuple(state["shape"])).copy()


def encode_config(config: WarehouseConfig) -> dict[str, Any]:
    return {
        "size": config.size.name,
        "auto_suspend_seconds": config.auto_suspend_seconds,
        "min_clusters": config.min_clusters,
        "max_clusters": config.max_clusters,
        "scaling_policy": config.scaling_policy.value,
        "max_concurrency": config.max_concurrency,
    }


def decode_config(state: dict[str, Any]) -> WarehouseConfig:
    return WarehouseConfig(
        size=WarehouseSize[state["size"]],
        auto_suspend_seconds=float(state["auto_suspend_seconds"]),
        min_clusters=int(state["min_clusters"]),
        max_clusters=int(state["max_clusters"]),
        scaling_policy=ScalingPolicy(state["scaling_policy"]),
        max_concurrency=int(state["max_concurrency"]),
    )


def encode_window(window: Window) -> dict[str, float]:
    return {"start": window.start, "end": window.end}


def decode_window(state: dict[str, Any]) -> Window:
    return Window(start=float(state["start"]), end=float(state["end"]))


def state_checksum(state: dict[str, Any]) -> str:
    """SHA-256 over the canonical (compact, sorted-key) JSON of ``state``."""
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def require_keys(state: dict[str, Any], keys: tuple[str, ...], owner: str) -> None:
    """Validate a state dict carries every expected key (typed error)."""
    missing = [key for key in keys if key not in state]
    if missing:
        raise RecoveryError(f"{owner} state missing keys: {', '.join(missing)}")
