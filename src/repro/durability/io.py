"""Atomic file primitives and the framed recovery journal.

Every durable control-plane artifact in the repo goes through this module
(lint rule R019 enforces it): writes are tmp-file + ``os.replace`` so a
crash mid-write leaves either the old bytes or the new bytes, never a
torn file.  The journal is the one deliberate exception — it is
append-only, so a crash can tear its *tail*; the framing below exists so
a torn tail is detected (and, in repair mode, truncated) instead of
silently replayed.

Journal framing
---------------
One entry per line::

    <payload-length> <crc32-hex> <compact-json-payload>\n

``payload-length`` is the byte length of the UTF-8 payload, ``crc32-hex``
is ``zlib.crc32`` of those bytes.  Payloads are compact sorted-key JSON so
the same entry always frames to the same bytes.  Entries additionally
carry a ``seq`` field checked to be contiguous by the reader.
"""

from __future__ import annotations

import io as _stdlib_io
import json
import os
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.common.errors import RecoveryError

__all__ = [
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_savez",
    "frame_entry",
    "append_journal_entry",
    "read_journal",
    "JournalScan",
]


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + rename)."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp file + rename).

    The tmp file lives in the destination directory so ``os.replace`` is a
    same-filesystem rename; it is fsync'd before the rename so the rename
    never publishes an empty inode.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_savez(path: Path, *arrays: np.ndarray) -> None:
    """``np.savez`` into an in-memory buffer, then publish atomically.

    Note the resulting *zip container* is not byte-stable across runs (zip
    members carry timestamps); the arrays inside are.  Byte-stable state
    uses the base64 array codec in :mod:`repro.durability.codec` instead.
    """
    buffer = _stdlib_io.BytesIO()
    np.savez(buffer, *arrays)
    atomic_write_bytes(Path(path), buffer.getvalue())


def frame_entry(payload: dict[str, Any]) -> bytes:
    """Serialise one journal entry to its framed line."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return b"%d %08x " % (len(body), zlib.crc32(body)) + body + b"\n"


def append_journal_entry(path: Path, payload: dict[str, Any]) -> None:
    """Append one framed entry to the journal (create the file if absent)."""
    line = frame_entry(payload)
    with open(path, "ab") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


class JournalScan:
    """Result of reading a journal: parsed entries plus tail diagnostics."""

    def __init__(self, entries: list[dict[str, Any]], good_bytes: int, torn_tail: str | None):
        self.entries = entries
        self.good_bytes = good_bytes
        self.torn_tail = torn_tail  # description of the tail defect, if any


def _parse_line(raw: bytes, lineno: int) -> tuple[dict[str, Any] | None, str | None]:
    """Parse one framed line; return (payload, error-description)."""
    if not raw.endswith(b"\n"):
        return None, f"line {lineno}: missing trailing newline (torn write)"
    line = raw[:-1]
    head, sep, body = line.partition(b" ")
    if not sep:
        return None, f"line {lineno}: no framing header"
    crc_hex, sep, body = body.partition(b" ")
    if not sep:
        return None, f"line {lineno}: no checksum field"
    try:
        length = int(head)
    except ValueError:
        return None, f"line {lineno}: non-integer length field"
    if length != len(body):
        return None, f"line {lineno}: length {len(body)} != declared {length}"
    if b"%08x" % zlib.crc32(body) != crc_hex:
        return None, f"line {lineno}: crc mismatch"
    try:
        payload = json.loads(body)
    except ValueError:
        return None, f"line {lineno}: framed payload is not valid JSON"
    if not isinstance(payload, dict) or "seq" not in payload:
        return None, f"line {lineno}: payload missing 'seq'"
    return payload, None


def read_journal(path: Path, *, start_seq: int | None, repair: bool = False) -> JournalScan:
    """Read and validate a framed journal.

    ``start_seq`` is the expected sequence number of the first entry;
    ``None`` accepts whatever the first (checksummed) entry declares and
    enforces contiguity from there — the caller then validates the basis
    against the snapshot.  Corruption anywhere but the final line is
    unconditionally a :class:`RecoveryError` — entries after it cannot be
    trusted.  A corrupt *final* line is the torn-tail case a crash can
    legitimately produce: with ``repair=True`` the file is truncated back
    to the last good entry and the scan succeeds; otherwise it raises.
    """
    path = Path(path)
    if not path.exists():
        return JournalScan([], 0, None)
    data = path.read_bytes()
    entries: list[dict[str, Any]] = []
    good_bytes = 0
    offset = 0
    lineno = 0
    expected = start_seq
    while offset < len(data):
        lineno += 1
        newline = data.find(b"\n", offset)
        raw = data[offset:] if newline < 0 else data[offset : newline + 1]
        payload, error = _parse_line(raw, lineno)
        if payload is not None and expected is None:
            expected = payload["seq"]
        if payload is not None and payload["seq"] != expected:
            payload, error = None, (
                f"line {lineno}: seq {payload['seq']} != expected {expected} (gap or replay)"
            )
        if payload is None:
            at_tail = newline < 0 or newline + 1 == len(data)
            if at_tail and repair:
                with open(path, "ab") as handle:
                    handle.truncate(good_bytes)
                return JournalScan(entries, good_bytes, error)
            kind = "torn journal tail" if at_tail else "mid-journal corruption"
            raise RecoveryError(f"{kind} in {path.name}: {error}")
        entries.append(payload)
        expected += 1
        offset = newline + 1
        good_bytes = offset
    return JournalScan(entries, good_bytes, None)
