"""Command-line tools over the durability layer.

Invocations (via the main CLI)::

    python -m repro.cli durability checkpoint smoke --dir ck/   # run + journal
    python -m repro.cli durability restore --dir ck/            # dry-run restore
    python -m repro.cli durability verify --dir ck/             # artifact audit
    python -m repro.cli durability smoke [--kind torn_write]    # crash-recovery run

``checkpoint`` runs a scenario with checkpoints enabled and leaves the
durable artifacts (MANIFEST.json, snapshot.json, journal.jsonl) behind for
inspection.  ``restore`` performs a *dry-run* recovery: it loads the
artifacts, replays the journal over the snapshot exactly as a live restore
would, and reports what state would come back — without needing the
simulated world the checkpoint was taken in.  ``verify`` audits the
artifacts without replaying.  ``smoke`` runs the full crash-recovery
experiment (:func:`repro.experiments.crash.run_with_recovery`) and writes
the recovery report; CI's ``crash-recovery-smoke`` job is this command.

Exit codes: 0 ok; 1 corruption detected / invariant violated; 2 bad usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from repro.common.errors import RecoveryError
from repro.durability.checkpoint import CheckpointStore
from repro.lint.output import dumps_json


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``durability`` subcommand family."""
    sub = parser.add_subparsers(dest="durability_command", required=True)

    ck = sub.add_parser(
        "checkpoint", help="run a scenario with checkpoints; keep the artifacts"
    )
    ck.add_argument("scenario", help="scenario factory name (e.g. smoke, chaos_smoke)")
    ck.add_argument("--dir", required=True, help="checkpoint directory to write")
    ck.add_argument("--seed", type=int, default=None, help="scenario seed")
    ck.add_argument(
        "--cadence",
        type=float,
        default=2 * 3600.0,
        help="checkpoint cadence in sim seconds (default 7200)",
    )

    restore = sub.add_parser(
        "restore", help="dry-run recovery: replay the journal, report the state"
    )
    restore.add_argument("--dir", required=True, help="checkpoint directory to read")
    restore.add_argument(
        "--repair",
        action="store_true",
        help="truncate a torn journal tail instead of failing on it",
    )

    verify = sub.add_parser("verify", help="audit checkpoint artifacts for corruption")
    verify.add_argument("--dir", required=True, help="checkpoint directory to audit")

    smoke = sub.add_parser(
        "smoke", help="full crash-recovery experiment with byte-compare"
    )
    smoke.add_argument(
        "--scenario", default="smoke", help="scenario factory name (default smoke)"
    )
    smoke.add_argument("--seed", type=int, default=None, help="scenario seed")
    smoke.add_argument(
        "--kind",
        default="crash_at_tick",
        choices=["crash_at_tick", "torn_write", "truncated_journal", "stale_snapshot"],
        help="process fault kind to inject",
    )
    smoke.add_argument(
        "--crash-at",
        type=int,
        default=3,
        dest="crash_at",
        help="1-based checkpoint boundary at which the fault fires",
    )
    smoke.add_argument(
        "--cadence", type=float, default=2 * 3600.0, help="checkpoint cadence (sim s)"
    )
    smoke.add_argument(
        "--report", default=None, help="write the recovery report (JSON) here"
    )


def _scenario_builder(name: str, seed: int | None):
    """A zero-argument builder for a registered scenario factory, or None."""
    import functools

    from repro.experiments.scenarios import SCENARIO_FACTORIES

    factory = SCENARIO_FACTORIES.get(name)
    if factory is None:
        return None
    return factory if seed is None else functools.partial(factory, seed=seed)


def checkpoint(
    name: str, seed: int | None, directory: str, cadence: float, out: IO[str]
) -> int:
    # Imported here: verify/restore stay usable without the experiments stack.
    from repro.core.optimizer import KeeboService

    build = _scenario_builder(name, seed)
    if build is None:
        print(f"error: unknown scenario factory {name!r}", file=sys.stderr)
        return 2
    scenario = build()
    if scenario.keebo_start is None:
        print(f"error: scenario {name!r} never enables the optimizer", file=sys.stderr)
        return 2
    manifest = scenario.manifest()
    scenario.schedule()
    account = scenario.account
    account.run_until(scenario.keebo_start)
    service = KeeboService(account)
    service.onboard_warehouse(
        scenario.warehouse,
        slider=scenario.slider,
        constraints=scenario.constraints,
        config=scenario.optimizer_config,
    )
    service.enable_checkpoints(
        directory, cadence, config_hash=manifest.config_hash
    )
    account.run_until(scenario.horizon)
    service.optimizer(scenario.warehouse).shutdown()
    report = CheckpointStore(directory).verify()
    print(
        f"checkpointed {name!r} (seed={account.rngs.seed}) to {directory}: "
        f"snapshot seq {report['snapshot_seq']}, "
        f"{report['journal_entries']} journal entr(ies)",
        file=out,
    )
    return 0


def restore(directory: str, repair: bool, out: IO[str]) -> int:
    from repro.core.optimizer import merge_checkpoint_entries

    store = CheckpointStore(directory)
    try:
        load = store.load(repair=repair)
        state = merge_checkpoint_entries(load.state, load.entries)
    except RecoveryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"restorable: {directory}", file=out)
    print(
        f"  snapshot seq {load.snapshot['seq']} at t={load.snapshot['time']:g}, "
        f"{len(load.entries)} delta entr(ies), {len(load.repairs)} repair(s)",
        file=out,
    )
    for warehouse in sorted(state["optimizers"]):
        opt = state["optimizers"][warehouse]
        print(
            f"  {warehouse}: {len(opt['ledger'])} ledger entr(ies), "
            f"{len(opt['decisions'])} decision(s), "
            f"{len(opt['actuator']['log'])} actuation(s), "
            f"next tick t={opt['controller_next_fire']:g}",
            file=out,
        )
    for line in load.repairs:
        print(f"  repaired: {line}", file=out)
    return 0


def verify(directory: str, out: IO[str]) -> int:
    report = CheckpointStore(directory).verify()
    print(dumps_json(report), end="", file=out)
    return 0 if report["ok"] else 1


def smoke(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.experiments.crash import run_with_recovery
    from repro.faults import FaultKind

    build = _scenario_builder(args.scenario, args.seed)
    if build is None:
        print(f"error: unknown scenario factory {args.scenario!r}", file=sys.stderr)
        return 2
    result = run_with_recovery(
        build,
        kind=FaultKind(args.kind),
        crash_boundary=args.crash_at,
        cadence_seconds=args.cadence,
    )
    for line in result.summary_lines():
        print(line, file=out)
    if args.report is not None:
        from repro.durability.io import atomic_write_text
        from repro.portal.reports import render_recovery

        atomic_write_text(args.report, dumps_json(result.report()))
        atomic_write_text(args.report + ".md", render_recovery(result.report()))
        print(f"report: {args.report} (+ {args.report}.md)", file=out)
    return 0 if result.ok else 1


def run(args: argparse.Namespace, out: IO[str] | None = None) -> int:
    """Execute a parsed ``durability`` invocation; returns the exit code."""
    out = out if out is not None else sys.stdout
    if args.durability_command == "checkpoint":
        return checkpoint(args.scenario, args.seed, args.dir, args.cadence, out)
    if args.durability_command == "restore":
        return restore(args.dir, args.repair, out)
    if args.durability_command == "verify":
        return verify(args.dir, out)
    return smoke(args, out)
