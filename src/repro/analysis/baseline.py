"""The ratcheting findings baseline.

A baseline is a committed JSON file listing known findings as
``(file, rule_id, message) -> count`` entries (no line numbers — those
churn with every unrelated edit).  The ratchet:

* a finding **not** covered by the baseline fails the run (new debt);
* a baseline entry whose findings are gone (or fewer than blessed) is
  *stale* and fails the run too — the file must be re-blessed with
  ``--update-baseline`` so the recorded count only ever goes down;
* ``--update-baseline`` rewrites the file from the current findings,
  byte-stably.

A missing baseline file is an empty baseline: everything is new.  The
shipped ``analysis-baseline.json`` is empty and must stay empty — fix
findings, don't bless them (docs/ANALYSIS.md).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import IO, Sequence

from repro.lint.findings import Finding
from repro.lint.output import dump_json

BASELINE_VERSION = 1
DEFAULT_BASELINE = "analysis-baseline.json"

_Key = tuple  # (file, rule_id, message)


@dataclass
class Baseline:
    """Blessed finding counts keyed by ``(file, rule_id, message)``."""

    entries: dict = field(default_factory=dict)  # _Key -> int
    errors: list = field(default_factory=list)  # load problems (malformed file)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        baseline = cls()
        path = pathlib.Path(path)
        if not path.exists():
            return baseline
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            baseline.errors.append(f"{path.as_posix()}: unreadable baseline: {exc}")
            return baseline
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            baseline.errors.append(
                f"{path.as_posix()}: unsupported baseline version "
                f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
            )
            return baseline
        for entry in payload.get("entries", []):
            try:
                key = (entry["file"], entry["rule_id"], entry["message"])
                baseline.entries[key] = int(entry["count"])
            except (TypeError, KeyError, ValueError):
                baseline.errors.append(
                    f"{path.as_posix()}: malformed baseline entry {entry!r}"
                )
        return baseline

    def apply(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], int, list[str]]:
        """Split findings into (new, baselined_count, stale_entry_errors)."""
        remaining = dict(self.entries)
        new: list[Finding] = []
        baselined = 0
        for finding in sorted(findings, key=Finding.sort_key):
            key = (finding.file, finding.rule_id, finding.message)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                new.append(finding)
        stale = [
            (
                f"stale baseline entry: {key[0]}: {key[1]} "
                f"({count} blessed finding(s) no longer present: {key[2]!r}); "
                "run --update-baseline to ratchet the count down"
            )
            for key, count in sorted(remaining.items())
            if count > 0
        ]
        return new, baselined, stale


def render_baseline(findings: Sequence[Finding], out: IO[str]) -> None:
    """Serialize the baseline that blesses exactly ``findings``."""
    counts: dict = {}
    for finding in findings:
        key = (finding.file, finding.rule_id, finding.message)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {"count": count, "file": key[0], "message": key[2], "rule_id": key[1]}
            for key, count in sorted(counts.items())
        ],
    }
    dump_json(payload, out)


def write_baseline(findings: Sequence[Finding], path: str | pathlib.Path) -> None:
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as handle:
        render_baseline(findings, handle)
