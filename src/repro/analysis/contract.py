"""R012: the declared architecture contract over the import graph.

The contract assigns every first-level subpackage of the analyzed root
package to a layer (bottom-up).  A module may import (at import time) only
from its own layer or below; function-scoped ("lazy") imports and
``if TYPE_CHECKING:`` imports are exempt — they are the sanctioned way to
break a cycle, and the graph artifact renders them dashed so they stay
reviewable.  Import cycles between modules are always a violation,
whatever the layers say.

The shipped contract for ``repro`` mirrors DESIGN.md: ``common`` at
the bottom; ``warehouse``/``workloads`` below ``costmodel``; ``core``
below ``experiments``/``portal``; ``obs``, ``faults`` and ``parallel``
confined per R009/R011.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.graph import find_cycles, module_graph
from repro.analysis.project import Project
from repro.lint.findings import Finding

RULE_ID = "R012"


@dataclass(frozen=True)
class LayerContract:
    """Bottom-up layer assignment for one root package."""

    package: str
    layers: tuple[tuple[str, ...], ...]

    def rank(self, first_level: str) -> int | None:
        for i, layer in enumerate(self.layers):
            if first_level in layer:
                return i
        return None


#: The architecture contract for the repro codebase itself.
REPRO_CONTRACT = LayerContract(
    package="repro",
    layers=(
        ("common",),
        ("lint", "obs"),
        ("warehouse", "workloads"),
        ("costmodel", "durability", "faults"),
        ("learning",),
        ("core",),
        ("parallel",),
        ("experiments", "portal"),
        ("analysis",),
        ("cli",),
    ),
)


def _first_level(package: str, module: str) -> str | None:
    if module == package:
        return None  # the root __init__ re-export surface may import anything
    parts = module.split(".")
    if parts[0] != package or len(parts) < 2:
        return None
    return parts[1]


def check_layering(project: Project, contract: LayerContract) -> list[Finding]:
    """Layer violations and import cycles for ``contract.package``."""
    findings: list[Finding] = []
    prefix = contract.package + "."
    unknown_flagged: set[str] = set()
    for info in project.sorted_modules():
        src_level = _first_level(contract.package, info.name)
        if src_level is None:
            continue
        src_rank = contract.rank(src_level)
        if src_rank is None:
            if src_level not in unknown_flagged:
                unknown_flagged.add(src_level)
                findings.append(
                    Finding(
                        file=info.ctx.path,
                        line=1,
                        col=0,
                        rule_id=RULE_ID,
                        severity="error",
                        message=(
                            f"subpackage {src_level!r} is not assigned to a layer "
                            "in the architecture contract; declare its place in "
                            "repro.analysis.contract before importing it"
                        ),
                    )
                )
            continue
        for edge in info.edges:
            if edge.lazy or edge.typing_only:
                continue
            if not (edge.target == contract.package or edge.target.startswith(prefix)):
                continue
            dst_level = _first_level(contract.package, edge.target)
            if dst_level is None or dst_level == src_level:
                continue
            dst_rank = contract.rank(dst_level)
            if dst_rank is None:
                continue  # flagged once via the unknown-subpackage finding
            if dst_rank > src_rank:
                findings.append(
                    Finding(
                        file=info.ctx.path,
                        line=edge.line,
                        col=edge.col,
                        rule_id=RULE_ID,
                        severity="error",
                        message=(
                            f"layering violation: {src_level!r} (layer {src_rank}) "
                            f"may not import {dst_level!r} (layer {dst_rank}); "
                            "invert the dependency or make it a lazy "
                            "function-scoped import"
                        ),
                    )
                )
    findings.extend(_cycle_findings(project, contract))
    return findings


def _cycle_findings(project: Project, contract: LayerContract) -> list[Finding]:
    graph = module_graph(project, contract.package)
    findings: list[Finding] = []
    for cycle in find_cycles(graph):
        members = set(cycle)
        anchor = cycle[0]  # lexicographically smallest member
        info = project.modules[anchor]
        edge = next(
            (e for e in info.edges if e.target in members and not e.lazy and not e.typing_only),
            None,
        )
        path = " -> ".join(cycle + [anchor])
        findings.append(
            Finding(
                file=info.ctx.path,
                line=edge.line if edge else 1,
                col=edge.col if edge else 0,
                rule_id=RULE_ID,
                severity="error",
                message=(
                    f"import cycle: {path}; break it by inverting one edge "
                    "or moving the shared vocabulary down a layer"
                ),
            )
        )
    return findings
