"""R016: spawn-safety of scenario factories and worker-job payloads.

``repro.parallel`` ships work to spawn-context processes as
:class:`~repro.experiments.scenarios.ScenarioSpec` recipes, which the
worker rebuilds by looking the factory up in ``SCENARIO_FACTORIES`` /
``_PROTOCOLS``.  That round-trip only works when everything registered is
importable by name from a fresh interpreter: a module-level ``def``.  A
closure, a ``lambda``, or an ad-hoc registry poke would pickle (or fail to
pickle) parent-process state and silently break the byte-identity
guarantee of ``workers=N`` (docs/PERFORMANCE.md).

This pass proves the property statically across the whole project:

* every function decorated with ``@scenario_factory(...)`` or
  ``@register_protocol(...)`` is a module-level ``def`` — not nested, not
  a lambda, and with no lambda default arguments;
* registries are not bypassed with direct subscript assignment
  (``SCENARIO_FACTORIES[...] = ...``) outside their defining module;
* no ``WorkerJob(...)`` construction smuggles a lambda anywhere inside its
  arguments.
"""

from __future__ import annotations

import ast

from repro.analysis.project import Project
from repro.lint.findings import Finding

RULE_ID = "R016"

#: Decorator names whose registrants must be spawn-safe.
REGISTRARS = frozenset({"scenario_factory", "register_protocol"})
#: Registry dicts that must only be written through their registrars.
REGISTRIES = frozenset({"SCENARIO_FACTORIES", "_PROTOCOLS"})
#: Payload constructors whose arguments cross a process boundary.
PAYLOAD_TYPES = frozenset({"WorkerJob"})


def check_pickle_safety(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for info in project.sorted_modules():
        ctx = info.ctx
        _walk(ctx, ctx.tree.body, depth=0, findings=findings, module=info.name)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                _check_payload_call(ctx, node, findings)
                _check_inline_registration(ctx, node, findings)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                _check_registry_poke(ctx, node, findings, module=info.name)
    findings.sort(key=Finding.sort_key)
    return findings


def _registrar_name(ctx, decorator: ast.expr) -> str | None:
    """The registrar name when ``decorator`` is ``@scenario_factory(...)``."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    qualified = ctx.qualified(target)
    if qualified is None:
        return None
    tail = qualified.split(".")[-1]
    return tail if tail in REGISTRARS else None


def _walk(ctx, body, depth: int, findings: list[Finding], module: str) -> None:
    """Find decorated defs at every nesting depth; flag the nested ones."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                registrar = _registrar_name(ctx, decorator)
                if registrar is None:
                    continue
                if depth > 0:
                    findings.append(
                        _finding(
                            ctx,
                            node,
                            f"@{registrar} registrant {node.name!r} is a nested "
                            "function (closure); spawn workers cannot import it "
                            "by name — move it to module level",
                        )
                    )
                lambda_defaults = [
                    d
                    for d in list(node.args.defaults) + list(node.args.kw_defaults)
                    if isinstance(d, ast.Lambda)
                ]
                for default in lambda_defaults:
                    findings.append(
                        _finding(
                            ctx,
                            default,
                            f"@{registrar} registrant {node.name!r} has a lambda "
                            "default argument; lambdas cannot be pickled to "
                            "spawn workers — use a module-level function",
                        )
                    )
            _walk(ctx, node.body, depth + 1, findings, module)
        elif isinstance(node, ast.ClassDef):
            _walk(ctx, node.body, depth + 1, findings, module)
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.stmt):
                    _walk(ctx, [sub], depth, findings, module)


def _check_inline_registration(ctx, node: ast.Call, findings: list[Finding]) -> None:
    """``scenario_factory("x")(lambda ...)`` — direct lambda registration."""
    if not isinstance(node.func, ast.Call):
        return
    registrar = _registrar_name(ctx, node.func)
    if registrar is None:
        return
    for arg in node.args:
        if isinstance(arg, ast.Lambda):
            findings.append(
                _finding(
                    ctx,
                    arg,
                    f"lambda registered via {registrar}(...); lambdas cannot be "
                    "pickled to spawn workers — register a module-level def",
                )
            )


def _check_payload_call(ctx, node: ast.Call, findings: list[Finding]) -> None:
    target = node.func
    qualified = ctx.qualified(target)
    if qualified is None or qualified.split(".")[-1] not in PAYLOAD_TYPES:
        return
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Lambda):
                findings.append(
                    _finding(
                        ctx,
                        sub,
                        "lambda inside a WorkerJob payload; job payloads are "
                        "pickled to spawn workers and lambdas cannot be — pass "
                        "a module-level function or a data value",
                    )
                )


def _check_registry_poke(ctx, node, findings: list[Finding], module: str) -> None:
    """Direct subscript writes into the factory registries."""
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        if not isinstance(target, ast.Subscript):
            continue
        qualified = ctx.qualified(target.value)
        if qualified is None:
            continue
        name = qualified.split(".")[-1]
        if name not in REGISTRIES:
            continue
        # A bare (undotted) name means the registry is local to this module —
        # that is the registrar implementation itself, the one sanctioned
        # writer.  A dotted name is an imported registry being poked from
        # outside: a bypass.
        if "." not in qualified:
            continue
        findings.append(
            _finding(
                ctx,
                node,
                f"direct write into registry {name}; register through the "
                "decorator so spawn workers can rebuild the entry by name",
            )
        )


def _finding(ctx, node: ast.AST, message: str) -> Finding:
    return Finding(
        file=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=RULE_ID,
        severity="error",
        message=message,
    )
