"""Module import graph: cycle detection and the rendered graph artifact.

The graph has two granularities.  Cycle detection runs on the *module*
graph (``repro.core.optimizer`` -> ``repro.learning.env``), because that is
where a cycle is an actual import-time hazard.  The rendered artifact
aggregates to the *first-level subpackage* graph (``core`` -> ``learning``)
— the granularity the layering contract is declared at — with lazy /
typing-only edges drawn dashed so deliberate cycle breakers stay visible
instead of vanishing.

All output is byte-stable: nodes and edges are emitted in sorted order.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.project import ImportEdge, Project


def module_graph(project: Project, package: str) -> dict[str, set[str]]:
    """Top-level (import-time) edges between modules of ``package``."""
    prefix = package + "."
    graph: dict[str, set[str]] = {}
    for info in project.sorted_modules():
        if not (info.name == package or info.name.startswith(prefix)):
            continue
        targets = graph.setdefault(info.name, set())
        for edge in info.edges:
            if edge.lazy or edge.typing_only:
                continue
            if edge.target == info.name:
                continue
            if edge.target == package or edge.target.startswith(prefix):
                if edge.target in project.modules:
                    targets.add(edge.target)
    return graph


def find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components with more than one node (plus
    self-loops), as sorted module lists; the result itself is sorted so
    repeated runs render identically (Tarjan, iterative)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sorted(sccs)


def _first_level(package: str, module: str) -> str | None:
    """First-level subpackage of ``module`` under ``package``; None for the
    root module itself (``repro``/``repro.__init__`` re-exports are exempt)."""
    if module == package:
        return None
    parts = module.split(".")
    return parts[1] if len(parts) > 1 and parts[0] == package else None


def package_edges(
    project: Project, package: str
) -> dict[tuple[str, str], dict[str, bool]]:
    """Aggregated first-level edges: ``(src, dst) -> {"solid": bool, "lazy": bool}``."""
    prefix = package + "."
    out: dict[tuple[str, str], dict[str, bool]] = {}
    for info in project.sorted_modules():
        src = _first_level(package, info.name)
        if src is None:
            continue
        for edge in info.edges:
            if not (edge.target == package or edge.target.startswith(prefix)):
                continue
            dst = _first_level(package, edge.target)
            if dst is None or dst == src:
                continue
            entry = out.setdefault((src, dst), {"solid": False, "lazy": False})
            if edge.lazy or edge.typing_only:
                entry["lazy"] = True
            else:
                entry["solid"] = True
    return out


def to_dot(project: Project, package: str, layers: Iterable[Iterable[str]] = ()) -> str:
    """Graphviz DOT for the first-level subpackage graph.

    Layers (bottom-up) become ``rank=same`` groups; lazy-only edges are
    dashed.  The text is byte-stable across runs.
    """
    edges = package_edges(project, package)
    nodes = sorted({n for pair in edges for n in pair})
    lines = [
        f'digraph "{package}" {{',
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for i, layer in enumerate(layers):
        members = sorted(set(layer) & set(nodes))
        if members:
            quoted = "; ".join(f'"{m}"' for m in members)
            lines.append(f"  {{ rank=same; {quoted} }}  // layer {i}")
    for node in nodes:
        lines.append(f'  "{node}";')
    for (src, dst) in sorted(edges):
        kinds = edges[(src, dst)]
        style = ' [style=dashed, label="lazy"]' if not kinds["solid"] else ""
        lines.append(f'  "{src}" -> "{dst}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_markdown(project: Project, package: str) -> str:
    """Markdown table of the first-level subpackage graph (byte-stable)."""
    edges = package_edges(project, package)
    by_src: dict[str, list[str]] = {}
    for (src, dst), kinds in sorted(edges.items()):
        label = dst if kinds["solid"] else f"{dst} (lazy)"
        by_src.setdefault(src, []).append(label)
    lines = [
        f"# Import graph: `{package}`",
        "",
        "| subpackage | imports |",
        "|---|---|",
    ]
    for src in sorted(by_src):
        lines.append(f"| `{src}` | {', '.join(f'`{d}`' for d in by_src[src])} |")
    return "\n".join(lines) + "\n"
