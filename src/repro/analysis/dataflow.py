"""Determinism dataflow: R013 RNG provenance, R014 wall-clock taint,
R015 unordered-iteration hazards.

These are intra-procedural taint analyses: each scope (module body,
function body, method body) is walked once in statement order with an
environment mapping local names to taint tags.  The analysis is
deliberately best-effort — calls launder taint, control-flow branches are
walked sequentially without a join — because the goal is catching the
patterns the per-file rules structurally cannot see:

* R013 — an RNG constructed outside :class:`~repro.common.rng.RngRegistry`
  and then *drawn from*, including through a callable alias
  (``mk = np.random.default_rng; rng = mk(7)``) that the per-file R002
  qualified-name check cannot resolve.
* R014 — a wall-clock read whose *value* flows into persisted state, a
  span, or a payload (file writes, ``json``/``pickle`` dumps, recorder
  methods, ``to_dict``-style returns).  R001 already bans the read itself
  inside ``src``; this pass proves the value never escapes in code where
  the read is legitimate (tools, fixtures) and catches laundering through
  arithmetic and f-strings.
* R015 — unsorted filesystem enumeration (``os.listdir``, ``glob``,
  ``Path.glob/rglob/iterdir``) or set-valued instance attributes feeding
  ordered output: materialized into a list/tuple, joined, yielded, or
  appended inside a loop.  Wrapping in ``sorted()`` (or any
  order-insensitive consumer: ``set``, ``sum``, ``min``...) clears the tag.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.project import Project
from repro.lint.determinism import WallClockRule
from repro.lint.findings import Finding

RNG_RULE = "R013"
WALL_RULE = "R014"
ORDER_RULE = "R015"

#: RNG constructors that must only appear in repro/common/rng.py.
RNG_CTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.SeedSequence",
    }
)
#: Files where constructing RNGs is the whole point.
RNG_EXEMPT_SUFFIXES = ("repro/common/rng.py",)

#: Methods that draw from a generator (numpy Generator + random.Random).
DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "randint",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "standard_normal",
        "lognormal",
        "uniform",
        "exponential",
        "poisson",
        "binomial",
        "gamma",
        "beta",
    }
)

#: Wall-clock sources — shared with the per-file R001 rule.
WALL_CALLS = WallClockRule.FORBIDDEN

#: Unsorted filesystem enumeration.
FS_CALLS = frozenset({"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"})
FS_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Calls whose arguments are persisted verbatim.
SINK_CALLS = frozenset({"json.dump", "json.dumps", "pickle.dump", "pickle.dumps"})
#: Method names that persist or export their arguments.
SINK_METHODS = frozenset(
    {"write", "write_text", "writelines", "emit", "record", "record_event", "observe"}
)
#: Functions whose return value is a payload by convention.
PAYLOAD_FUNCS = frozenset({"to_dict", "to_payload", "to_json", "snapshot", "manifest", "payload"})

#: Consumers that are insensitive to input order (clear the R015 tag).
ORDER_NEUTRAL_CALLS = frozenset({"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"})
#: Materializers that freeze iteration order into output.
ORDER_MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})
#: Loop-body method calls that accumulate in iteration order.
ORDERED_EFFECTS = frozenset({"append", "extend", "insert", "write", "writelines"})

#: Builtins that pass taint through unchanged.
PASSTHROUGH = frozenset({"float", "int", "str", "repr", "round", "abs"})

_EMPTY: frozenset = frozenset()


def _without(tags: frozenset, dropped: str) -> frozenset:
    return frozenset(pair for pair in sorted(tags) if pair[0] != dropped)


def _lines(tags: frozenset, wanted: str) -> list:
    """Origin lines carrying ``wanted`` tag, ascending."""
    return [pair[1] for pair in sorted(tags) if pair[0] == wanted]


def check_dataflow(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for info in project.sorted_modules():
        ctx = info.ctx
        rng_exempt = ctx.path.endswith(RNG_EXEMPT_SUFFIXES)
        module_analyzer = _ScopeAnalyzer(ctx, findings, rng_exempt=rng_exempt)
        module_analyzer.run(
            [n for n in ctx.tree.body if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))]
        )
        # Methods are analyzed through their class (so set-valued attribute
        # tracking applies); every other function is its own scope.
        method_ids = {
            id(member)
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
            for member in node.body
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if id(node) not in method_ids:
                    _ScopeAnalyzer(
                        ctx, findings, rng_exempt=rng_exempt, func_name=node.name
                    ).run(node.body)
            elif isinstance(node, ast.ClassDef):
                _analyze_class(ctx, node, findings, rng_exempt=rng_exempt)
    findings.sort(key=Finding.sort_key)
    return findings


def _analyze_class(
    ctx, node: ast.ClassDef, findings: list[Finding], rng_exempt: bool = False
) -> None:
    """Analyze methods, tracking set-valued ``self.x`` attributes (R015)."""
    attr_sets: dict[str, int] = {}
    for method in node.body:
        if isinstance(method, ast.FunctionDef) and method.name == "__init__":
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not _is_set_expr(stmt.value):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr_sets[target.attr] = stmt.lineno
    for method in node.body:
        if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _ScopeAnalyzer(
                ctx,
                findings,
                rng_exempt=rng_exempt,
                func_name=method.name,
                attr_sets=attr_sets,
            ).run(method.body)


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    )


class _ScopeAnalyzer:
    """One forward pass over one scope's statements.

    Environment values are frozensets of ``(tag, origin_line)`` pairs; tags
    are ``"rng"`` (illegitimate generator), ``"rngctor"`` (aliased
    constructor), ``"wall"`` (wall-clock value), ``"fslist"`` (unsorted
    filesystem enumeration).
    """

    def __init__(
        self,
        ctx,
        findings: list[Finding],
        rng_exempt: bool = False,
        func_name: str | None = None,
        attr_sets: dict[str, int] | None = None,
    ):
        self.ctx = ctx
        self.findings = findings
        self.rng_exempt = rng_exempt
        self.func_name = func_name
        self.attr_sets = attr_sets or {}
        self.env: dict[str, frozenset] = {}

    # ----------------------------------------------------------------- driver
    def run(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                file=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=rule_id,
                severity="error",
                message=message,
            )
        )

    # ------------------------------------------------------------- statements
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value)
            ctor_tags = self._callable_alias_tags(stmt.value)
            for target in stmt.targets:
                self._bind(target, tags | ctor_tags)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            tags = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self.env.get(stmt.target.id, _EMPTY) | tags
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            tags = self._eval(stmt.value)
            walls = _lines(tags, "wall")
            if walls and self.func_name in PAYLOAD_FUNCS:
                self._emit(
                    WALL_RULE,
                    stmt,
                    f"wall-clock value (read at line {min(walls)}) returned from "
                    f"payload function {self.func_name}(); payloads must carry "
                    "simulation time only",
                )
        elif isinstance(stmt, ast.For):
            self._for_stmt(stmt)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tags)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Nested function/class defs are analyzed as their own scopes by the
        # module-level driver; nothing to do here.

    def _bind(self, target: ast.expr, tags: frozenset) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tags)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tags)

    def _for_stmt(self, stmt: ast.For) -> None:
        iter_tags = self._eval(stmt.iter, order_sink_ok=True)
        ordered = _has_ordered_effect(stmt.body)
        fs_lines = _lines(iter_tags, "fslist")
        if fs_lines and ordered:
            self._emit(
                ORDER_RULE,
                stmt.iter,
                f"iterating unsorted filesystem listing (from line {fs_lines[0]}) "
                "with order-dependent effects; wrap the listing in sorted()",
            )
        if (
            ordered
            and isinstance(stmt.iter, ast.Attribute)
            and isinstance(stmt.iter.value, ast.Name)
            and stmt.iter.value.id == "self"
            and stmt.iter.attr in self.attr_sets
        ):
            self._emit(
                ORDER_RULE,
                stmt.iter,
                f"iterating set-valued attribute self.{stmt.iter.attr} "
                f"(assigned at line {self.attr_sets[stmt.iter.attr]}) with "
                "order-dependent effects; iterate sorted(...) instead",
            )
        self._bind(stmt.target, _EMPTY)
        self.run(stmt.body)
        self.run(stmt.orelse)

    # ------------------------------------------------------------ expressions
    def _callable_alias_tags(self, expr: ast.expr) -> frozenset:
        """``mk = np.random.default_rng`` tags ``mk`` as an RNG constructor."""
        if self.rng_exempt or not isinstance(expr, (ast.Name, ast.Attribute)):
            return _EMPTY
        qualified = self.ctx.qualified(expr)
        if qualified in RNG_CTORS:
            return frozenset({("rngctor", expr.lineno)})
        if isinstance(expr, ast.Name):
            return frozenset(
                {(t, l) for t, l in self.env.get(expr.id, _EMPTY) if t == "rngctor"}
            )
        return _EMPTY

    def _eval(self, expr: ast.expr, order_sink_ok: bool = False) -> frozenset:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Call):
            return self._call(expr, order_sink_ok)
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.attr_sets
            ):
                return _EMPTY  # handled positionally in _for_stmt
            self._eval(expr.value)
            return _EMPTY
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left) | self._eval(expr.right)
        if isinstance(expr, ast.BoolOp):
            out = _EMPTY
            for value in expr.values:
                out |= self._eval(value)
            return out
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body) | self._eval(expr.orelse)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comp in expr.comparators:
                self._eval(comp)
            return _EMPTY
        if isinstance(expr, ast.JoinedStr):
            out = _EMPTY
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._eval(value.value)
            return out
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            out = _EMPTY
            for elt in expr.elts:
                out |= self._eval(elt)
            return out
        if isinstance(expr, ast.Dict):
            out = _EMPTY
            for key in expr.keys:
                if key is not None:
                    out |= self._eval(key)
            for value in expr.values:
                out |= self._eval(value)
            return out
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            return self._comprehension(expr, order_sink_ok)
        if isinstance(expr, ast.Subscript):
            return self._eval(expr.value)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        return _EMPTY

    def _comprehension(self, expr, order_sink_ok: bool) -> frozenset:
        ordered_output = isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp))
        for gen in expr.generators:
            iter_tags = self._eval(gen.iter, order_sink_ok=True)
            fs_lines = _lines(iter_tags, "fslist")
            if fs_lines and ordered_output and not order_sink_ok:
                self._emit(
                    ORDER_RULE,
                    gen.iter,
                    f"comprehension over unsorted filesystem listing (from line "
                    f"{fs_lines[0]}) freezes a nondeterministic order into its "
                    "output; wrap the listing in sorted()",
                )
            self._bind(gen.target, _EMPTY)
        if isinstance(expr, ast.DictComp):
            self._eval(expr.key)
            self._eval(expr.value)
        else:
            self._eval(expr.elt)
        return _EMPTY

    def _call(self, expr: ast.Call, order_sink_ok: bool) -> frozenset:
        func = expr.func
        qualified = self.ctx.qualified(func)
        func_name = func.id if isinstance(func, ast.Name) else None
        order_neutral = (
            func_name in ORDER_NEUTRAL_CALLS or qualified in ORDER_NEUTRAL_CALLS
        )
        arg_tags = _EMPTY
        all_args = list(expr.args) + [kw.value for kw in expr.keywords]
        for arg in all_args:
            arg_tags |= self._eval(arg, order_sink_ok=order_neutral or order_sink_ok)

        # --- R013: RNG construction and draws -----------------------------
        if not self.rng_exempt:
            if qualified in RNG_CTORS:
                return arg_tags | frozenset({("rng", expr.lineno)})
            if func_name is not None and any(
                tag == "rngctor" for tag, _ in self.env.get(func_name, _EMPTY)
            ):
                alias_lines = _lines(self.env[func_name], "rngctor")
                self._emit(
                    RNG_RULE,
                    expr,
                    f"RNG constructed through alias {func_name!r} (aliased at "
                    f"line {alias_lines[0]}) bypasses RngRegistry; draw streams "
                    "from RngRegistry.stream()/fallback_rng() instead",
                )
                return arg_tags | frozenset({("rng", expr.lineno)})
            if isinstance(func, ast.Attribute) and func.attr in DRAW_METHODS:
                recv_tags = self._eval(func.value)
                rng_lines = _lines(recv_tags, "rng")
                if rng_lines:
                    self._emit(
                        RNG_RULE,
                        expr,
                        f"draw .{func.attr}() on a generator constructed outside "
                        f"RngRegistry (constructed at line {rng_lines[0]}); thread "
                        "a named stream from RngRegistry/fallback_rng instead",
                    )

        # --- R014: wall-clock sources and sinks ---------------------------
        if qualified in WALL_CALLS:
            return frozenset({("wall", expr.lineno)})
        sink_name = None
        if qualified in SINK_CALLS:
            sink_name = qualified
        elif isinstance(func, ast.Attribute) and func.attr in SINK_METHODS:
            sink_name = f".{func.attr}()"
        if sink_name is not None:
            walls = _lines(arg_tags, "wall")
            if walls:
                self._emit(
                    WALL_RULE,
                    expr,
                    f"wall-clock value (read at line {walls[0]}) reaches "
                    f"persisted output via {sink_name}; persist simulation "
                    "time instead",
                )

        # --- R015: filesystem enumeration and materializers ---------------
        if qualified in FS_CALLS or (
            isinstance(func, ast.Attribute) and func.attr in FS_METHODS
        ):
            return arg_tags | frozenset({("fslist", expr.lineno)})
        if order_neutral:
            return _without(arg_tags, "fslist")
        if func_name in ORDER_MATERIALIZERS or (
            isinstance(func, ast.Attribute) and func.attr == "join"
        ):
            fs_lines = _lines(arg_tags, "fslist")
            if fs_lines and not order_sink_ok:
                label = func_name or ".join()"
                self._emit(
                    ORDER_RULE,
                    expr,
                    f"materializing unsorted filesystem listing (from line "
                    f"{fs_lines[0]}) via {label}; wrap it in sorted() first",
                )
            return _without(arg_tags, "fslist")

        # --- passthrough & default ----------------------------------------
        if func_name in PASSTHROUGH:
            return arg_tags
        # Unknown calls launder taint (intra-procedural analysis).
        return _EMPTY


def _has_ordered_effect(body: Iterable[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom, ast.AugAssign)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ORDERED_EFFECTS
            ):
                return True
    return False
