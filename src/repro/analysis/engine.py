"""Analysis driver: build the project once, run every pass, filter, ratchet.

Mirrors ``repro.lint.engine`` in shape — :func:`analyze_paths` returns an
:class:`AnalysisResult`; rendering and exit codes live in the CLI — but the
passes are whole-program, so suppression filtering happens after all
findings exist.  The same ``# repro-lint: disable=Rxxx`` directives work,
scoped per line like the per-file linter.

Rule catalogue (all ``error`` severity):

=====  ======================  ==============================================
R012   layering-contract       import graph obeys the declared architecture
R013   rng-provenance          generators flow from RngRegistry/fallback_rng
R014   wallclock-taint         wall-clock values never reach persisted state
R015   unordered-iteration     no unsorted fs/set order frozen into output
R016   pickle-safety           registered factories/payloads are spawn-safe
R017   exception-contract      vendor surface raises typed ReproErrors only
=====  ======================  ==============================================
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.contract import REPRO_CONTRACT, LayerContract, check_layering
from repro.analysis.dataflow import check_dataflow
from repro.analysis.exceptions import check_exception_contracts
from repro.analysis.pickles import check_pickle_safety
from repro.analysis.project import Project
from repro.lint.findings import Finding
from repro.lint.suppressions import scan_suppressions

#: (rule_id, name, severity, summary) — the analysis rule catalogue.
RULE_DOCS: tuple[tuple[str, str, str, str], ...] = (
    (
        "R012",
        "layering-contract",
        "error",
        "import-time imports obey the declared layer contract and form no cycles",
    ),
    (
        "R013",
        "rng-provenance",
        "error",
        "generators drawn from must flow from RngRegistry/fallback_rng "
        "(catches aliased constructors the per-file R002 cannot resolve)",
    ),
    (
        "R014",
        "wallclock-taint",
        "error",
        "wall-clock values may not reach persisted state, spans, or payloads",
    ),
    (
        "R015",
        "unordered-iteration",
        "error",
        "unsorted filesystem listings / set-valued attributes may not be "
        "frozen into ordered output",
    ),
    (
        "R016",
        "pickle-safety",
        "error",
        "scenario factories, protocols, and WorkerJob payloads are spawn-safe "
        "(no closures, lambdas, or registry bypasses)",
    ),
    (
        "R017",
        "exception-contract",
        "error",
        "the vendor surface (warehouse/faults/core/costmodel) raises only "
        "typed common.errors exceptions",
    ),
)

RULE_IDS: tuple[str, ...] = tuple(doc[0] for doc in RULE_DOCS)


@dataclass
class AnalysisResult:
    """Outcome of one whole-program analysis run."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)  # unparseable files etc.
    stale: list[str] = field(default_factory=list)  # ratchet violations
    files_scanned: int = 0
    modules: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors and not self.stale

    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings or self.stale else 0


def iter_rule_docs() -> Iterator[tuple[str, str, str, str]]:
    yield from RULE_DOCS


def analyze_project(
    project: Project,
    select: Iterable[str] | None = None,
    contract: LayerContract | None = None,
) -> list[Finding]:
    """Run the selected passes over a prepared project (unfiltered)."""
    wanted = _validate_select(select)
    contract = contract if contract is not None else REPRO_CONTRACT
    findings: list[Finding] = []
    if "R012" in wanted:
        findings.extend(check_layering(project, contract))
    if wanted & {"R013", "R014", "R015"}:
        findings.extend(
            f for f in check_dataflow(project) if f.rule_id in wanted
        )
    if "R016" in wanted:
        findings.extend(check_pickle_safety(project))
    if "R017" in wanted:
        findings.extend(check_exception_contracts(project))
    # One import statement can carry several aliases of the same module;
    # identical findings collapse (Finding is frozen, so hashable).
    return sorted(set(findings), key=Finding.sort_key)


def analyze_paths(
    paths: Sequence[str | pathlib.Path],
    select: Iterable[str] | None = None,
    contract: LayerContract | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths`` (the CLI entry point)."""
    wanted = _validate_select(select)
    project = Project.load(paths)
    result = AnalysisResult(
        errors=list(project.errors),
        files_scanned=project.files_scanned,
        modules=len(project.modules),
    )
    raw = analyze_project(project, select=sorted(wanted), contract=contract)
    result.findings, result.suppressed = _filter_suppressions(project, raw, wanted)
    if baseline is not None:
        result.errors.extend(baseline.errors)
        result.findings, result.baselined, result.stale = baseline.apply(
            result.findings
        )
    return result


def _validate_select(select: Iterable[str] | None) -> set:
    if select is None:
        return set(RULE_IDS)
    wanted = {s for s in select}
    unknown = wanted - set(RULE_IDS)
    if unknown:
        raise KeyError(f"unknown analysis rule id(s): {', '.join(sorted(unknown))}")
    return wanted


def _filter_suppressions(
    project: Project, findings: Sequence[Finding], ran: set
) -> tuple[list[Finding], int]:
    """Apply per-line ``# repro-lint: disable=`` directives to the findings.

    Unused-directive detection stays conservative here: only analysis rule
    ids that actually ran are judged (a ``disable=R001`` or ``disable=all``
    belongs to the per-file linter, which owns that check).
    """
    tables = {
        info.ctx.path: scan_suppressions(info.ctx.source, info.ctx.path)
        for info in project.sorted_modules()
    }
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        table = tables.get(finding.file)
        if table is not None and table.is_suppressed(finding.line, finding.rule_id):
            suppressed += 1
        else:
            kept.append(finding)
    for path in sorted(tables):
        kept.extend(tables[path].unused_findings(path, ran, full_run=False))
    kept.sort(key=Finding.sort_key)
    return kept, suppressed
