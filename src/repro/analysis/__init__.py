"""Whole-program static analysis for the repro codebase (docs/ANALYSIS.md).

Layered on :mod:`repro.lint` (which stays the per-file pass runner): both
share one :class:`~repro.lint.findings.Finding` model, the suppression
table, and the JSON/SARIF output machinery in :mod:`repro.lint.output`.
Where the linter rejects constructs a single file can prove wrong, the
analyzer proves cross-module properties: the import graph obeys the
declared layer contract (R012), randomness and wall-clock values flow
where the determinism story says they may (R013–R015), everything shipped
to spawn workers is picklable by name (R016), and the vendor surface
raises only the typed error hierarchy (R017).

Findings ratchet against a committed baseline — see
:mod:`repro.analysis.baseline`.
"""

from repro.analysis.baseline import Baseline, render_baseline, write_baseline
from repro.analysis.contract import REPRO_CONTRACT, LayerContract
from repro.analysis.engine import (
    RULE_DOCS,
    RULE_IDS,
    AnalysisResult,
    analyze_paths,
    analyze_project,
)
from repro.analysis.project import Project

__all__ = [
    "AnalysisResult",
    "Baseline",
    "LayerContract",
    "Project",
    "REPRO_CONTRACT",
    "RULE_DOCS",
    "RULE_IDS",
    "analyze_paths",
    "analyze_project",
    "render_baseline",
    "write_baseline",
]
