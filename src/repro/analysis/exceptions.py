"""R017: only typed errors may be raised on the vendor surface.

Callers of the warehouse client (`warehouse/api.py` operation groups), the
fault injector, and the control loop catch the :class:`ReproError`
hierarchy from ``common/errors.py`` — that is the whole robustness story
of docs/ROBUSTNESS.md: a typed error is handled (degraded snapshot, retry,
breaker), an untyped one escapes to the top and kills the run.  So inside
the vendor-surface packages (``warehouse``, ``faults``, ``core``,
``costmodel``) every ``raise`` of a freshly constructed exception must
resolve — through the whole-program class hierarchy — to a class rooted in
the project's errors module.

The errors module is discovered, not hard-coded: any module named
``*.common.errors``.  That keeps the pass generic over fixture packages in
tests.  Re-raises (``raise``), raises of caught variables, and
``NotImplementedError`` (abstract-surface convention) are out of scope.
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.project import Project
from repro.lint.findings import Finding

RULE_ID = "R017"

#: First-level subpackages forming the vendor surface.
SCOPED_PACKAGES = frozenset({"warehouse", "faults", "core", "costmodel"})
#: Builtin exceptions allowed anywhere (abstract-method convention).
ALLOWED_BUILTINS = frozenset({"NotImplementedError", "StopIteration", "StopAsyncIteration"})


def _errors_modules(project: Project) -> list[str]:
    return sorted(
        name for name in project.modules if name.endswith(".common.errors")
    )


def _is_builtin_exception(name: str) -> bool:
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


def check_exception_contracts(project: Project) -> list[Finding]:
    errors_modules = _errors_modules(project)
    if not errors_modules:
        return []
    error_classes = {
        qualname
        for qualname, cls in project.classes.items()
        if cls.module in errors_modules
    }
    findings: list[Finding] = []
    for errors_module in errors_modules:
        root_package = errors_module.rsplit(".common.errors", 1)[0]
        findings.extend(
            _check_package(project, root_package, error_classes)
        )
    findings.sort(key=Finding.sort_key)
    return findings


def _check_package(
    project: Project, root_package: str, error_classes: set
) -> list[Finding]:
    findings: list[Finding] = []
    prefix = root_package + "."
    for info in project.sorted_modules():
        if not info.name.startswith(prefix):
            continue
        first_level = info.name[len(prefix) :].split(".")[0]
        if first_level not in SCOPED_PACKAGES:
            continue
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            if not isinstance(node.exc, ast.Call):
                continue  # re-raise of a variable: provenance unknowable here
            ctor = info.ctx.qualified(node.exc.func)
            if ctor is None:
                continue
            verdict = _classify(project, info.name, ctor, error_classes)
            if verdict is None:
                continue
            findings.append(
                Finding(
                    file=info.ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=RULE_ID,
                    severity="error",
                    message=(
                        f"raise of untyped {verdict} inside the vendor surface "
                        f"({first_level}); raise a {root_package}.common.errors "
                        "ReproError subclass so callers' typed handling applies"
                    ),
                )
            )
    return findings


def _classify(
    project: Project, module: str, ctor: str, error_classes: set
) -> str | None:
    """Name of the offending exception class, or None when the raise is fine
    (typed, unresolvable, or an allowed builtin)."""
    tail = ctor.split(".")[-1]
    info = project.resolve_class(module, ctor)
    if info is None:
        if "." not in ctor and _is_builtin_exception(ctor):
            return None if ctor in ALLOWED_BUILTINS else ctor
        return None  # not a class we can resolve: no proof, no finding
    # BFS up the (whole-program) class hierarchy looking for an errors-module
    # ancestor.
    seen: set = set()
    queue = [info]
    while queue:
        current = queue.pop(0)
        if current.qualname in error_classes:
            return None
        if current.qualname in seen:
            continue
        seen.add(current.qualname)
        for base in current.bases:
            base_info = project.resolve_class(current.module, base)
            if base_info is not None:
                queue.append(base_info)
    return tail
