"""Command-line front-end for the whole-program analyzer.

Invocations (equivalent)::

    python -m repro.analysis [paths ...]
    python -m repro.cli analyze [paths ...]

Exit codes match the linter: 0 clean, 1 findings or stale baseline
entries, 2 unparseable files or bad usage.  ``--format json`` and
``--format sarif`` are byte-stable; ``--graph PATH`` additionally writes
the first-level import graph (Graphviz DOT, or markdown when the path
ends in ``.md``).  The baseline ratchet is on by default against
``analysis-baseline.json``; ``--update-baseline`` re-blesses the current
findings (docs/ANALYSIS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline, write_baseline
from repro.analysis.contract import REPRO_CONTRACT
from repro.analysis.engine import AnalysisResult, analyze_paths, iter_rule_docs
from repro.analysis.graph import to_dot, to_markdown
from repro.analysis.project import Project
from repro.lint.output import dump_json, render_sarif

#: Bumped whenever the JSON output shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the analyzer's arguments (shared with ``repro.cli analyze``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="R012,R013,...",
        default=None,
        help="comma-separated analysis rule ids to run (default: all)",
    )
    parser.add_argument(
        "--graph",
        metavar="PATH",
        default=None,
        help="write the import-graph artifact (.md for markdown, else DOT)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=DEFAULT_BASELINE,
        help=f"baseline file for the ratchet (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report raw findings without applying the baseline ratchet",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="bless the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the analysis rule catalogue and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Whole-program static analysis for the repro codebase "
        "(layering, determinism dataflow, pickle-safety, exception contracts).",
    )
    configure_parser(parser)
    return parser


def render_human(result: AnalysisResult, out: IO[str]) -> None:
    for finding in result.findings:
        print(finding.render(), file=out)
    for entry in result.stale:
        print(f"error: {entry}", file=out)
    for error in result.errors:
        print(f"error: {error}", file=out)
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_scanned} file(s) "
        f"({result.modules} module(s))"
        + (f", {result.suppressed} suppressed" if result.suppressed else "")
        + (f", {result.baselined} baselined" if result.baselined else "")
        + (f", {len(result.stale)} stale baseline entr(ies)" if result.stale else "")
        + (f", {len(result.errors)} file error(s)" if result.errors else "")
    )
    print(summary, file=out)


def render_json(result: AnalysisResult, out: IO[str]) -> None:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "modules": result.modules,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [f.to_dict() for f in result.findings],
        "stale": list(result.stale),
        "errors": list(result.errors),
        "exit_code": result.exit_code(),
    }
    dump_json(payload, out)


def _write_graph(paths, graph_path: str) -> None:
    project = Project.load(paths)
    if graph_path.endswith(".md"):
        text = to_markdown(project, REPRO_CONTRACT.package)
    else:
        text = to_dot(project, REPRO_CONTRACT.package, REPRO_CONTRACT.layers)
    with open(graph_path, "w", encoding="utf-8") as handle:
        handle.write(text)


def run(args: argparse.Namespace, out: IO[str] | None = None) -> int:
    """Execute a parsed analyze invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if args.list_rules:
        for rule_id, name, severity, summary in iter_rule_docs():
            print(f"{rule_id}  {name:<24} [{severity}] {summary}", file=out)
        return 0
    select = [s.strip() for s in args.select.split(",")] if args.select else None
    baseline = None if args.no_baseline else Baseline.load(args.baseline)
    try:
        if args.update_baseline:
            raw = analyze_paths(args.paths, select=select, baseline=None)
            if raw.errors:
                for error in raw.errors:
                    print(f"error: {error}", file=sys.stderr)
                return 2
            write_baseline(raw.findings, args.baseline)
            print(
                f"baseline updated: {len(raw.findings)} finding(s) blessed "
                f"into {args.baseline}",
                file=out,
            )
            return 0
        result = analyze_paths(args.paths, select=select, baseline=baseline)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.graph:
        _write_graph(args.paths, args.graph)
    if args.format == "json":
        render_json(result, out)
    elif args.format == "sarif":
        render_sarif(
            result.findings,
            list(result.stale) + list(result.errors),
            out,
            tool_name="repro-analyze",
            rule_docs=iter_rule_docs(),
        )
    else:
        render_human(result, out)
    return result.exit_code()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
