"""Whole-program project model: every module parsed once, imports resolved.

The per-file linter sees one :class:`~repro.lint.context.FileContext` at a
time; the analysis passes need the *project* — the set of modules, the
import edges between them (classified top-level / lazy / typing-only), and
the class hierarchy across files.  :class:`Project` builds all of that in a
single deterministic sweep so every pass shares one parse.

Module names are derived from the filesystem by climbing ``__init__.py``
parents, so ``src/repro/core/actuator.py`` becomes ``repro.core.actuator``
regardless of which directory the analyzer was pointed at.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.lint.context import FileContext, dotted_name
from repro.lint.engine import iter_python_files


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a dotted module target.

    ``lazy`` marks function-scoped imports (deliberate cycle breakers that
    do not execute at import time); ``typing_only`` marks imports under
    ``if TYPE_CHECKING:`` (they never execute at all).  Neither kind
    participates in the layering contract or cycle detection, but both are
    kept so the graph artifact can render them as dashed edges.
    """

    source: str  # importing module (dotted)
    target: str  # imported module (dotted, best-effort resolved)
    line: int
    col: int
    lazy: bool = False
    typing_only: bool = False


@dataclass
class ModuleInfo:
    """One parsed module and its outgoing imports."""

    name: str
    ctx: FileContext
    is_package: bool = False
    edges: list[ImportEdge] = field(default_factory=list)

    @property
    def package_parts(self) -> tuple[str, ...]:
        return tuple(self.name.split("."))


@dataclass(frozen=True)
class ClassInfo:
    """A module-level class definition and its (resolved) base names."""

    qualname: str  # module.ClassName
    module: str
    name: str
    bases: tuple[str, ...]  # dotted, import-resolved; may be local names
    line: int


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name for ``path``, climbing ``__init__.py`` parents."""
    if path.name == "__init__.py":
        parts: list[str] = []
        directory = path.parent
    else:
        parts = [path.stem]
        directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        directory = directory.parent
    return ".".join(parts) if parts else path.stem


def _is_type_checking_test(ctx: FileContext, test: ast.expr) -> bool:
    name = ctx.qualified(test)
    return name is not None and name.split(".")[-1] == "TYPE_CHECKING"


class Project:
    """All modules under the analyzed paths, with resolved import edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.errors: list[str] = []
        self.files_scanned: int = 0

    # ------------------------------------------------------------ construction
    @classmethod
    def load(cls, paths: Sequence[str | pathlib.Path]) -> "Project":
        project = cls()
        for raw in paths:
            if not pathlib.Path(raw).exists():
                project.errors.append(
                    f"{pathlib.Path(raw).as_posix()}: no such file or directory"
                )
        for path in iter_python_files(paths):
            project.files_scanned += 1
            try:
                source = path.read_text(encoding="utf-8")
                ctx = FileContext.from_source(source, path.as_posix())
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                project.errors.append(f"{path.as_posix()}: {exc}")
                continue
            project.add_module(
                module_name_for(path), ctx, is_package=path.name == "__init__.py"
            )
        project._resolve_edges()
        return project

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Project":
        """Build a project from ``{dotted_module_name: source}`` (tests)."""
        project = cls()
        for name in sorted(sources):
            path = name.replace(".", "/") + ".py"
            project.files_scanned += 1
            try:
                ctx = FileContext.from_source(sources[name], path)
            except SyntaxError as exc:
                project.errors.append(f"{path}: {exc}")
                continue
            project.add_module(name, ctx)
        project._resolve_edges()
        return project

    def add_module(self, name: str, ctx: FileContext, is_package: bool = False) -> None:
        info = ModuleInfo(name=name, ctx=ctx, is_package=is_package)
        self._collect_imports(info, ctx.tree.body, lazy=False, typing_only=False)
        self._collect_classes(info)
        self.modules[name] = info

    # -------------------------------------------------------------- accessors
    def sorted_modules(self) -> list[ModuleInfo]:
        return [self.modules[name] for name in sorted(self.modules)]

    def root_packages(self) -> list[str]:
        """Distinct top-level package names present in the project."""
        return sorted({name.split(".")[0] for name in self.modules})

    def resolve_module(self, target: str) -> str | None:
        """Longest known module prefix of ``target`` (imports of attributes
        resolve to their defining module), or None for external targets."""
        parts = target.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # ------------------------------------------------------- import collection
    def _collect_imports(
        self,
        info: ModuleInfo,
        body: Sequence[ast.stmt],
        lazy: bool,
        typing_only: bool,
    ) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.edges.append(
                        ImportEdge(
                            source=info.name,
                            target=alias.name,
                            line=node.lineno,
                            col=node.col_offset,
                            lazy=lazy,
                            typing_only=typing_only,
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        target = base
                    else:
                        # ``from pkg import name``: name may be a submodule
                        # or an attribute; record the longer candidate and
                        # let _resolve_edges trim it to a known module.
                        target = f"{base}.{alias.name}" if base else alias.name
                    info.edges.append(
                        ImportEdge(
                            source=info.name,
                            target=target,
                            line=node.lineno,
                            col=node.col_offset,
                            lazy=lazy,
                            typing_only=typing_only,
                        )
                    )
            elif isinstance(node, ast.If):
                branch_typing = typing_only or _is_type_checking_test(info.ctx, node.test)
                self._collect_imports(info, node.body, lazy, branch_typing)
                self._collect_imports(info, node.orelse, lazy, typing_only)
            elif isinstance(node, ast.Try):
                for sub in (node.body, node.orelse, node.finalbody):
                    self._collect_imports(info, sub, lazy, typing_only)
                for handler in node.handlers:
                    self._collect_imports(info, handler.body, lazy, typing_only)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_imports(info, node.body, lazy=True, typing_only=typing_only)
            elif isinstance(node, ast.ClassDef):
                # Class bodies execute at import time: same flags.
                self._collect_imports(info, node.body, lazy, typing_only)
            elif isinstance(node, (ast.With, ast.AsyncWith, ast.For, ast.While)):
                self._collect_imports(info, node.body, lazy, typing_only)

    @staticmethod
    def _resolve_from_base(info: ModuleInfo, node: ast.ImportFrom) -> str | None:
        """Absolute dotted base package for a ``from ... import`` statement."""
        if node.level == 0:
            return node.module or None
        # Relative import: start from the containing package.  For a plain
        # module that is everything but its last name component; a package
        # (``__init__.py``) *is* its own containing package, so it drops one
        # component fewer.
        parts = info.name.split(".")
        drop = node.level - 1 if info.is_package else node.level
        if len(parts) < drop:
            return None
        base_parts = parts[: len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _resolve_edges(self) -> None:
        """Trim from-import attribute targets down to known modules."""
        for name in sorted(self.modules):
            info = self.modules[name]
            resolved: list[ImportEdge] = []
            for edge in info.edges:
                target = self.resolve_module(edge.target)
                if target is not None and target != edge.target:
                    edge = ImportEdge(
                        source=edge.source,
                        target=target,
                        line=edge.line,
                        col=edge.col,
                        lazy=edge.lazy,
                        typing_only=edge.typing_only,
                    )
                resolved.append(edge)
            info.edges = resolved

    # --------------------------------------------------------- class hierarchy
    def _collect_classes(self, info: ModuleInfo) -> None:
        for node in info.ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            bases: list[str] = []
            for base in node.bases:
                name = info.ctx.qualified(base) or dotted_name(base)
                if name is not None:
                    bases.append(name)
            qualname = f"{info.name}.{node.name}"
            self.classes[qualname] = ClassInfo(
                qualname=qualname,
                module=info.name,
                name=node.name,
                bases=tuple(bases),
                line=node.lineno,
            )

    def resolve_class(self, module: str, name: str) -> ClassInfo | None:
        """Look up a class by its (possibly local) dotted name as seen from
        ``module``: fully-qualified names match directly, bare names match a
        class defined in the same module."""
        if name in self.classes:
            return self.classes.get(name)
        if "." not in name:
            return self.classes.get(f"{module}.{name}")
        return None
