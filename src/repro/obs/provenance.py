"""Decision provenance and savings attribution (docs/OBSERVABILITY.md §v3).

The paper's product is only trusted because customers can *see* what KWO
did and what it bought them (§4.1): every resize/suspend is auditable and
the savings number decomposes into the actions that earned it.  This
module is that audit trail for the reproduction:

* every optimizer tick produces a :class:`DecisionRecord` — the telemetry
  snapshot (hashed + feature values), the candidate actions the smart
  model weighed with the cost model's what-if predictions, the chosen
  action with a *typed* reason code, and the actuation health state
  (safe mode, circuit breaker, retries);
* one decision interval later the record is **sealed** with the realized
  outcome — credits actually billed and the p99 actually served over the
  interval, plus the actuator's read-back result — so each record carries
  its own predicted-vs-realized error (the paper's C2 claim, per tick);
* every :class:`~repro.core.ledger.SavingsLedger` entry is **attributed**
  across the decisions active in its window.  The split is exact: the
  per-decision shares of one entry sum (in float arithmetic) to exactly
  that entry's ``savings_credits``, and :meth:`AttributionLedger.
  total_attributed_credits` reproduces ``SavingsLedger.
  total_savings_credits()`` to the last bit (conservation invariant,
  tested in ``tests/obs/test_provenance.py``).

Everything here is deterministic plain data (floats, strings, dicts):
records are built from values the caller already computed, never from
fresh client reads, so enabling provenance cannot perturb a run.  When an
observation session is active the lifecycle is mirrored into the trace as
``provenance.decision`` / ``provenance.outcome`` / ``provenance.attribution``
events, which is what makes provenance travel through
:meth:`~repro.obs.trace.Recorder.merge_payload` byte-identically under
``repro.parallel`` and lets ``repro.cli obs decisions|attribution`` and
the fleet store (:mod:`repro.obs.store`) work from a trace file alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.simtime import Window
from repro.obs import trace as obs
from repro.obs.manifest import config_hash

#: Bumped on any incompatible change to the provenance record shapes.
PROVENANCE_SCHEMA_VERSION = 1

#: ``decision_seq`` of the synthetic share that absorbs savings earned in a
#: ledger window no recorded decision overlaps (e.g. pre-onboarding time).
UNATTRIBUTED = -1


@dataclass(frozen=True)
class CandidateEvaluation:
    """One action the smart model weighed during a tick.

    ``predicted_credits_per_hour`` / ``predicted_avg_latency`` come from the
    cost model's guardrail what-if replay; they are ``None`` for candidates
    the guardrail never priced (skipped by dwell/quiet gating).
    """

    action_index: int
    action: str
    q_value: float
    verdict: str  # "chosen" | "vetoed" | "dwell" | "quiet" | "not_reached"
    predicted_credits_per_hour: float | None = None
    predicted_avg_latency: float | None = None

    def to_dict(self) -> dict:
        return {
            "action_index": self.action_index,
            "action": self.action,
            "q_value": self.q_value,
            "verdict": self.verdict,
            "predicted_credits_per_hour": self.predicted_credits_per_hour,
            "predicted_avg_latency": self.predicted_avg_latency,
        }


@dataclass
class DecisionContext:
    """What the smart model saw and priced while choosing, for one tick.

    Filled by :meth:`repro.core.smart_model.SmartModel.next_action` from
    work it already does (the guardrail replays); the optimizer copies it
    into the :class:`DecisionRecord`.  A fresh context is installed at the
    top of every ``next_action`` call, so a stale one can never leak
    between ticks.
    """

    admissible_actions: int = 0
    candidates: list[CandidateEvaluation] = field(default_factory=list)
    #: What-if prediction for the *chosen* target, as a credits rate — the
    #: guardrail window and the decision interval differ, so the rate is
    #: the comparable unit.  ``None`` when no replay priced the target
    #: (backoffs, constraint floors, degraded ticks).
    predicted_credits_per_hour: float | None = None
    predicted_avg_latency: float | None = None


@dataclass(frozen=True)
class DecisionOutcome:
    """The realized world over one sealed decision window."""

    credits: float
    p99_latency: float
    n_queries: int


@dataclass
class DecisionRecord:
    """One optimizer tick, from proposal to realized outcome.

    Created open (``sealed=False``) at decision time; sealed one tick
    later (or at shutdown) with the realized outcome over
    ``[time, sealed_until)``.
    """

    seq: int
    warehouse: str
    time: float
    kind: str
    reason: str
    reason_code: str
    target: str
    feedback_hash: str
    feedback: dict
    admissible_actions: int
    candidates: tuple[CandidateEvaluation, ...]
    action_index: int | None
    q_value: float | None
    predicted_credits_per_hour: float | None
    predicted_avg_latency: float | None
    safe_mode: bool
    breaker_state: str
    breaker_consecutive_failures: int
    retries_scheduled: int
    interval: float
    #: Filled by :meth:`ProvenanceLog.note_apply` when the actuator ran.
    applied: bool | None = None
    apply_error: str = ""
    # Sealed fields:
    sealed: bool = False
    sealed_until: float | None = None
    realized_credits: float | None = None
    realized_p99: float | None = None
    realized_queries: int = 0

    @property
    def window(self) -> Window:
        """The sim-time span this decision governed.

        Unsealed records use the nominal decision interval — attribution
        must be able to weight the final (never-sealed) tick too.
        """
        end = self.sealed_until if self.sealed_until is not None else self.time + self.interval
        return Window(self.time, max(end, self.time))

    @property
    def predicted_credits(self) -> float | None:
        """The what-if prediction scaled to this record's actual window."""
        if self.predicted_credits_per_hour is None:
            return None
        return self.predicted_credits_per_hour * self.window.duration / 3600.0

    @property
    def prediction_error_credits(self) -> float | None:
        """Realized minus predicted credits (positive = cost more)."""
        predicted = self.predicted_credits
        if not self.sealed or predicted is None or self.realized_credits is None:
            return None
        return self.realized_credits - predicted

    def to_dict(self) -> dict:
        return {
            "schema": PROVENANCE_SCHEMA_VERSION,
            "seq": self.seq,
            "warehouse": self.warehouse,
            "time": self.time,
            "kind": self.kind,
            "reason": self.reason,
            "reason_code": self.reason_code,
            "target": self.target,
            "feedback_hash": self.feedback_hash,
            "feedback": dict(self.feedback),
            "admissible_actions": self.admissible_actions,
            "candidates": [c.to_dict() for c in self.candidates],
            "action_index": self.action_index,
            "q_value": self.q_value,
            "predicted_credits_per_hour": self.predicted_credits_per_hour,
            "predicted_avg_latency": self.predicted_avg_latency,
            "safe_mode": self.safe_mode,
            "breaker_state": self.breaker_state,
            "breaker_consecutive_failures": self.breaker_consecutive_failures,
            "retries_scheduled": self.retries_scheduled,
            "interval": self.interval,
        }


# ----------------------------------------------------------------- durability
# Plain dict codecs (obs sits below repro.durability in the layer contract,
# so the StateCodec protocol itself is not imported here — the shapes match).


def encode_record(record: DecisionRecord) -> dict:
    """Full round-trip encoding of one record — unlike :meth:`to_dict`,
    includes the apply result and the sealed outcome fields."""
    state = record.to_dict()
    state.update(
        {
            "applied": record.applied,
            "apply_error": record.apply_error,
            "sealed": record.sealed,
            "sealed_until": record.sealed_until,
            "realized_credits": record.realized_credits,
            "realized_p99": record.realized_p99,
            "realized_queries": record.realized_queries,
        }
    )
    return state


def decode_record(state: dict) -> DecisionRecord:
    return DecisionRecord(
        seq=int(state["seq"]),
        warehouse=state["warehouse"],
        time=float(state["time"]),
        kind=state["kind"],
        reason=state["reason"],
        reason_code=state["reason_code"],
        target=state["target"],
        feedback_hash=state["feedback_hash"],
        feedback=dict(state["feedback"]),
        admissible_actions=int(state["admissible_actions"]),
        candidates=tuple(
            CandidateEvaluation(
                action_index=int(c["action_index"]),
                action=c["action"],
                q_value=float(c["q_value"]),
                verdict=c["verdict"],
                predicted_credits_per_hour=c["predicted_credits_per_hour"],
                predicted_avg_latency=c["predicted_avg_latency"],
            )
            for c in state["candidates"]
        ),
        action_index=state["action_index"],
        q_value=state["q_value"],
        predicted_credits_per_hour=state["predicted_credits_per_hour"],
        predicted_avg_latency=state["predicted_avg_latency"],
        safe_mode=bool(state["safe_mode"]),
        breaker_state=state["breaker_state"],
        breaker_consecutive_failures=int(state["breaker_consecutive_failures"]),
        retries_scheduled=int(state["retries_scheduled"]),
        interval=float(state["interval"]),
        applied=state["applied"],
        apply_error=state["apply_error"],
        sealed=bool(state["sealed"]),
        sealed_until=state["sealed_until"],
        realized_credits=state["realized_credits"],
        realized_p99=state["realized_p99"],
        realized_queries=int(state["realized_queries"]),
    )


def split_exact(total: float, weights: list[float]) -> list[float]:
    """Split ``total`` into shares proportional to ``weights`` such that the
    left-to-right float sum of the shares is **exactly** ``total``.

    Proportionality is approximate (floats); conservation is not.  The
    last share absorbs the rounding residue, nudged by up to a few ulps so
    that ``fl(sum(shares))`` — the same left-to-right accumulation the
    ledger uses — reproduces ``total`` bit-for-bit.  For some prefixes no
    last share can land exactly on ``total`` (round-to-even can make it
    skip over the target), in which case a prefix share is perturbed by an
    ulp and the landing retried; the unconditional fallback degenerates to
    ``[total, 0, 0, ...]``, which conserves trivially.
    """
    n = len(weights)
    if n == 0:
        return []
    if n == 1:
        return [total]
    weight_sum = sum(weights)
    if not weight_sum > 0:
        weights = [1.0] * n
        weight_sum = float(n)
    prefix = [total * (w / weight_sum) for w in weights[:-1]]
    for attempt in range(64):
        acc = 0.0
        for share in prefix:
            acc += share
        # fl(acc + last) == total is not guaranteed by the subtraction
        # alone; walk `last` (by the residual, then by ulps when the
        # residual is below ulp resolution) toward the target.
        last = total - acc
        for _ in range(8):
            s = acc + last
            if s == total:
                return prefix + [last]
            bumped = last + (total - s)
            if bumped == last:
                bumped = math.nextafter(last, math.inf if total > s else -math.inf)
            last = bumped
        # Unreachable with this prefix: move one prefix share by an ulp
        # (cycling right to left, alternating direction) and retry.
        j = (len(prefix) - 1) - (attempt % len(prefix))
        direction = math.inf if attempt % 2 else -math.inf
        prefix[j] = math.nextafter(prefix[j], direction)
    return [total] + [0.0] * (n - 1)


@dataclass(frozen=True)
class AttributionShare:
    """One decision's slice of one ledger entry's savings."""

    decision_seq: int  # UNATTRIBUTED for the no-decision residual share
    overlap_seconds: float
    credits: float

    def to_dict(self) -> dict:
        return {
            "decision_seq": self.decision_seq,
            "overlap_seconds": self.overlap_seconds,
            "credits": self.credits,
        }


@dataclass(frozen=True)
class AttributionEntry:
    """One ledger entry, split across the decisions active in its window."""

    window_start: float
    window_end: float
    savings_credits: float
    shares: tuple[AttributionShare, ...]

    def attributed_total(self) -> float:
        """Left-to-right float sum of the shares — exactly
        ``savings_credits`` by construction (:func:`split_exact`)."""
        acc = 0.0
        for share in self.shares:
            acc += share.credits
        return acc

    def to_dict(self) -> dict:
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "savings_credits": self.savings_credits,
            "shares": [s.to_dict() for s in self.shares],
        }


class AttributionLedger:
    """Per-decision savings attribution for one warehouse.

    Mirrors the :class:`~repro.core.ledger.SavingsLedger` entry by entry;
    the conservation invariant is that :meth:`total_attributed_credits`
    equals ``SavingsLedger.total_savings_credits()`` exactly — same
    floats, same accumulation order, no epsilon.
    """

    def __init__(self, warehouse: str):
        self.warehouse = warehouse
        self.entries: list[AttributionEntry] = []

    def attribute(
        self, window: Window, savings_credits: float, decisions: list[DecisionRecord]
    ) -> AttributionEntry:
        """Split one reported period's savings across the decisions whose
        governed windows overlap it, weighted by overlap seconds."""
        active = [
            (d, window.overlap(d.window)) for d in decisions if window.overlap(d.window) > 0
        ]
        if active:
            shares = split_exact(savings_credits, [overlap for _, overlap in active])
            rows = tuple(
                AttributionShare(d.seq, overlap, credit)
                for (d, overlap), credit in zip(active, shares)
            )
        else:
            rows = (AttributionShare(UNATTRIBUTED, window.duration, savings_credits),)
        entry = AttributionEntry(window.start, window.end, savings_credits, rows)
        self.entries.append(entry)
        obs.emit(
            "provenance.attribution",
            window.end,
            warehouse=self.warehouse,
            window_start=window.start,
            window_end=window.end,
            savings_credits=savings_credits,
            shares=[s.to_dict() for s in rows],
        )
        return entry

    def total_attributed_credits(self) -> float:
        """Sum of per-entry attributed totals, accumulated entry by entry —
        the exact float-add sequence ``total_savings_credits()`` performs
        over ``savings_credits`` (each entry's own shares sum to its
        savings exactly, so the outer sums see identical addends)."""
        total = 0.0
        for entry in self.entries:
            total += entry.attributed_total()
        return total

    # ----------------------------------------------------------- durability
    @staticmethod
    def encode_entry(entry: AttributionEntry) -> dict:
        return entry.to_dict()

    @staticmethod
    def decode_entry(state: dict) -> AttributionEntry:
        return AttributionEntry(
            window_start=float(state["window_start"]),
            window_end=float(state["window_end"]),
            savings_credits=float(state["savings_credits"]),
            shares=tuple(
                AttributionShare(
                    decision_seq=int(s["decision_seq"]),
                    overlap_seconds=float(s["overlap_seconds"]),
                    credits=float(s["credits"]),
                )
                for s in state["shares"]
            ),
        )

    def state_dict(self) -> dict:
        return {
            "warehouse": self.warehouse,
            "entries": [self.encode_entry(e) for e in self.entries],
        }

    def load_state_dict(self, state: dict) -> None:
        """Rebuild entries directly — no :meth:`attribute` calls, so a
        restore never re-emits ``provenance.attribution`` trace events."""
        self.warehouse = state["warehouse"]
        self.entries = [self.decode_entry(e) for e in state["entries"]]

    def per_decision_credits(self) -> dict[int, float]:
        """Total credits attributed to each decision seq (and to
        :data:`UNATTRIBUTED`), across all entries."""
        totals: dict[int, float] = {}
        for entry in self.entries:
            for share in entry.shares:
                totals[share.decision_seq] = (
                    totals.get(share.decision_seq, 0.0) + share.credits
                )
        return totals


class ProvenanceLog:
    """The decision audit trail of one optimizer.

    Always on (like ``optimizer.decisions``): records accumulate in memory
    for dashboards and fleet summaries whether or not an observation
    session is active; the trace events are emitted only when one is.
    """

    def __init__(self, warehouse: str, decision_interval: float):
        self.warehouse = warehouse
        self.decision_interval = decision_interval
        self.records: list[DecisionRecord] = []
        self.attribution = AttributionLedger(warehouse)
        self._unsealed_from = 0

    # --------------------------------------------------------------- record
    def record(
        self,
        time: float,
        *,
        kind: str,
        reason: str,
        reason_code: str,
        target: str,
        feedback: object,
        context: DecisionContext,
        action_index: int | None,
        q_value: float | None,
        safe_mode: bool,
        breaker_state: str,
        breaker_consecutive_failures: int,
        retries_scheduled: int,
    ) -> DecisionRecord:
        """Open a provenance record for the decision just taken."""
        feedback_fields = _feedback_fields(feedback)
        record = DecisionRecord(
            seq=len(self.records),
            warehouse=self.warehouse,
            time=time,
            kind=kind,
            reason=reason,
            reason_code=reason_code,
            target=target,
            feedback_hash=config_hash(feedback),
            feedback=feedback_fields,
            admissible_actions=context.admissible_actions,
            candidates=tuple(context.candidates),
            action_index=action_index,
            q_value=q_value,
            predicted_credits_per_hour=context.predicted_credits_per_hour,
            predicted_avg_latency=context.predicted_avg_latency,
            safe_mode=safe_mode,
            breaker_state=breaker_state,
            breaker_consecutive_failures=breaker_consecutive_failures,
            retries_scheduled=retries_scheduled,
            interval=self.decision_interval,
        )
        self.records.append(record)
        attrs = record.to_dict()
        # The event row already carries the sim time; keeping the duplicate
        # key would collide with emit()'s positional argument.
        attrs.pop("time", None)
        obs.emit("provenance.decision", time, **attrs)
        return record

    def note_apply(self, succeeded: bool, error: str) -> None:
        """Attach the actuator's read-back result to the latest record."""
        if self.records:
            self.records[-1].applied = succeeded
            self.records[-1].apply_error = error

    # ----------------------------------------------------------------- seal
    def seal_until(self, now: float, outcome_fn) -> int:
        """Seal every open record that ended strictly before ``now``.

        ``outcome_fn(window) -> DecisionOutcome`` reads the realized world
        for a record's governed window; the optimizer supplies a reader
        over the account-side billing meter and telemetry ground truth so
        sealing never issues vendor-client calls (which would perturb
        overhead accounting and fault-plan randomness).
        """
        sealed = 0
        for i in range(self._unsealed_from, len(self.records)):
            record = self.records[i]
            if record.time >= now:
                break
            end = min(record.time + record.interval, now)
            window = Window(record.time, end)
            outcome = outcome_fn(window)
            record.sealed = True
            record.sealed_until = end
            record.realized_credits = outcome.credits
            record.realized_p99 = outcome.p99_latency
            record.realized_queries = outcome.n_queries
            self._unsealed_from = i + 1
            sealed += 1
            obs.emit(
                "provenance.outcome",
                end,
                warehouse=self.warehouse,
                seq=record.seq,
                window_start=window.start,
                window_end=end,
                realized_credits=outcome.credits,
                realized_p99=outcome.p99_latency,
                realized_queries=outcome.n_queries,
                predicted_credits=record.predicted_credits,
                error_credits=record.prediction_error_credits,
                applied=record.applied,
                apply_error=record.apply_error,
            )
        return sealed

    # ----------------------------------------------------------- durability
    @property
    def unsealed_from(self) -> int:
        """Index below which every record is sealed and immutable."""
        return self._unsealed_from

    def state_dict(self) -> dict:
        return {
            "records": [encode_record(r) for r in self.records],
            "unsealed_from": self._unsealed_from,
            "attribution": self.attribution.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.records = [decode_record(r) for r in state["records"]]
        self._unsealed_from = int(state["unsealed_from"])
        self.attribution.load_state_dict(state["attribution"])

    def export_records(self, start: int) -> list[dict]:
        """Records from ``start`` on, re-serialized — the journal delta.

        Records below the ``unsealed_from`` mark captured at the previous
        checkpoint are sealed and immutable (sealing and ``note_apply``
        only ever touch records at or above the live mark), so a delta
        from that mark covers every mutation since.
        """
        return [encode_record(r) for r in self.records[start:]]

    def replace_records_from(self, start: int, states: list[dict], unsealed_from: int) -> None:
        """Apply a journal delta: truncate to ``start``, extend, re-mark."""
        del self.records[start:]
        self.records.extend(decode_record(s) for s in states)
        self._unsealed_from = int(unsealed_from)

    # ------------------------------------------------------------ reporting
    @property
    def sealed_records(self) -> list[DecisionRecord]:
        return [r for r in self.records if r.sealed]

    def calibration(self) -> "CalibrationReport":
        return CalibrationReport.from_records(self.records)

    def summary(self, ledger_credits: float) -> "AttributionSummary":
        """A picklable fleet-rollup row (crosses process pools)."""
        attributed = self.attribution.total_attributed_credits()
        calibration = self.calibration()
        kinds: dict[str, int] = {}
        for record in self.records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        return AttributionSummary(
            warehouse=self.warehouse,
            n_decisions=len(self.records),
            n_sealed=len(self.sealed_records),
            n_entries=len(self.attribution.entries),
            attributed_credits=attributed,
            ledger_credits=ledger_credits,
            conserved=attributed == ledger_credits,
            mean_abs_error_credits=calibration.mean_abs_error_credits,
            decision_kinds=dict(sorted(kinds.items())),
        )


def _feedback_fields(feedback: object) -> dict:
    """The telemetry snapshot's scalar fields as a plain sorted dict."""
    fields = getattr(feedback, "__dataclass_fields__", None)
    if fields is None:
        return dict(feedback) if isinstance(feedback, dict) else {}
    out = {}
    for name in sorted(fields):
        value = getattr(feedback, name)
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[name] = value
    return out


@dataclass(frozen=True)
class CalibrationRow:
    """Predicted-vs-realized for one sealed decision."""

    seq: int
    time: float
    kind: str
    reason_code: str
    predicted_credits: float | None
    realized_credits: float
    error_credits: float | None
    predicted_avg_latency: float | None
    realized_p99: float


@dataclass(frozen=True)
class CalibrationReport:
    """How well the cost model's what-ifs predicted reality (claim C2)."""

    rows: tuple[CalibrationRow, ...]
    n_decisions: int
    n_sealed: int
    n_with_prediction: int
    mean_abs_error_credits: float
    mean_error_credits: float  # signed: positive = realized cost more
    total_predicted_credits: float
    total_realized_credits: float

    @classmethod
    def from_records(cls, records: list[DecisionRecord]) -> "CalibrationReport":
        rows = []
        abs_errors: list[float] = []
        errors: list[float] = []
        total_predicted = 0.0
        total_realized = 0.0
        for record in records:
            if not record.sealed:
                continue
            error = record.prediction_error_credits
            rows.append(
                CalibrationRow(
                    seq=record.seq,
                    time=record.time,
                    kind=record.kind,
                    reason_code=record.reason_code,
                    predicted_credits=record.predicted_credits,
                    realized_credits=record.realized_credits,
                    error_credits=error,
                    predicted_avg_latency=record.predicted_avg_latency,
                    realized_p99=record.realized_p99,
                )
            )
            total_realized += record.realized_credits
            if error is not None:
                errors.append(error)
                abs_errors.append(abs(error))
                total_predicted += record.predicted_credits
        return cls(
            rows=tuple(rows),
            n_decisions=len(records),
            n_sealed=len(rows),
            n_with_prediction=len(errors),
            mean_abs_error_credits=(
                sum(abs_errors) / len(abs_errors) if abs_errors else 0.0
            ),
            mean_error_credits=sum(errors) / len(errors) if errors else 0.0,
            total_predicted_credits=total_predicted,
            total_realized_credits=total_realized,
        )


@dataclass(frozen=True)
class AttributionSummary:
    """One warehouse's provenance rollup (plain values: pickles cleanly)."""

    warehouse: str
    n_decisions: int
    n_sealed: int
    n_entries: int
    attributed_credits: float
    ledger_credits: float
    conserved: bool
    mean_abs_error_credits: float
    decision_kinds: dict[str, int]
