"""Sim-time metric series: fixed-width bucketed history for any metric.

PR 2's metrics registry answers "what was the final value?"; this module
answers "when did it change?".  Every recording carries an explicit
simulation timestamp (never a clock — lint rule R001) and lands in a
fixed-width bucket (default 300 s of sim time).  Each bucket keeps the
same small aggregate regardless of metric kind — ``last``, ``min``,
``max``, ``sum``, ``count`` — which is enough to reconstruct per-bucket
rates for counters, levels for gauges and distribution summaries for
histograms without storing raw samples.

Determinism contract (docs/OBSERVABILITY.md): bucket indices are a pure
function of the timestamps, aggregates fold in emission order, and
exports are sorted-key compact JSON — two runs of the same ``(scenario,
seed)`` produce byte-identical series files
(``tests/props/test_obs_series_determinism.py``).

The disabled path costs nothing extra: call sites write through the
module-level metric API (``obs.counter(...).inc(n, time=now)``), which
hands out shared no-op singletons while observation is off.
"""

from __future__ import annotations

import json
import math

from repro.obs.metrics import ObservabilityError, _check_name

#: Default sim-time bucket width, in seconds.
DEFAULT_BUCKET_SECONDS = 300.0

#: Reductions of one bucket's aggregate to a single scalar (used by the
#: SLO engine and the CLI).  ``rate`` is per-second: bucket sum / width.
AGGREGATES = ("last", "min", "max", "mean", "sum", "count", "rate")


class _Bucket:
    """One fixed-width window's fold of every value recorded inside it."""

    __slots__ = ("last", "min", "max", "sum", "count")

    def __init__(self, value: float):
        self.last = value
        self.min = value
        self.max = value
        self.sum = value
        self.count = 1

    def fold(self, value: float) -> None:
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.sum += value
        self.count += 1

    def as_list(self) -> list[float]:
        return [self.last, self.min, self.max, self.sum, self.count]


class MetricSeries:
    """The bucketed sim-time history of one named metric."""

    __slots__ = ("name", "kind", "bucket_seconds", "_buckets")

    def __init__(self, name: str, kind: str, bucket_seconds: float = DEFAULT_BUCKET_SECONDS):
        if bucket_seconds <= 0 or math.isnan(bucket_seconds) or math.isinf(bucket_seconds):
            raise ObservabilityError(
                f"series {name!r} bucket width must be a positive finite number"
            )
        self.name = name
        self.kind = kind
        self.bucket_seconds = float(bucket_seconds)
        self._buckets: dict[int, _Bucket] = {}

    def record(self, time: float, value: float) -> None:
        """Fold ``value`` into the bucket covering sim time ``time``.

        For counters the value is the *increment* (bucket ``sum`` is the
        per-bucket total); for gauges/histograms it is the observed level.
        """
        time, value = float(time), float(value)
        if math.isnan(time) or math.isnan(value):
            raise ObservabilityError(f"series {self.name!r} cannot record NaN")
        index = int(time // self.bucket_seconds)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = _Bucket(value)
        else:
            bucket.fold(value)

    def __len__(self) -> int:
        return len(self._buckets)

    def bucket_start(self, index: int) -> float:
        return index * self.bucket_seconds

    def bucket_end(self, index: int) -> float:
        return (index + 1) * self.bucket_seconds

    def points(self, aggregate: str = "last") -> list[tuple[int, float]]:
        """``(bucket_index, scalar)`` pairs, index-sorted, for one reduction."""
        if aggregate not in AGGREGATES:
            raise ObservabilityError(
                f"unknown series aggregate {aggregate!r}; one of {AGGREGATES}"
            )
        out = []
        for index in sorted(self._buckets):
            bucket = self._buckets[index]
            if aggregate == "mean":
                value = bucket.sum / bucket.count
            elif aggregate == "rate":
                value = bucket.sum / self.bucket_seconds
            elif aggregate == "count":
                value = float(bucket.count)
            else:
                value = getattr(bucket, aggregate)
            out.append((index, value))
        return out

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view: ``buckets`` rows are
        ``[index, last, min, max, sum, count]``, index-sorted."""
        return {
            "kind": self.kind,
            "bucket_seconds": self.bucket_seconds,
            "buckets": [
                [index] + self._buckets[index].as_list()
                for index in sorted(self._buckets)
            ],
        }

    def merge_snapshot(self, payload: dict[str, object]) -> None:
        """Fold another series' :meth:`snapshot` into this one, *after* every
        value already recorded here.

        This is the sequential-composition rule the parallel experiment
        layer relies on (docs/PERFORMANCE.md): merging snapshot B into the
        series that produced snapshot A yields exactly the series of a run
        that recorded all of A's values and then all of B's — ``last`` takes
        B's, extremes widen, ``sum``/``count`` accumulate per bucket.
        """
        width = float(payload["bucket_seconds"])
        if width != self.bucket_seconds:
            raise ObservabilityError(
                f"cannot merge series {self.name!r}: bucket width {width} "
                f"differs from {self.bucket_seconds}"
            )
        for index, last, mn, mx, total, count in payload["buckets"]:
            bucket = self._buckets.get(int(index))
            if bucket is None:
                bucket = self._buckets[int(index)] = _Bucket(float(last))
                bucket.min = float(mn)
                bucket.max = float(mx)
                bucket.sum = float(total)
                bucket.count = int(count)
            else:
                bucket.last = float(last)
                if float(mn) < bucket.min:
                    bucket.min = float(mn)
                if float(mx) > bucket.max:
                    bucket.max = float(mx)
                bucket.sum += float(total)
                bucket.count += int(count)


class SeriesRegistry:
    """Get-or-create store of metric series with a byte-stable export."""

    def __init__(self, bucket_seconds: float = DEFAULT_BUCKET_SECONDS):
        if bucket_seconds <= 0:
            raise ObservabilityError("series bucket width must be positive")
        self.bucket_seconds = float(bucket_seconds)
        self._series: dict[str, MetricSeries] = {}

    def series(self, name: str, kind: str) -> MetricSeries:
        existing = self._series.get(name)
        if existing is None:
            existing = self._series[name] = MetricSeries(
                _check_name(name), kind, self.bucket_seconds
            )
        elif existing.kind != kind:
            raise ObservabilityError(
                f"series {name!r} is a {existing.kind}, requested as a {kind}"
            )
        return existing

    def get(self, name: str) -> MetricSeries | None:
        return self._series.get(name)

    def names(self) -> list[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Name-sorted view of every non-empty series."""
        return {
            name: self._series[name].snapshot()
            for name in sorted(self._series)
            if len(self._series[name])
        }

    def to_json(self) -> str:
        """Byte-stable JSON export (sorted keys, compact separators)."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":")) + "\n"

    def merge(self, snapshot: dict[str, dict[str, object]]) -> None:
        """Fold a whole registry :meth:`snapshot` into this one, name by
        name in sorted order (see :meth:`MetricSeries.merge_snapshot`)."""
        for name in sorted(snapshot):
            payload = snapshot[name]
            self.series(name, str(payload["kind"])).merge_snapshot(payload)

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, dict[str, object]]) -> "SeriesRegistry":
        """Rebuild a registry from a :meth:`snapshot` / exported JSON value.

        Used by the CLI to evaluate SLOs over a ``*.series.json`` file
        written by an earlier run.
        """
        registry: SeriesRegistry | None = None
        for name in sorted(snapshot):
            payload = snapshot[name]
            width = float(payload["bucket_seconds"])
            if registry is None:
                registry = cls(bucket_seconds=width)
            series = MetricSeries(name, str(payload["kind"]), width)
            for row in payload["buckets"]:
                index, last, mn, mx, total, count = row
                bucket = _Bucket(float(mn))
                bucket.last = float(last)
                bucket.min = float(mn)
                bucket.max = float(mx)
                bucket.sum = float(total)
                bucket.count = int(count)
                series._buckets[int(index)] = bucket
            registry._series[name] = series
        return registry if registry is not None else cls()
