"""Structured sim-time tracing: spans, events, and the JSONL trace sink.

Deterministic by construction (docs/OBSERVABILITY.md):

* every record's ``time`` is **simulation time** passed explicitly by the
  call site — the layer never reads a clock (lint rule R001);
* span ids come from a per-run monotonic counter, so id assignment is a
  pure function of the instrumented code path;
* exports are sorted-key compact JSON, one record per line, in emission
  order — two runs of the same ``(scenario, seed)`` produce byte-identical
  files.

The module-level API (``span``/``emit``/``counter``/...) is a no-op until a
:class:`Recorder` is installed with :func:`start` or the :func:`observed`
context manager; the disabled fast path is one global read and a no-op
call, cheap enough to leave instrumentation permanently in hot paths
(``benchmarks/bench_fig6_overhead.py`` measures it).

In a discrete-event simulation a callback executes at a single instant, so
most spans have ``time_end == time``; spans still capture nesting (which
controller fired, which replay ran inside which tick) and carry attributes
set while they are open.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from contextlib import contextmanager
from typing import Iterator

from repro.obs.alerts import NULL_ALERTS, AlertManager
from repro.obs.manifest import RunManifest
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
)
from repro.obs.series import DEFAULT_BUCKET_SECONDS, SeriesRegistry

#: Bumped on any incompatible change to the trace record shapes below.
TRACE_SCHEMA_VERSION = 1


def _jsonable(value: object) -> object:
    """Coerce attribute values to plain JSON types (numpy scalars included)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(value[k]) for k in sorted(value, key=str)}
    item = getattr(value, "item", None)  # numpy scalar -> python scalar
    if callable(item):
        return _jsonable(item())
    return str(value)


class TraceSink:
    """An in-memory buffer of trace records with byte-stable JSONL export."""

    def __init__(self):
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in self.records
        )

    def dump(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(self.to_jsonl(), encoding="utf-8")


class Span:
    """An open span; records itself into the sink when closed.

    Use as a context manager.  ``set(**attrs)`` adds attributes while open
    (e.g. results computed inside the span); ``set_end(t)`` moves the end
    timestamp for the rare span that covers a sim-time range.
    """

    __slots__ = ("_recorder", "span_id", "parent_id", "name", "time", "time_end", "attrs")

    def __init__(
        self,
        recorder: "Recorder",
        span_id: int,
        parent_id: int | None,
        name: str,
        time: float,
        attrs: dict,
    ):
        self._recorder = recorder
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.time = time
        self.time_end = time
        self.attrs = attrs

    def set(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def set_end(self, time: float) -> None:
        self.time_end = float(time)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._recorder._close_span(self)
        return False  # never swallow


class _NullSpan:
    """The shared, stateless span handed out while observation is disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass

    def set_end(self, time: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Recorder:
    """One observation session: trace buffer, metrics + sim-time series,
    alert lifecycle, and span state."""

    def __init__(
        self,
        sink: TraceSink | None = None,
        manifest: RunManifest | None = None,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
    ):
        # `sink or TraceSink()` would discard a caller's *empty* sink
        # (len() == 0 makes it falsy); test identity, not truthiness.
        self.sink = sink if sink is not None else TraceSink()
        self.series = SeriesRegistry(bucket_seconds)
        self.metrics = MetricsRegistry(series=self.series)
        self.alerts = AlertManager(self)
        self.manifest = manifest
        self._ids = itertools.count(1)
        self._stack: list[int] = []
        self._chunk_merger = None  # in-flight PayloadChunkMerger, if any
        if manifest is not None:
            self.sink.write(
                {
                    "type": "manifest",
                    "schema": TRACE_SCHEMA_VERSION,
                    **manifest.to_dict(),
                }
            )

    # ----------------------------------------------------------------- trace
    def emit(self, name: str, time: float, **attrs: object) -> None:
        """Record a point event at sim time ``time``."""
        self.sink.write(
            {
                "type": "event",
                "name": name,
                "time": float(time),
                "span": self._stack[-1] if self._stack else None,
                "attrs": {k: _jsonable(v) for k, v in attrs.items()},
            }
        )

    def span(self, name: str, time: float, **attrs: object) -> Span:
        """Open a nested span at sim time ``time`` (use with ``with``)."""
        span = Span(
            self,
            next(self._ids),
            self._stack[-1] if self._stack else None,
            name,
            float(time),
            dict(attrs),
        )
        self._stack.append(span.span_id)
        return span

    def _close_span(self, span: Span) -> None:
        if not self._stack or self._stack[-1] != span.span_id:
            raise ObservabilityError(
                f"span {span.name!r} (id {span.span_id}) closed out of order"
            )
        self._stack.pop()
        self.sink.write(
            {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "time": span.time,
                "time_end": span.time_end,
                "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
            }
        )

    # ------------------------------------------------------- session merging
    def reserve_span_ids(self, n: int) -> int:
        """Consume a contiguous block of ``n`` span ids; return the first.

        The parallel experiment layer renumbers a worker session's spans
        into this block, so the merged trace carries exactly the ids a
        serial run would have assigned (docs/PERFORMANCE.md).
        """
        if n <= 0:
            raise ObservabilityError("must reserve a positive span id block")
        first = next(self._ids)
        for _ in range(n - 1):
            next(self._ids)
        return first

    def to_payload(self) -> dict:
        """This session's state as a plain (picklable) value tree.

        Captured in a worker process after its scenario finishes; the
        parent folds it back with :meth:`merge_payload`.  Only complete
        sessions can travel — open spans mean the run is still in flight.
        """
        if self._stack:
            raise ObservabilityError(
                "cannot capture a session payload with open spans"
            )
        return {
            "records": self.sink.records,
            # Ids are allocated at span open and every opened span has
            # closed (empty stack), so the consumed-id count is the number
            # of span records.
            "span_ids": sum(1 for r in self.sink.records if r["type"] == "span"),
            "metrics": self.metrics.snapshot(),
            "series": self.series.snapshot(),
        }

    def merge_payload(self, payload: dict) -> None:
        """Fold a worker session's :meth:`to_payload` into this session.

        Deterministic by construction: span ids are renumbered into a block
        reserved off this session's counter, trace records append in the
        worker's emission order, and metrics/series merge with sequential-
        composition semantics — so merging worker payloads in submission
        order reproduces, byte for byte, the session a serial run of the
        same scenarios would have produced.  Alert *dedup state* does not
        travel: each scenario runs its own alert lifecycle (the fire/resolve
        events are already in the records).
        """
        if self._stack:
            raise ObservabilityError(
                "cannot merge a session payload while spans are open"
            )
        if self._chunk_merger is not None:
            raise ObservabilityError(
                "cannot merge a monolithic payload while a chunk stream is "
                "mid-flight; finish it first"
            )
        n = int(payload["span_ids"])
        offset = (self.reserve_span_ids(n) - 1) if n else 0
        self._merge_records(payload["records"], offset)
        self.metrics.merge(payload["metrics"])
        self.series.merge(payload["series"])

    def _merge_records(self, records: list[dict], offset: int) -> int:
        """Renumber and append foreign records; returns the span count.

        The shared body of :meth:`merge_payload` and the chunked merge
        path — one renumbering rule, two transports.
        """
        spans = 0
        for record in records:
            rtype = record.get("type")
            if rtype == "span":
                spans += 1
                record = dict(record)
                record["id"] = record["id"] + offset
                if record["parent"] is not None:
                    record["parent"] = record["parent"] + offset
            elif rtype == "event" and record.get("span") is not None:
                record = dict(record)
                record["span"] = record["span"] + offset
            self.sink.write(record)
        return spans

    def to_payload_chunks(self, max_events: int | None = None):
        """This session's payload as an ordered stream of bounded chunks.

        The streaming counterpart of :meth:`to_payload`: yields dicts of
        at most ``max_events`` trace records each (plus metrics/series on
        the final chunk), so neither side ever holds the whole session.
        See :func:`repro.obs.stream.payload_chunks`.
        """
        from repro.obs import stream  # local: stream imports obs.metrics

        if max_events is None:
            max_events = stream.DEFAULT_CHUNK_EVENTS
        return stream.payload_chunks(self, max_events=max_events)

    def merge_payload_chunk(self, chunk: dict) -> None:
        """Fold one chunk of a worker's stream into this session.

        Chunks of one worker stream must arrive in sequence order; the
        stream finishes at its final chunk, after which the next chunk
        with ``seq == 0`` starts the next worker's stream.  Merging a
        stream chunk-by-chunk is byte-identical to :meth:`merge_payload`
        of the same session's monolithic payload.
        """
        from repro.obs import stream  # local: stream imports obs.metrics

        if self._chunk_merger is None:
            self._chunk_merger = stream.PayloadChunkMerger(self)
        self._chunk_merger.merge(chunk)
        if self._chunk_merger.finished:
            self._chunk_merger = None

    # --------------------------------------------------------------- metrics
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        if buckets is None:
            return self.metrics.histogram(name)
        return self.metrics.histogram(name, buckets)


# ----------------------------------------------------------- global session
_RECORDER: Recorder | None = None


def recorder() -> Recorder | None:
    """The active recorder, or ``None`` while observation is disabled."""
    return _RECORDER


def enabled() -> bool:
    return _RECORDER is not None


def start(
    manifest: RunManifest | None = None,
    sink: TraceSink | None = None,
    bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
) -> Recorder:
    """Install a fresh recorder as the process-wide observation session."""
    global _RECORDER
    if _RECORDER is not None:
        raise ObservabilityError(
            "an observation session is already active; stop() it first"
        )
    _RECORDER = Recorder(sink, manifest, bucket_seconds=bucket_seconds)
    return _RECORDER


def stop() -> Recorder:
    """Tear down the active session and return it (for export/inspection)."""
    global _RECORDER
    if _RECORDER is None:
        raise ObservabilityError("no observation session is active")
    rec, _RECORDER = _RECORDER, None
    return rec


def resume(rec: Recorder) -> Recorder:
    """Reinstall a previously-:func:`stop`-ped recorder as the session.

    The parallel layer's serial path runs each scenario in an isolated
    session: it stops the caller's recorder, records the scenario into a
    fresh one, then resumes the original and merges the isolated session's
    payload into it.
    """
    global _RECORDER
    if _RECORDER is not None:
        raise ObservabilityError(
            "an observation session is already active; stop() it first"
        )
    _RECORDER = rec
    return rec


@contextmanager
def observed(
    manifest: RunManifest | None = None,
    sink: TraceSink | None = None,
    bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
) -> Iterator[Recorder]:
    """Scoped observation session: ``with obs.observed() as rec: ...``."""
    rec = start(manifest, sink, bucket_seconds=bucket_seconds)
    try:
        yield rec
    finally:
        stop()


# ------------------------------------------------- no-op-when-disabled API
def emit(name: str, time: float, **attrs: object) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.emit(name, time, **attrs)


def span(name: str, time: float, **attrs: object):
    rec = _RECORDER
    if rec is None:
        return NULL_SPAN
    return rec.span(name, time, **attrs)


def counter(name: str):
    rec = _RECORDER
    return NULL_COUNTER if rec is None else rec.counter(name)


def gauge(name: str):
    rec = _RECORDER
    return NULL_GAUGE if rec is None else rec.gauge(name)


def histogram(name: str, buckets: tuple[float, ...] | None = None):
    rec = _RECORDER
    return NULL_HISTOGRAM if rec is None else rec.histogram(name, buckets)


def alerts():
    """The active session's :class:`AlertManager`, or a shared no-op one."""
    rec = _RECORDER
    return NULL_ALERTS if rec is None else rec.alerts
