"""repro.obs — deterministic observability for the simulation stack.

The paper's KWO service lives on continuous telemetry and real-time
monitoring (§4.4); this package gives the *reproduction itself* the same
property: structured sim-time traces (spans + events), an in-process
metrics registry, and run manifests, all with byte-stable exports so two
runs of the same ``(scenario, seed)`` produce identical observability
output (docs/OBSERVABILITY.md).

Disabled by default; the whole module-level API is a no-op until a session
is opened::

    from repro import obs

    with obs.observed(manifest=scenario.manifest()) as rec:
        run_before_after(scenario)
    rec.sink.dump("trace.jsonl")
    print(rec.metrics.to_json())
"""

from repro.obs.alerts import NULL_ALERTS, AlertManager
from repro.obs.manifest import RunManifest, config_hash
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
)
from repro.obs.profile import (
    Profile,
    SpanStats,
    critical_path,
    diff_profiles,
    folded_stacks,
    profile_records,
    to_folded,
)
from repro.obs.provenance import (
    PROVENANCE_SCHEMA_VERSION,
    UNATTRIBUTED,
    AttributionEntry,
    AttributionLedger,
    AttributionShare,
    AttributionSummary,
    CalibrationReport,
    CalibrationRow,
    CandidateEvaluation,
    DecisionContext,
    DecisionOutcome,
    DecisionRecord,
    ProvenanceLog,
    split_exact,
)
from repro.obs.series import DEFAULT_BUCKET_SECONDS, MetricSeries, SeriesRegistry
from repro.obs.store import STORE_SCHEMA_VERSION, FleetStore
from repro.obs.stream import (
    CHUNK_SCHEMA_VERSION,
    HEARTBEAT_SCHEMA_VERSION,
    NULL_PROBE,
    RESOURCES_SCHEMA_VERSION,
    PayloadChunkMerger,
    ResourceProbe,
    SpillingTraceSink,
    campaign_progress,
    campaign_summary,
    payload_chunks,
    peak_rss_kb,
    read_heartbeats,
    write_heartbeat,
)
from repro.obs.watchtower import (
    WATCHTOWER_SCHEMA_VERSION,
    WatchtowerThresholds,
    fleet_baseline,
    run_watchtower,
)
from repro.obs.slo import (
    SLOReport,
    SLOResult,
    SLOSpec,
    SLOViolation,
    default_slos,
    evaluate_all,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    Recorder,
    Span,
    TraceSink,
    alerts,
    counter,
    emit,
    enabled,
    gauge,
    histogram,
    observed,
    recorder,
    resume,
    span,
    start,
    stop,
)

__all__ = [
    "AlertManager",
    "CHUNK_SCHEMA_VERSION",
    "HEARTBEAT_SCHEMA_VERSION",
    "NULL_PROBE",
    "PayloadChunkMerger",
    "RESOURCES_SCHEMA_VERSION",
    "ResourceProbe",
    "SpillingTraceSink",
    "WATCHTOWER_SCHEMA_VERSION",
    "WatchtowerThresholds",
    "AttributionEntry",
    "AttributionLedger",
    "AttributionShare",
    "AttributionSummary",
    "CalibrationReport",
    "CalibrationRow",
    "CandidateEvaluation",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_BUCKET_SECONDS",
    "DecisionContext",
    "DecisionOutcome",
    "DecisionRecord",
    "FleetStore",
    "Gauge",
    "Histogram",
    "MetricSeries",
    "MetricsRegistry",
    "NULL_ALERTS",
    "NULL_SPAN",
    "ObservabilityError",
    "PROVENANCE_SCHEMA_VERSION",
    "Profile",
    "ProvenanceLog",
    "Recorder",
    "RunManifest",
    "SLOReport",
    "SLOResult",
    "SLOSpec",
    "SLOViolation",
    "STORE_SCHEMA_VERSION",
    "SeriesRegistry",
    "Span",
    "SpanStats",
    "TRACE_SCHEMA_VERSION",
    "TraceSink",
    "UNATTRIBUTED",
    "alerts",
    "campaign_progress",
    "campaign_summary",
    "config_hash",
    "counter",
    "critical_path",
    "default_slos",
    "diff_profiles",
    "emit",
    "enabled",
    "evaluate_all",
    "fleet_baseline",
    "folded_stacks",
    "gauge",
    "histogram",
    "observed",
    "payload_chunks",
    "peak_rss_kb",
    "profile_records",
    "read_heartbeats",
    "recorder",
    "resume",
    "run_watchtower",
    "span",
    "split_exact",
    "start",
    "stop",
    "to_folded",
    "write_heartbeat",
]
