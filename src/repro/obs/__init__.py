"""repro.obs — deterministic observability for the simulation stack.

The paper's KWO service lives on continuous telemetry and real-time
monitoring (§4.4); this package gives the *reproduction itself* the same
property: structured sim-time traces (spans + events), an in-process
metrics registry, and run manifests, all with byte-stable exports so two
runs of the same ``(scenario, seed)`` produce identical observability
output (docs/OBSERVABILITY.md).

Disabled by default; the whole module-level API is a no-op until a session
is opened::

    from repro import obs

    with obs.observed(manifest=scenario.manifest()) as rec:
        run_before_after(scenario)
    rec.sink.dump("trace.jsonl")
    print(rec.metrics.to_json())
"""

from repro.obs.manifest import RunManifest, config_hash
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    Recorder,
    Span,
    TraceSink,
    counter,
    emit,
    enabled,
    gauge,
    histogram,
    observed,
    recorder,
    span,
    start,
    stop,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObservabilityError",
    "Recorder",
    "RunManifest",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TraceSink",
    "config_hash",
    "counter",
    "emit",
    "enabled",
    "gauge",
    "histogram",
    "observed",
    "recorder",
    "span",
    "start",
    "stop",
]
