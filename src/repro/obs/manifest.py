"""Run manifests: the provenance record written alongside every result.

A manifest answers "what exactly produced this number?" — the scenario
name, root seed, a content hash of the configuration that was run, the
slider position and the package version.  Because a run is a pure function
of ``(scenario, seed)`` (docs/INVARIANTS.md), the manifest is a complete
replay recipe: two results with equal manifests are byte-comparable.

``config_hash`` canonicalises arbitrary nests of dataclasses, enums, dicts
and sequences into sorted-key JSON before hashing, so hash equality means
configuration equality regardless of field declaration order.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass

from repro.obs.metrics import ObservabilityError


def _canonical(obj: object) -> object:
    """Reduce ``obj`` to a JSON-stable value tree (sorted, enum-resolved)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in sorted(dataclasses.fields(obj), key=lambda f: f.name)
        }
    if isinstance(obj, enum.Enum):
        return _canonical(obj.value)
    if isinstance(obj, dict):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    text = repr(obj)
    if " at 0x" in text:
        # A default object repr embeds the memory address — hashing it would
        # silently break the byte-stable-manifest contract.
        raise ObservabilityError(
            f"cannot canonicalise {type(obj).__name__} for config hashing: "
            "give it a stable repr or reduce it to dataclasses/plain values"
        )
    return text


def config_hash(config: object) -> str:
    """A short, stable content hash of any configuration value tree."""
    payload = json.dumps(_canonical(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to reproduce (and trust) one experiment run."""

    scenario: str
    seed: int
    config_hash: str
    slider: int | None = None
    version: str = ""

    @classmethod
    def create(
        cls,
        scenario: str,
        seed: int,
        config: object,
        slider: int | None = None,
    ) -> "RunManifest":
        # Imported lazily: repro/__init__ transitively imports modules that
        # import repro.obs, so a top-level import here would be circular.
        from repro import __version__

        return cls(
            scenario=scenario,
            seed=int(seed),
            config_hash=config_hash(config),
            slider=None if slider is None else int(slider),
            version=__version__,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "slider": self.slider,
            "version": self.version,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
