"""The fleet watchtower: cross-run anomaly detection over a FleetStore.

KEA-style continuous fleet tuning (PAPERS.md) lives or dies on noticing
when a fleet *stops* earning its savings — a regression in attributed
credits, an alert storm on one run, or what-if calibration quietly
drifting away from realized outcomes.  The watchtower turns a
:class:`repro.obs.store.FleetStore` into exactly those checks:

* **savings regression** — each warehouse's attributed savings credits
  compared against a blessed fleet baseline (``fleet_baseline``), with a
  relative tolerance;
* **alert storms** — any ``(run, alert)`` whose fire count reaches the
  storm threshold;
* **calibration drift** — per-warehouse mean absolute what-if error
  growing past its baselined value by more than the drift tolerance.

Everything is a pure function of the store (plus the baseline dict), so
reports are byte-stable through ``repro.lint.output.dumps_json`` and a
same-seed fleet produces the identical report every run — which is what
lets CI gate on it (``repro.cli obs watchtower``, nonzero exit on any
error-severity finding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.store import FleetStore

#: Bumped on any incompatible change to baseline / report shapes.
WATCHTOWER_SCHEMA_VERSION = 1

#: Findings at this severity flip the report to not-ok (exit 1 in the CLI).
ERROR = "error"
#: Informational findings (new warehouses, …); never fail the gate.
NOTE = "note"


@dataclass(frozen=True)
class WatchtowerThresholds:
    """Tunable anomaly thresholds (CLI flags map 1:1 onto these)."""

    #: Allowed relative drop in attributed credits vs baseline.
    savings_drop_tolerance: float = 0.05
    #: Fires of one alert within one run at which a storm is declared.
    alert_storm_fires: int = 8
    #: Allowed relative growth of mean |what-if error| vs baseline.
    calibration_drift_tolerance: float = 0.25
    #: Absolute slack (credits) added to the drift bound so near-zero
    #: baselines don't flag on float dust.
    calibration_floor_credits: float = 0.005


def fleet_facts(store: FleetStore) -> dict:
    """The per-warehouse facts the watchtower compares across runs.

    Warehouses with empty names (manifest rows) are excluded; keys are
    name-sorted so the dict serializes byte-stably.
    """
    savings = store.savings_credits_by_warehouse()
    calibration = store.calibration_by_warehouse()
    decision_counts: dict[str, int] = {}
    for row in store.query(kind="decision"):
        name = row["warehouse"]
        decision_counts[name] = decision_counts.get(name, 0) + 1
    warehouses = {}
    for name in sorted(set(savings) | set(calibration) | set(decision_counts)):
        if not name:
            continue
        calib = calibration.get(name, {})
        warehouses[name] = {
            "attributed_credits": savings.get(name, 0.0),
            "n_decisions": decision_counts.get(name, 0),
            "n_sealed": calib.get("n_sealed", 0),
            "n_with_prediction": calib.get("n_with_prediction", 0),
            "mean_abs_error_credits": calib.get("mean_abs_error_credits", 0.0),
            "mean_error_credits": calib.get("mean_error_credits", 0.0),
        }
    alert_max_fires: dict[str, int] = {}
    for (_, alert), fires in store.alert_fire_counts().items():
        alert_max_fires[alert] = max(alert_max_fires.get(alert, 0), fires)
    return {
        "schema": WATCHTOWER_SCHEMA_VERSION,
        "runs": len(store.runs()),
        "warehouses": warehouses,
        "alert_max_fires": {
            name: alert_max_fires[name] for name in sorted(alert_max_fires)
        },
    }


def fleet_baseline(store: FleetStore) -> dict:
    """The blessable baseline: the current store's facts, verbatim.

    Committed next to the bench baselines and handed back to
    :func:`run_watchtower` as the reference a future fleet must not
    regress from.
    """
    return fleet_facts(store)


def run_watchtower(
    store: FleetStore,
    baseline: dict | None = None,
    thresholds: WatchtowerThresholds = WatchtowerThresholds(),
) -> dict:
    """Run every anomaly check; return the byte-stable report dict.

    ``report["ok"]`` is False iff any finding carries error severity.
    Without a baseline only the absolute checks (alert storms) run — the
    regression and drift checks need a reference fleet.
    """
    current = fleet_facts(store)
    findings: list[dict] = []

    for (run, alert), fires in sorted(store.alert_fire_counts().items()):
        if fires >= thresholds.alert_storm_fires:
            findings.append(
                {
                    "kind": "alert_storm",
                    "severity": ERROR,
                    "subject": f"{run}:{alert}",
                    "fires": fires,
                    "threshold": thresholds.alert_storm_fires,
                    "message": (
                        f"alert {alert!r} fired {fires}x in run {run!r} "
                        f"(storm threshold {thresholds.alert_storm_fires})"
                    ),
                }
            )

    if baseline is not None:
        base_warehouses = baseline.get("warehouses", {})
        for name in sorted(base_warehouses):
            base = base_warehouses[name]
            now = current["warehouses"].get(name)
            if now is None:
                findings.append(
                    {
                        "kind": "missing_warehouse",
                        "severity": ERROR,
                        "subject": name,
                        "message": (
                            f"warehouse {name!r} is in the baseline but "
                            "absent from the store"
                        ),
                    }
                )
                continue
            base_credits = float(base.get("attributed_credits", 0.0))
            slack = max(
                abs(base_credits) * thresholds.savings_drop_tolerance, 1e-9
            )
            if now["attributed_credits"] < base_credits - slack:
                findings.append(
                    {
                        "kind": "savings_regression",
                        "severity": ERROR,
                        "subject": name,
                        "baseline_credits": base_credits,
                        "current_credits": now["attributed_credits"],
                        "tolerance": thresholds.savings_drop_tolerance,
                        "message": (
                            f"warehouse {name!r} attributed "
                            f"{now['attributed_credits']:.6f}cr vs baseline "
                            f"{base_credits:.6f}cr "
                            f"(tolerance {thresholds.savings_drop_tolerance:.0%})"
                        ),
                    }
                )
            base_error = float(base.get("mean_abs_error_credits", 0.0))
            allowed = (
                base_error * (1.0 + thresholds.calibration_drift_tolerance)
                + thresholds.calibration_floor_credits
            )
            if now["mean_abs_error_credits"] > allowed:
                findings.append(
                    {
                        "kind": "calibration_drift",
                        "severity": ERROR,
                        "subject": name,
                        "baseline_mean_abs_error_credits": base_error,
                        "current_mean_abs_error_credits": now[
                            "mean_abs_error_credits"
                        ],
                        "allowed_mean_abs_error_credits": allowed,
                        "message": (
                            f"warehouse {name!r} mean |what-if error| "
                            f"{now['mean_abs_error_credits']:.6f}cr exceeds "
                            f"the drifted bound {allowed:.6f}cr "
                            f"(baseline {base_error:.6f}cr)"
                        ),
                    }
                )
        for name in sorted(set(current["warehouses"]) - set(base_warehouses)):
            findings.append(
                {
                    "kind": "new_warehouse",
                    "severity": NOTE,
                    "subject": name,
                    "message": (
                        f"warehouse {name!r} is new since the baseline "
                        "(re-bless to start tracking it)"
                    ),
                }
            )

    return {
        "schema": WATCHTOWER_SCHEMA_VERSION,
        "ok": not any(f["severity"] == ERROR for f in findings),
        "store": {
            "rows": len(store),
            "runs": store.runs(),
            "warehouses": store.warehouses(),
        },
        "thresholds": {
            "savings_drop_tolerance": thresholds.savings_drop_tolerance,
            "alert_storm_fires": thresholds.alert_storm_fires,
            "calibration_drift_tolerance": thresholds.calibration_drift_tolerance,
            "calibration_floor_credits": thresholds.calibration_floor_credits,
        },
        "baseline_runs": None if baseline is None else baseline.get("runs"),
        "current": current,
        "findings": findings,
    }


def render_text(report: dict) -> str:
    """The terminal rendering of a watchtower report (deterministic)."""
    store = report["store"]
    lines = [
        f"watchtower: {store['rows']} rows, {len(store['runs'])} run(s), "
        f"{len(store['warehouses'])} warehouse(s)"
        + (
            ""
            if report["baseline_runs"] is None
            else f", baseline over {report['baseline_runs']} run(s)"
        ),
    ]
    for name, facts in report["current"]["warehouses"].items():
        lines.append(
            f"  {name:<14} attributed={facts['attributed_credits']:>+12.6f}cr  "
            f"decisions={facts['n_decisions']:<5} sealed={facts['n_sealed']:<5} "
            f"mean |err|={facts['mean_abs_error_credits']:.5f}cr"
        )
    errors = [f for f in report["findings"] if f["severity"] == ERROR]
    notes = [f for f in report["findings"] if f["severity"] != ERROR]
    for finding in errors:
        lines.append(f"  [{finding['kind']}] {finding['message']}")
    for finding in notes:
        lines.append(f"  (note) [{finding['kind']}] {finding['message']}")
    verdict = "OK" if report["ok"] else "REGRESSION"
    lines.append(
        f"verdict: {verdict} ({len(errors)} error finding(s), "
        f"{len(notes)} note(s))"
    )
    return "\n".join(lines)
