"""Trace profiler: aggregate span JSONL into per-span-name statistics.

Answers "where did this run spend its simulated time, and how is that
different from the last run?" from a trace file alone:

* :func:`profile_records` — per-span-name count, total and *self* sim-time
  (total minus direct children), min/max durations, plus event counts;
* :func:`critical_path` — the heaviest root-to-leaf chain through the
  span tree (by subtree sim-time, tie-broken by subtree span count then
  by id, so the extraction is deterministic even in a discrete-event
  simulation where most spans are instantaneous);
* :func:`diff_profiles` — per-name deltas between two profiles, the
  regression-hunting view (``repro.cli obs profile a.jsonl --diff b.jsonl``).

The profiler is a pure function of the trace records; its output dict is
sorted and JSON-stable, so same-seed runs profile byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class SpanStats:
    """Aggregate over every closed span sharing one name."""

    name: str
    count: int = 0
    total_time: float = 0.0
    self_time: float = 0.0
    min_time: float = 0.0
    max_time: float = 0.0

    def add(self, duration: float, self_duration: float) -> None:
        if self.count == 0:
            self.min_time = self.max_time = duration
        else:
            self.min_time = min(self.min_time, duration)
            self.max_time = max(self.max_time, duration)
        self.count += 1
        self.total_time += duration
        self.self_time += self_duration

    def to_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "total_time": self.total_time,
            "self_time": self.self_time,
            "min_time": self.min_time,
            "max_time": self.max_time,
        }


@dataclass
class Profile:
    """One trace's span statistics."""

    spans: dict[str, SpanStats] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    n_spans: int = 0
    n_events: int = 0
    total_time: float = 0.0  # sum of all span durations (parents included)

    def top(self, n: int | None = None) -> list[SpanStats]:
        """Heaviest spans first: by total time, then count, then name."""
        ranked = sorted(
            self.spans.values(), key=lambda s: (-s.total_time, -s.count, s.name)
        )
        return ranked if n is None else ranked[:n]

    def to_dict(self) -> dict[str, object]:
        return {
            "n_spans": self.n_spans,
            "n_events": self.n_events,
            "total_time": self.total_time,
            "spans": {name: self.spans[name].to_dict() for name in sorted(self.spans)},
            "events": {name: self.events[name] for name in sorted(self.events)},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"


def _span_records(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("type") == "span"]


def profile_records(records: list[dict]) -> Profile:
    """Build a :class:`Profile` from parsed trace records.

    Self-time is a span's own duration minus its *direct* children's; in a
    discrete-event simulation most spans are instantaneous, so counts carry
    as much signal as durations — both are reported.
    """
    profile = Profile()
    spans = _span_records(records)
    durations: dict[int, float] = {}
    children_time: dict[int, float] = {}
    for record in spans:
        duration = float(record["time_end"]) - float(record["time"])
        durations[record["id"]] = duration
        parent = record.get("parent")
        if parent is not None:
            children_time[parent] = children_time.get(parent, 0.0) + duration
    for record in spans:
        name = str(record["name"])
        duration = durations[record["id"]]
        self_duration = max(0.0, duration - children_time.get(record["id"], 0.0))
        stats = profile.spans.get(name)
        if stats is None:
            stats = profile.spans[name] = SpanStats(name)
        stats.add(duration, self_duration)
        profile.n_spans += 1
        profile.total_time += duration
    for record in records:
        if record.get("type") == "event":
            name = str(record.get("name", "<unnamed>"))
            profile.events[name] = profile.events.get(name, 0) + 1
            profile.n_events += 1
    return profile


def folded_stacks(records: list[dict], scale: float = 1000.0) -> list[tuple[str, int]]:
    """Collapsed call stacks: ``(root;child;...;leaf, self-time)`` pairs.

    The flamegraph.pl / speedscope "folded" interchange format: one entry
    per distinct span ancestry chain, weighted by the summed *self*
    sim-time of the spans at that position, scaled to integer units
    (default ``scale=1000`` → milliseconds).  Entries are name-sorted, so
    the output is a pure function of the trace — same-seed runs fold to
    identical bytes (the golden-file test states this).

    Instantaneous spans (ubiquitous in a discrete-event simulation) fold
    to weight 0; they are kept so the stack *shapes* stay visible to
    tooling that counts samples rather than summing weights.
    """
    spans = _span_records(records)
    by_id = {r["id"]: r for r in spans}
    children_time: dict[int, float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None:
            duration = float(record["time_end"]) - float(record["time"])
            children_time[parent] = children_time.get(parent, 0.0) + duration
    stacks: dict[str, int] = {}
    for record in spans:
        parts = []
        node = record
        while node is not None:
            parts.append(str(node["name"]))
            parent = node.get("parent")
            node = by_id.get(parent) if parent is not None else None
        stack = ";".join(reversed(parts))
        duration = float(record["time_end"]) - float(record["time"])
        self_time = max(0.0, duration - children_time.get(record["id"], 0.0))
        stacks[stack] = stacks.get(stack, 0) + int(round(self_time * scale))
    return sorted(stacks.items())


def to_folded(records: list[dict], scale: float = 1000.0) -> str:
    """The folded-stack text: ``stack weight`` lines, byte-stable."""
    return "".join(
        f"{stack} {weight}\n" for stack, weight in folded_stacks(records, scale)
    )


def critical_path(records: list[dict]) -> list[dict]:
    """The heaviest root-to-leaf chain through the span tree.

    Weight of a span is its subtree's total sim-time; ties (ubiquitous with
    instantaneous spans) break by subtree span count, then by smallest id,
    making the path a pure function of the trace.  Returns one row per hop:
    ``{"id", "name", "time", "duration", "subtree_time", "subtree_spans"}``.
    """
    spans = _span_records(records)
    if not spans:
        return []
    by_id = {r["id"]: r for r in spans}
    children: dict[int | None, list[int]] = {}
    for record in spans:
        children.setdefault(record.get("parent"), []).append(record["id"])

    subtree_time: dict[int, float] = {}
    subtree_spans: dict[int, int] = {}

    def measure(span_id: int) -> None:
        record = by_id[span_id]
        time_total = float(record["time_end"]) - float(record["time"])
        count = 1
        for child in children.get(span_id, ()):
            measure(child)
            time_total += subtree_time[child]
            count += subtree_spans[child]
        subtree_time[span_id] = time_total
        subtree_spans[span_id] = count

    roots = [sid for sid in children.get(None, ()) if sid in by_id]
    for root in roots:
        measure(root)

    def heaviest(candidates: list[int]) -> int:
        return max(
            candidates, key=lambda sid: (subtree_time[sid], subtree_spans[sid], -sid)
        )

    path: list[dict] = []
    current = heaviest(roots)
    while True:
        record = by_id[current]
        path.append(
            {
                "id": current,
                "name": record["name"],
                "time": record["time"],
                "duration": float(record["time_end"]) - float(record["time"]),
                "subtree_time": subtree_time[current],
                "subtree_spans": subtree_spans[current],
            }
        )
        kids = children.get(current, [])
        if not kids:
            return path
        current = heaviest(kids)


def diff_profiles(before: Profile, after: Profile) -> dict[str, object]:
    """Per-span-name deltas, ``after`` relative to ``before``.

    Rows are name-sorted; spans present on only one side show with zeros on
    the other, so added/removed instrumentation is visible at a glance.
    """
    names = sorted(set(before.spans) | set(after.spans))
    rows = []
    for name in names:
        a = before.spans.get(name)
        b = after.spans.get(name)
        count_a = a.count if a else 0
        count_b = b.count if b else 0
        time_a = a.total_time if a else 0.0
        time_b = b.total_time if b else 0.0
        rows.append(
            {
                "name": name,
                "count_before": count_a,
                "count_after": count_b,
                "count_delta": count_b - count_a,
                "time_before": time_a,
                "time_after": time_b,
                "time_delta": time_b - time_a,
            }
        )
    return {
        "spans": rows,
        "n_spans_before": before.n_spans,
        "n_spans_after": after.n_spans,
        "total_time_before": before.total_time,
        "total_time_after": after.total_time,
    }
