"""Deterministic alerting: first-class fire/resolve events in the trace.

The paper's monitoring loop (§4.4) self-corrects — backoffs, spike
conservatism, external-change reverts — but until now those decisions only
left scattered counters and ad-hoc events behind.  :class:`AlertManager`
turns monitor signals and SLO violations into a proper alert lifecycle:

* ``fire(name, time, ...)`` opens the alert and writes an ``alert.fire``
  event into the trace; re-firing an already-active alert just bumps its
  re-fire count (no event spam while a condition persists);
* ``resolve(name, time, ...)`` closes it with an ``alert.resolve`` event
  carrying the active duration and the number of suppressed re-fires.

``core/monitoring.py`` and ``core/optimizer.py`` record their backoff /
spike / external-conflict decisions through this manager, so every
self-correction in a run is auditable afterwards (``repro.cli obs
alerts``).  Like everything in ``repro.obs``, timestamps are simulation
time passed explicitly, and exports are byte-stable sorted JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs.metrics import ObservabilityError, _check_name

#: Alert severities, mildest first.  Severity is informational (it rides
#: along in events and exports); the lifecycle does not depend on it.
SEVERITIES = ("info", "warning", "critical")


@dataclass
class ActiveAlert:
    """State of one currently-firing alert."""

    name: str
    severity: str
    fired_at: float
    refires: int = 0


class AlertManager:
    """Per-recorder alert lifecycle tracker.

    Alert names are dotted lowercase like metric names
    (``optimizer.backoff.smoke_wh``); one name is one alert — firing it
    while active is deduplicated.
    """

    def __init__(self, recorder):
        self._recorder = recorder
        self._active: dict[str, ActiveAlert] = {}
        #: Every lifecycle transition, in emission order (plain JSON rows).
        self.history: list[dict] = []

    # ------------------------------------------------------------- lifecycle
    def fire(
        self, name: str, time: float, severity: str = "warning", **attrs: object
    ) -> bool:
        """Open ``name`` at sim time ``time``; returns False if already open."""
        _check_name(name)
        if severity not in SEVERITIES:
            raise ObservabilityError(
                f"unknown alert severity {severity!r}; one of {SEVERITIES}"
            )
        active = self._active.get(name)
        if active is not None:
            active.refires += 1
            return False
        self._active[name] = ActiveAlert(name, severity, float(time))
        self.history.append(
            {"alert": name, "state": "fire", "severity": severity, "time": float(time)}
        )
        self._recorder.emit(
            "alert.fire", time, alert=name, severity=severity, **attrs
        )
        self._recorder.counter("repro.alerts.fired").inc(time=time)
        return True

    def resolve(self, name: str, time: float, **attrs: object) -> bool:
        """Close ``name`` at sim time ``time``; returns False if not active."""
        active = self._active.pop(name, None)
        if active is None:
            return False
        self.history.append(
            {
                "alert": name,
                "state": "resolve",
                "severity": active.severity,
                "time": float(time),
            }
        )
        self._recorder.emit(
            "alert.resolve",
            time,
            alert=name,
            severity=active.severity,
            duration=float(time) - active.fired_at,
            refires=active.refires,
            **attrs,
        )
        self._recorder.counter("repro.alerts.resolved").inc(time=time)
        return True

    def set_state(
        self, name: str, firing: bool, time: float, severity: str = "warning", **attrs
    ) -> None:
        """Level-triggered convenience: fire when ``firing``, else resolve.

        Call sites that re-evaluate a condition every tick (backoff, spike)
        use this so the alert tracks the condition's edges exactly.
        """
        if firing:
            self.fire(name, time, severity=severity, **attrs)
        else:
            self.resolve(name, time, **attrs)

    # -------------------------------------------------------------- queries
    def is_active(self, name: str) -> bool:
        return name in self._active

    def active(self) -> list[ActiveAlert]:
        """Currently-firing alerts, name-sorted."""
        return [self._active[name] for name in sorted(self._active)]

    def __len__(self) -> int:
        return len(self.history)

    # -------------------------------------------------------------- exports
    def snapshot(self) -> dict[str, object]:
        return {
            "active": [
                {
                    "alert": a.name,
                    "severity": a.severity,
                    "fired_at": a.fired_at,
                    "refires": a.refires,
                }
                for a in self.active()
            ],
            "history": list(self.history),
        }

    def to_json(self) -> str:
        """Byte-stable JSON export (sorted keys, compact separators)."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":")) + "\n"


class _NullAlertManager:
    """Shared no-op manager handed out while observation is disabled."""

    __slots__ = ()

    def fire(self, name, time, severity="warning", **attrs) -> bool:
        return False

    def resolve(self, name, time, **attrs) -> bool:
        return False

    def set_state(self, name, firing, time, severity="warning", **attrs) -> None:
        pass

    def is_active(self, name) -> bool:
        return False


NULL_ALERTS = _NullAlertManager()
