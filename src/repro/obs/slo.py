"""Declarative SLOs evaluated over sim-time metric series.

An :class:`SLOSpec` states an objective over one bucketed series from
:mod:`repro.obs.series` — e.g. *the per-bucket max of
``repro.monitor.etl_wh.latency_ratio`` stays ≤ 1.5* — and the engine
evaluates it with **multi-window burn-rate** logic (the SRE-workbook
pattern): a violation fires only when the fraction of objective-breaking
buckets exceeds ``burn_threshold`` over *both* a long window (sustained
damage) and a short window (still happening now), and resolves when the
short window recovers.  That makes violations robust to a single noisy
bucket while still latching quickly onto real regressions.

Everything is deterministic: buckets fold in emission order, windows are
measured in whole buckets, and violations carry exact sim-time stamps
(the end of the bucket whose evaluation flipped the state).  Reports
export as byte-stable sorted JSON — same-seed runs agree to the byte
(``tests/props/test_obs_series_determinism.py``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.common.simtime import HOUR
from repro.obs.metrics import ObservabilityError
from repro.obs.series import AGGREGATES, SeriesRegistry

_OPS = ("le", "ge")


@dataclass(frozen=True)
class SLOSpec:
    """One objective over one metric series.

    A bucket is *bad* when its ``aggregate`` scalar breaks
    ``op threshold`` (``le``: value must stay ≤ threshold; ``ge``: value
    must stay ≥ threshold).
    """

    name: str
    metric: str
    threshold: float
    op: str = "le"
    aggregate: str = "max"
    #: Long burn window (sustained damage), in sim seconds.
    window_seconds: float = 1 * HOUR
    #: Short confirmation window (still burning), in sim seconds.
    short_window_seconds: float = 900.0
    #: Fraction of bad buckets within a window that counts as burning.
    burn_threshold: float = 0.5
    description: str = ""

    def __post_init__(self):
        if self.op not in _OPS:
            raise ObservabilityError(f"SLO {self.name!r}: op must be one of {_OPS}")
        if self.aggregate not in AGGREGATES:
            raise ObservabilityError(
                f"SLO {self.name!r}: aggregate must be one of {AGGREGATES}"
            )
        if self.window_seconds <= 0 or self.short_window_seconds <= 0:
            raise ObservabilityError(f"SLO {self.name!r}: windows must be positive")
        if self.short_window_seconds > self.window_seconds:
            raise ObservabilityError(
                f"SLO {self.name!r}: short window exceeds the long window"
            )
        if not 0.0 < self.burn_threshold <= 1.0:
            raise ObservabilityError(
                f"SLO {self.name!r}: burn threshold must be in (0, 1]"
            )

    def bucket_is_bad(self, value: float) -> bool:
        return value > self.threshold if self.op == "le" else value < self.threshold

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
            "op": self.op,
            "aggregate": self.aggregate,
            "window_seconds": self.window_seconds,
            "short_window_seconds": self.short_window_seconds,
            "burn_threshold": self.burn_threshold,
            "description": self.description,
        }


@dataclass(frozen=True)
class SLOViolation:
    """One burn episode: when the objective started and stopped burning."""

    slo: str
    fired_at: float  # sim time: end of the bucket that tipped both windows
    resolved_at: float | None  # None = still burning at the end of the series
    peak_burn: float  # worst long-window burn rate while firing
    bad_buckets: int  # bad buckets inside the episode

    def to_dict(self) -> dict[str, object]:
        return {
            "slo": self.slo,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "peak_burn": self.peak_burn,
            "bad_buckets": self.bad_buckets,
        }


@dataclass
class SLOResult:
    """Evaluation of one spec over one series."""

    spec: SLOSpec
    buckets_evaluated: int = 0
    bad_buckets: int = 0
    violations: list[SLOViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def compliance(self) -> float:
        """Fraction of evaluated buckets that met the objective."""
        if self.buckets_evaluated == 0:
            return 1.0
        return 1.0 - self.bad_buckets / self.buckets_evaluated

    def to_dict(self) -> dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "buckets_evaluated": self.buckets_evaluated,
            "bad_buckets": self.bad_buckets,
            "compliance": self.compliance,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


def evaluate(spec: SLOSpec, registry: SeriesRegistry) -> SLOResult | None:
    """Evaluate one spec; ``None`` when its metric has no recorded series.

    The two burn windows slide over *observed* buckets (buckets with no
    recordings carry no evidence either way); window membership is decided
    by bucket-index distance, so a sparse series still burns over the same
    sim-time horizon as a dense one.
    """
    series = registry.get(spec.metric)
    if series is None or len(series) == 0:
        return None
    points = series.points(spec.aggregate)
    long_n = max(1, int(round(spec.window_seconds / series.bucket_seconds)))
    short_n = max(1, int(round(spec.short_window_seconds / series.bucket_seconds)))

    result = SLOResult(spec=spec, buckets_evaluated=len(points))
    flags = [(index, spec.bucket_is_bad(value)) for index, value in points]
    result.bad_buckets = sum(1 for _, bad in flags if bad)

    firing = False
    fired_at = 0.0
    peak = 0.0
    episode_bad = 0
    # Trailing windows over observed buckets, advanced with two pointers so
    # evaluation stays O(n) however long the run was.
    long_start = short_start = 0
    long_bad = short_bad = 0
    for i, (index, bad) in enumerate(flags):
        long_bad += bad
        short_bad += bad
        while flags[long_start][0] <= index - long_n:
            long_bad -= flags[long_start][1]
            long_start += 1
        while flags[short_start][0] <= index - short_n:
            short_bad -= flags[short_start][1]
            short_start += 1
        burn_long = long_bad / (i - long_start + 1)
        burn_short = short_bad / (i - short_start + 1)
        burning = burn_long >= spec.burn_threshold and burn_short >= spec.burn_threshold
        if burning and not firing:
            firing = True
            fired_at = series.bucket_end(index)
            peak = burn_long
            episode_bad = 0
        if firing:
            peak = max(peak, burn_long)
            episode_bad += int(bad)
            # Resolve on short-window recovery: the long window may stay
            # saturated for a while after the condition actually cleared.
            if burn_short < spec.burn_threshold:
                result.violations.append(
                    SLOViolation(
                        spec.name, fired_at, series.bucket_end(index), peak, episode_bad
                    )
                )
                firing = False
    if firing:
        result.violations.append(
            SLOViolation(spec.name, fired_at, None, peak, episode_bad)
        )
    return result


@dataclass
class SLOReport:
    """All evaluated specs for one run, with a byte-stable export."""

    results: list[SLOResult] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)  # specs with no series

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def violations(self) -> list[SLOViolation]:
        out: list[SLOViolation] = []
        for result in self.results:
            out.extend(result.violations)
        return out

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "results": [r.to_dict() for r in sorted(self.results, key=lambda r: r.spec.name)],
            "skipped": sorted(self.skipped),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"


def evaluate_all(specs: list[SLOSpec], registry: SeriesRegistry) -> SLOReport:
    report = SLOReport()
    for spec in specs:
        result = evaluate(spec, registry)
        if result is None:
            report.skipped.append(spec.name)
        else:
            report.results.append(result)
    return report


#: Default spend budget for the inferred per-warehouse spend-rate SLO,
#: in credits per hour (§6's value-based pricing watches exactly this).
DEFAULT_SPEND_BUDGET_PER_HOUR = 100.0

_MONITOR_RE = re.compile(r"^repro\.monitor\.([a-z0-9_]+)\.([a-z0-9_]+)$")
_BILLING_RE = re.compile(r"^repro\.billing\.([a-z0-9_]+)\.credits$")


def default_slos(
    registry: SeriesRegistry,
    spend_budget_per_hour: float = DEFAULT_SPEND_BUDGET_PER_HOUR,
) -> list[SLOSpec]:
    """Infer a standard SLO set from the series a run actually recorded.

    Mirrors the paper's guardrails: per-warehouse p99-latency-ratio and
    spill-fraction objectives (§4.4's backoff criteria) plus a spend-rate
    budget per warehouse (§6).  Returned name-sorted so reports are stable.
    """
    specs: list[SLOSpec] = []
    for name in registry.names():
        monitor = _MONITOR_RE.match(name)
        if monitor:
            warehouse, signal = monitor.groups()
            if signal == "latency_ratio":
                specs.append(
                    SLOSpec(
                        name=f"latency-ratio.{warehouse}",
                        metric=name,
                        threshold=1.5,
                        op="le",
                        aggregate="max",
                        description="recent p99 stays within 1.5x of baseline over 1h",
                    )
                )
            elif signal == "spill_fraction":
                specs.append(
                    SLOSpec(
                        name=f"spill-fraction.{warehouse}",
                        metric=name,
                        threshold=0.05,
                        op="le",
                        aggregate="max",
                        description="spilled-query share stays under the backoff bar",
                    )
                )
        billing = _BILLING_RE.match(name)
        if billing:
            specs.append(
                SLOSpec(
                    name=f"spend-rate.{billing.group(1)}",
                    metric=name,
                    threshold=spend_budget_per_hour / HOUR,
                    op="le",
                    aggregate="rate",
                    description=(
                        f"billed credits stay under {spend_budget_per_hour:g}/h"
                    ),
                )
            )
    return sorted(specs, key=lambda s: s.name)
