"""Streaming observability: bounded-memory payload transport for fleets.

The monolithic session pipeline (``Recorder.to_payload`` →
``Recorder.merge_payload``) holds a worker's *entire* trace in memory and
ships it as one value — fine for a six-customer fleet, hopeless for the
10k-warehouse campaigns ROADMAP item 2 asks for.  This module converts
that pipeline to a streaming one without giving up a single byte of the
determinism contract (docs/OBSERVABILITY.md §v4):

* :class:`SpillingTraceSink` — a drop-in ``TraceSink`` whose in-memory
  tail is size-bounded; overflow spills to byte-stable JSONL segment
  files whose deterministic concatenation *is* ``to_jsonl()``, so a
  worker's peak RSS is O(spill bound), not O(run);
* :func:`payload_chunks` / :class:`PayloadChunkMerger` — the session
  payload split into an ordered stream of bounded chunks and folded back
  incrementally; merging a worker's chunks in order is byte-identical to
  merging its monolithic payload (``tests/props/test_obs_stream_determinism``
  states this as an equality);
* campaign **heartbeats** — workers append deterministic progress records
  (scenario, chunk seq, spans/events, sim-time reached) to a per-job file
  in a progress directory; ``repro.cli obs watch`` tails them and
  :func:`campaign_summary` folds them into a byte-stable summary;
* :class:`ResourceProbe` — the *only* place wall-clock and RSS readings
  are allowed to land.  They are exported exclusively to a
  ``.resources.json`` sidecar, never into trace/metrics/series exports,
  so the byte-identity surface stays clean (lint rule R018,
  docs/INVARIANTS.md).
"""

from __future__ import annotations

import json
import pathlib
import time
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.lint.output import dumps_json
from repro.obs.metrics import ObservabilityError

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

#: Bumped on any incompatible change to the chunk record shape.
CHUNK_SCHEMA_VERSION = 1
#: Bumped on any incompatible change to heartbeat / summary shapes.
HEARTBEAT_SCHEMA_VERSION = 1
#: Bumped on any incompatible change to the resources sidecar shape.
RESOURCES_SCHEMA_VERSION = 1

#: Default trace records per payload chunk.
DEFAULT_CHUNK_EVENTS = 512
#: Default in-memory records before a :class:`SpillingTraceSink` spills.
DEFAULT_SPILL_RECORDS = 4096


def _record_line(record: dict) -> str:
    """The one byte-stable serialization every trace export uses."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


# --------------------------------------------------------------------- sink
class SpillingTraceSink:
    """A ``TraceSink`` with a bounded in-memory tail and disk spill.

    Keeps at most ``max_records`` records in memory; on overflow the tail
    is written as a JSONL *segment* file (exactly the bytes ``to_jsonl``
    would produce for those records) and cleared.  Because segments are
    immutable and ordered, ``to_jsonl()`` is the deterministic
    concatenation of segment bytes plus the serialized tail — byte
    identical to what a plain :class:`repro.obs.trace.TraceSink` holding
    the same records would export.
    """

    def __init__(
        self,
        spill_dir: str | pathlib.Path,
        max_records: int = DEFAULT_SPILL_RECORDS,
    ):
        if max_records <= 0:
            raise ObservabilityError("spill bound must be a positive record count")
        self.spill_dir = pathlib.Path(spill_dir)
        self.max_records = int(max_records)
        self._tail: list[dict] = []
        self._segments: list[pathlib.Path] = []
        self._spilled = 0
        self.span_count = 0
        self.event_count = 0

    # -- write path
    def write(self, record: dict) -> None:
        self._tail.append(record)
        rtype = record.get("type")
        if rtype == "span":
            self.span_count += 1
        elif rtype == "event":
            self.event_count += 1
        if len(self._tail) >= self.max_records:
            self._spill()

    def _spill(self) -> None:
        if not self._tail:
            return
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        path = self.spill_dir / f"segment-{len(self._segments):06d}.jsonl"
        path.write_text(
            "".join(_record_line(r) for r in self._tail), encoding="utf-8"
        )
        self._segments.append(path)
        self._spilled += len(self._tail)
        self._tail = []

    # -- read path
    def __len__(self) -> int:
        return self._spilled + len(self._tail)

    @property
    def spilled_segments(self) -> int:
        return len(self._segments)

    @property
    def spilled_records(self) -> int:
        return self._spilled

    @property
    def records(self) -> list[dict]:
        """All records, materialized (compat with ``TraceSink.records``).

        O(run) memory — the monolithic escape hatch.  Streaming callers
        iterate :meth:`iter_records` instead.
        """
        return list(self.iter_records())

    def iter_records(self) -> Iterator[dict]:
        """Records in emission order, one at a time (segments re-parsed).

        The JSON round-trip is lossless here: every record was already
        coerced to plain JSON types by ``_jsonable`` at emission.
        """
        for path in self._segments:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    if line.strip():
                        yield json.loads(line)
        yield from self._tail

    def iter_jsonl(self) -> Iterator[str]:
        """The export bytes, one bounded piece at a time."""
        for path in self._segments:
            yield path.read_text(encoding="utf-8")
        for record in self._tail:
            yield _record_line(record)

    def to_jsonl(self) -> str:
        return "".join(self.iter_jsonl())

    def dump(self, path: str | pathlib.Path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            for piece in self.iter_jsonl():
                fh.write(piece)

    def cleanup(self) -> None:
        """Delete spill segments (call after the records left the sink)."""
        for path in self._segments:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._segments = []
        self._spilled = 0
        self._tail = []
        self.span_count = 0
        self.event_count = 0


def _iter_sink_records(sink: object) -> Iterable[dict]:
    """Iterate any sink's records without materializing when avoidable."""
    iterate = getattr(sink, "iter_records", None)
    if callable(iterate):
        return iterate()
    return sink.records


# ------------------------------------------------------------------- chunks
def payload_chunks(recorder, max_events: int = DEFAULT_CHUNK_EVENTS) -> Iterator[dict]:
    """Split a completed session into an ordered stream of payload chunks.

    Each chunk carries at most ``max_events`` trace records plus that
    chunk's span-record count; the first chunk declares the session's
    total consumed span ids (so the merger can reserve the whole block up
    front, exactly like the monolithic merge), and the final chunk carries
    the metrics/series snapshots — bounded aggregates that need no
    chunking.  A session with zero records still yields one final chunk.
    """
    if max_events <= 0:
        raise ObservabilityError("chunk size must be a positive record count")
    if recorder._stack:
        raise ObservabilityError("cannot stream a session payload with open spans")
    sink = recorder.sink
    total_spans = getattr(sink, "span_count", None)
    if total_spans is None:
        total_spans = sum(
            1 for r in _iter_sink_records(sink) if r.get("type") == "span"
        )
    seq = 0
    batch: list[dict] = []
    batch_spans = 0

    def chunk(final: bool) -> dict:
        out = {
            "schema": CHUNK_SCHEMA_VERSION,
            "seq": seq,
            "final": final,
            "records": batch,
            "span_ids": batch_spans,
        }
        if seq == 0:
            out["span_id_total"] = int(total_spans)
        if final:
            out["metrics"] = recorder.metrics.snapshot()
            out["series"] = recorder.series.snapshot()
        return out

    for record in _iter_sink_records(sink):
        batch.append(record)
        if record.get("type") == "span":
            batch_spans += 1
        if len(batch) >= max_events:
            yield chunk(final=False)
            seq += 1
            batch = []
            batch_spans = 0
    yield chunk(final=True)


class PayloadChunkMerger:
    """Folds one worker session's ordered chunk stream into a recorder.

    Reserves the worker's whole span-id block on the first chunk (the
    stream declares its total up front), then renumbers and appends each
    chunk's records as it arrives — so after the final chunk the parent
    session is byte-identical to one that merged the monolithic payload,
    while never holding more than one chunk in memory.
    """

    def __init__(self, recorder):
        self.recorder = recorder
        self.finished = False
        self._next_seq = 0
        self._offset = 0
        self._span_total: int | None = None
        self._merged_spans = 0

    def merge(self, chunk: dict) -> None:
        if self.finished:
            raise ObservabilityError("chunk stream already merged its final chunk")
        if self.recorder._stack:
            raise ObservabilityError(
                "cannot merge a payload chunk while spans are open"
            )
        schema = chunk.get("schema")
        if schema != CHUNK_SCHEMA_VERSION:
            raise ObservabilityError(
                f"unsupported chunk schema {schema!r} "
                f"(expected {CHUNK_SCHEMA_VERSION})"
            )
        seq = int(chunk["seq"])
        if seq != self._next_seq:
            raise ObservabilityError(
                f"chunk out of order: got seq {seq}, expected {self._next_seq}"
            )
        if seq == 0:
            total = int(chunk["span_id_total"])
            self._span_total = total
            self._offset = (
                self.recorder.reserve_span_ids(total) - 1 if total else 0
            )
        self._merged_spans += self.recorder._merge_records(
            chunk["records"], self._offset
        )
        self._next_seq += 1
        if chunk["final"]:
            if self._merged_spans != self._span_total:
                raise ObservabilityError(
                    f"chunk stream integrity failure: merged "
                    f"{self._merged_spans} span records but the stream "
                    f"declared {self._span_total}"
                )
            self.recorder.metrics.merge(chunk["metrics"])
            self.recorder.series.merge(chunk["series"])
            self.finished = True


# --------------------------------------------------------------- heartbeats
def heartbeat_path(progress_dir: str | pathlib.Path, job_index: int) -> pathlib.Path:
    return pathlib.Path(progress_dir) / f"job-{job_index:05d}.jsonl"


def write_heartbeat(
    progress_dir: str | pathlib.Path, job_index: int, **fields: object
) -> None:
    """Append one heartbeat record to the job's progress file.

    Each job writes only its own file, so concurrent workers never
    contend; every field is deterministic simulation state (status,
    chunk seq, record counts, sim-time reached) — never a clock reading —
    which is what makes :func:`campaign_summary` byte-stable.
    """
    path = heartbeat_path(progress_dir, job_index)
    path.parent.mkdir(parents=True, exist_ok=True)
    row = {"schema": HEARTBEAT_SCHEMA_VERSION, "job": int(job_index), **fields}
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(_record_line(row))


def read_heartbeats(progress_dir: str | pathlib.Path) -> dict[int, list[dict]]:
    """All heartbeat records by job index (files read in sorted order)."""
    base = pathlib.Path(progress_dir)
    out: dict[int, list[dict]] = {}
    if not base.is_dir():
        return out
    for path in sorted(base.glob("job-*.jsonl")):
        rows: list[dict] = []
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:  # pragma: no cover - file vanished mid-read
            continue
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue  # a heartbeat torn mid-append; the next poll heals it
            if isinstance(row, dict):
                rows.append(row)
        if rows:
            out[int(rows[0].get("job", -1))] = rows
    return out


def campaign_progress(progress_dir: str | pathlib.Path) -> list[dict]:
    """One row per job: the latest known state folded from its heartbeats."""
    rows = []
    heartbeats = read_heartbeats(progress_dir)
    for job_index in sorted(heartbeats):
        beats = heartbeats[job_index]
        state = {
            "job": job_index,
            "scenario": "?",
            "protocol": "?",
            "status": "unknown",
            "chunks": 0,
            "records": 0,
            "spans": 0,
            "events": 0,
            "sim_time": 0.0,
        }
        for beat in beats:
            status = beat.get("status")
            if status == "start":
                state["scenario"] = str(beat.get("scenario", "?"))
                state["protocol"] = str(beat.get("protocol", "?"))
                state["status"] = "running"
            elif status == "chunk":
                state["status"] = "running"
                state["chunks"] = int(beat.get("seq", -1)) + 1
                for key in ("records", "spans", "events"):
                    state[key] = int(beat.get(key, state[key]))
                state["sim_time"] = float(beat.get("sim_time", state["sim_time"]))
            elif status == "done":
                state["status"] = "done"
                state["chunks"] = int(beat.get("chunks", state["chunks"]))
                for key in ("records", "spans", "events"):
                    state[key] = int(beat.get(key, state[key]))
                state["sim_time"] = float(beat.get("sim_time", state["sim_time"]))
        rows.append(state)
    return rows


def campaign_summary(progress_dir: str | pathlib.Path) -> dict:
    """The byte-stable end-of-campaign summary folded from heartbeats.

    A pure function of the heartbeat records, which are themselves pure
    simulation state — so two same-seed campaigns summarize to identical
    bytes regardless of workers, machine, or wall-clock (the CI streaming
    smoke ``cmp``s this file across runs).
    """
    jobs = campaign_progress(progress_dir)
    totals = {
        "chunks": sum(j["chunks"] for j in jobs),
        "records": sum(j["records"] for j in jobs),
        "spans": sum(j["spans"] for j in jobs),
        "events": sum(j["events"] for j in jobs),
    }
    return {
        "schema": HEARTBEAT_SCHEMA_VERSION,
        "jobs": jobs,
        "n_jobs": len(jobs),
        "complete": bool(jobs) and all(j["status"] == "done" for j in jobs),
        "totals": totals,
    }


# ----------------------------------------------------------- resource probe
def peak_rss_kb() -> int | None:
    """This process's peak RSS high-water mark in KiB (``None`` off-POSIX).

    Resource *usage*, not a clock — R001 does not apply — but still
    machine-dependent, so it must only ever land in the resources sidecar.
    """
    if _resource is None:  # pragma: no cover - non-POSIX
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class ResourceProbe:
    """Self-profiling for obs pipelines: wall-clock stage costs, byte and
    record counts, and peak-RSS samples.

    This class is the designated quarantine for nondeterministic readings
    (docs/INVARIANTS.md R018): its report is written to a
    ``.resources.json`` sidecar and must never flow into trace, metrics,
    series, alert, store, or campaign-summary exports.  That is why the
    export method is ``report()`` — deliberately *not* ``to_dict``/
    ``snapshot``, the payload-function names the R014 taint analysis (and
    human readers) treat as determinism surfaces.
    """

    def __init__(self):
        self._stages: dict[str, dict] = {}
        self._bytes: dict[str, int] = {}
        self._counts: dict[str, int] = {}
        self._rss_kb: dict[str, int] = {}
        self._workers: list[dict] = []

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one pipeline stage (merge, export, ...) by wall clock."""
        begin = time.perf_counter()  # repro-lint: disable=R001
        try:
            yield
        finally:
            elapsed = time.perf_counter() - begin  # repro-lint: disable=R001
            entry = self._stages.setdefault(
                name, {"calls": 0, "wall_seconds": 0.0}
            )
            entry["calls"] += 1
            entry["wall_seconds"] += elapsed

    def add_bytes(self, name: str, n: int) -> None:
        self._bytes[name] = self._bytes.get(name, 0) + int(n)

    def add_count(self, name: str, n: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + int(n)

    def sample_rss(self, label: str) -> None:
        """Record the current peak-RSS high-water mark under ``label``."""
        kb = peak_rss_kb()
        if kb is not None:
            self._rss_kb[label] = max(self._rss_kb.get(label, 0), kb)

    def add_worker(self, stats: dict | None) -> None:
        """Attach one worker's self-reported stats (chunk counts, RSS)."""
        if stats:
            self._workers.append(dict(stats))

    def report(self) -> dict:
        """The sidecar payload.  Wall-clock and RSS values stop here."""
        worker_rss = [
            w["peak_rss_kb"]
            for w in self._workers
            if w.get("peak_rss_kb") is not None
        ]
        return {
            "schema": RESOURCES_SCHEMA_VERSION,
            "stages": {name: self._stages[name] for name in sorted(self._stages)},
            "bytes": {name: self._bytes[name] for name in sorted(self._bytes)},
            "counts": {name: self._counts[name] for name in sorted(self._counts)},
            "peak_rss_kb": {
                name: self._rss_kb[name] for name in sorted(self._rss_kb)
            },
            "workers": self._workers,
            "worker_peak_rss_kb_max": max(worker_rss) if worker_rss else None,
        }

    def dump(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(dumps_json(self.report()), encoding="utf-8")


class _NullProbe:
    """Shared no-op probe so streaming code never branches on probe-ness."""

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        yield

    def add_bytes(self, name: str, n: int) -> None:
        pass

    def add_count(self, name: str, n: int = 1) -> None:
        pass

    def sample_rss(self, label: str) -> None:
        pass

    def add_worker(self, stats: dict | None) -> None:
        pass

    def report(self) -> dict:
        return {}


NULL_PROBE = _NullProbe()
