"""Command-line tools over ``repro.obs`` trace files.

Invocations (via the main CLI)::

    python -m repro.cli obs smoke --out trace.jsonl       # run a tiny traced scenario
    python -m repro.cli obs summarize trace.jsonl         # inspect without pandas
    python -m repro.cli obs diff a.jsonl b.jsonl          # byte/structure compare
    python -m repro.cli obs profile trace.jsonl           # per-span-name stats
    python -m repro.cli obs slo trace.jsonl               # burn-rate SLO evaluation
    python -m repro.cli obs alerts trace.jsonl            # alert fire/resolve timeline
    python -m repro.cli obs report trace.jsonl            # per-run markdown report
    python -m repro.cli obs decisions trace.jsonl         # decision provenance timeline
    python -m repro.cli obs attribution trace.jsonl       # per-decision savings split
    python -m repro.cli obs store ingest|query|rollup|top # fleet telemetry store
    python -m repro.cli obs campaign --workers 2          # streamed fleet run + sidecars
    python -m repro.cli obs watch out.jsonl.stream        # live campaign progress table
    python -m repro.cli obs watchtower fleet_store.jsonl  # cross-run anomaly gate

``summarize`` exits 1 for a trace with zero spans (CI uses this to guard
against silent instrumentation rot) and 2 for unreadable input; ``profile``
shares that contract.  ``slo`` exits 1 when *no* SLO could be evaluated
(no series recorded — the same rot guard for the analysis layer).  ``diff``
exits 0 when the two traces are byte-identical, 1 when they differ — the
determinism contract makes identical the expected answer for same-seed
runs.  ``decisions`` exits 1 for a trace with zero ``provenance.decision``
events, and ``attribution`` exits 1 when the conservation invariant does
not hold (per-decision shares must sum exactly to the reported savings —
docs/OBSERVABILITY.md §v3).

The streaming family (docs/OBSERVABILITY.md §v4): ``campaign`` runs a
fleet of smoke scenarios with worker observability streamed in bounded
chunks, writing the merged trace plus ``.campaign.json`` (byte-stable
summary) and ``.resources.json`` (the *only* artifact allowed to carry
wall-clock numbers — R018) sidecars; ``watch`` renders heartbeat progress
(exit 2 missing dir, 1 no heartbeats); ``watchtower`` gates a fleet store
against a blessed baseline (exit 1 on any error-severity finding).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import IO

from repro.common.simtime import format_time
from repro.lint.output import dumps_json
from repro.obs import stream as obs_stream
from repro.obs import watchtower as obs_watchtower
from repro.obs.metrics import ObservabilityError
from repro.obs.profile import critical_path, diff_profiles, profile_records, to_folded
from repro.obs.series import SeriesRegistry
from repro.obs.slo import DEFAULT_SPEND_BUDGET_PER_HOUR, default_slos, evaluate_all
from repro.obs.store import FleetStore


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``obs`` subcommand family (shared with ``repro.cli obs``)."""
    sub = parser.add_subparsers(dest="obs_command", required=True)

    smoke = sub.add_parser(
        "smoke",
        help="run a small scenario with tracing enabled; write trace + metrics",
    )
    smoke.add_argument("--seed", type=int, default=123, help="scenario seed")
    smoke.add_argument(
        "--out",
        default="trace.jsonl",
        help=(
            "trace JSONL output path (metrics land at <out>.metrics.json, "
            "series at <out>.series.json, alerts at <out>.alerts.json)"
        ),
    )

    summarize = sub.add_parser("summarize", help="summarize a trace JSONL file")
    summarize.add_argument("trace", help="path to a trace .jsonl file")
    summarize.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="json: machine-readable summary through the shared byte-stable serializer",
    )

    diff = sub.add_parser("diff", help="compare two trace JSONL files")
    diff.add_argument("trace_a", help="first trace .jsonl file")
    diff.add_argument("trace_b", help="second trace .jsonl file")

    profile = sub.add_parser(
        "profile", help="per-span-name sim-time stats and critical path"
    )
    profile.add_argument("trace", help="path to a trace .jsonl file")
    profile.add_argument("--top", type=int, default=15, help="rows to show")
    profile.add_argument(
        "--diff", metavar="TRACE_B", default=None,
        help="second trace: show per-span deltas (B relative to TRACE)",
    )
    profile.add_argument(
        "--folded", action="store_true",
        help="emit collapsed stacks (flamegraph.pl / speedscope folded format) "
        "instead of the table",
    )

    slo = sub.add_parser(
        "slo", help="evaluate burn-rate SLOs over a run's metric series"
    )
    slo.add_argument("trace", help="path to a trace .jsonl file")
    slo.add_argument(
        "--series", default=None,
        help="series JSON path (default: <trace>.series.json)",
    )
    slo.add_argument(
        "--budget", type=float, default=DEFAULT_SPEND_BUDGET_PER_HOUR,
        help="spend-rate budget in credits/hour for the inferred spend SLO",
    )

    alerts = sub.add_parser("alerts", help="alert fire/resolve timeline of a trace")
    alerts.add_argument("trace", help="path to a trace .jsonl file")

    report = sub.add_parser(
        "report", help="render a per-run markdown report (savings, alerts, profile)"
    )
    report.add_argument("trace", help="path to a trace .jsonl file")
    report.add_argument(
        "--out", default=None, help="markdown output path (default: <trace>.report.md)"
    )
    report.add_argument(
        "--budget", type=float, default=DEFAULT_SPEND_BUDGET_PER_HOUR,
        help="spend-rate budget in credits/hour for the inferred spend SLO",
    )

    decisions = sub.add_parser(
        "decisions", help="decision provenance timeline with realized outcomes"
    )
    decisions.add_argument("trace", help="path to a trace .jsonl file")
    decisions.add_argument(
        "--warehouse", default=None, help="only decisions of this warehouse"
    )
    decisions.add_argument(
        "--kind", default=None,
        help="only decisions of this kind (hold, learned, backoff, ...)",
    )
    decisions.add_argument(
        "--top", type=int, default=20, help="timeline rows to show"
    )

    attribution = sub.add_parser(
        "attribution",
        help="per-decision savings attribution and calibration (conservation-checked)",
    )
    attribution.add_argument("trace", help="path to a trace .jsonl file")
    attribution.add_argument(
        "--top", type=int, default=10, help="top/bottom decisions to show"
    )
    attribution.add_argument(
        "--out", default=None,
        help="also write a JSON attribution report to this path",
    )

    store = sub.add_parser(
        "store", help="fleet telemetry store: ingest traces, query, roll up"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    ingest = store_sub.add_parser(
        "ingest", help="extract store rows from trace files into a store JSONL"
    )
    ingest.add_argument("traces", nargs="+", help="trace .jsonl files to ingest")
    ingest.add_argument(
        "--out", default="fleet_store.jsonl", help="store JSONL output path"
    )
    query = store_sub.add_parser("query", help="filter store rows as JSON lines")
    query.add_argument("store", help="store .jsonl file (from `obs store ingest`)")
    query.add_argument("--warehouse", default=None)
    query.add_argument("--kind", default=None, help="decision, outcome, attribution, …")
    query.add_argument("--run", default=None)
    query.add_argument("--since", type=float, default=None, help="sim-time lower bound")
    query.add_argument("--until", type=float, default=None, help="sim-time upper bound")
    query.add_argument(
        "--during-alerts", default=None, metavar="PREFIX", dest="during_alerts",
        help="instead: decisions whose window overlaps an alert (name prefix)",
    )
    query.add_argument("--limit", type=int, default=50, help="rows to print")
    rollup = store_sub.add_parser(
        "rollup", help="per-(run, warehouse, bucket) decision/credit aggregates"
    )
    rollup.add_argument("store", help="store .jsonl file")
    rollup.add_argument(
        "--bucket", type=float, default=3600.0, help="bucket width in sim seconds"
    )
    top = store_sub.add_parser(
        "top", help="best decisions by attributed savings / worst by regret"
    )
    top.add_argument("store", help="store .jsonl file")
    top.add_argument("--k", type=int, default=10, help="rows per ranking")

    campaign = sub.add_parser(
        "campaign",
        help="run a streamed smoke fleet: chunked obs merge, heartbeats, sidecars",
    )
    campaign.add_argument(
        "--scenarios", type=int, default=4, help="fleet width (smoke scenarios)"
    )
    campaign.add_argument(
        "--seed", type=int, default=123, help="first scenario seed (job i gets seed+i)"
    )
    campaign.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = in-process)"
    )
    campaign.add_argument(
        "--out",
        default="campaign.jsonl",
        help="merged trace path (sidecars: <out>.metrics/.series/.alerts/"
        ".campaign/.resources.json)",
    )
    campaign.add_argument(
        "--dir", default=None,
        help="stream working directory for spool/spill/progress "
        "(default: <out>.stream)",
    )
    campaign.add_argument(
        "--chunk-events", type=int, default=obs_stream.DEFAULT_CHUNK_EVENTS,
        help="max trace records per payload chunk",
    )
    campaign.add_argument(
        "--spill-records", type=int, default=obs_stream.DEFAULT_SPILL_RECORDS,
        help="worker sink records held in memory before spilling to disk",
    )

    watch = sub.add_parser(
        "watch", help="render campaign progress from worker heartbeats"
    )
    watch.add_argument(
        "dir", help="campaign stream directory (or its progress/ subdirectory)"
    )
    watch.add_argument(
        "--follow", action="store_true",
        help="poll until the campaign completes (bounded by --max-polls)",
    )
    watch.add_argument(
        "--interval", type=float, default=0.5, help="seconds between polls"
    )
    watch.add_argument(
        "--max-polls", type=int, default=120,
        help="poll ceiling for --follow (keeps the watch loop bounded)",
    )
    watch.add_argument(
        "--summary", default=None,
        help="also write the byte-stable campaign summary JSON to this path",
    )

    tower = sub.add_parser(
        "watchtower",
        help="cross-run anomaly gate over a fleet store (savings regression, "
        "alert storms, calibration drift)",
    )
    tower.add_argument("store", help="store .jsonl file (from `obs store ingest`)")
    tower.add_argument(
        "--baseline", default=None,
        help="blessed fleet baseline JSON (default: <store>.baseline.json "
        "when present)",
    )
    tower.add_argument(
        "--update-baseline", action="store_true", dest="update_baseline",
        help="bless the current store: write its facts to the baseline path",
    )
    tower.add_argument(
        "--format", choices=("text", "json", "markdown"), default="text",
        dest="fmt", help="report rendering",
    )
    tower.add_argument(
        "--out", default=None, help="write the rendering here instead of stdout"
    )
    tower.add_argument(
        "--savings-drop-tolerance", type=float,
        default=obs_watchtower.WatchtowerThresholds.savings_drop_tolerance,
        help="allowed relative drop in attributed credits vs baseline",
    )
    tower.add_argument(
        "--alert-storm-fires", type=int,
        default=obs_watchtower.WatchtowerThresholds.alert_storm_fires,
        help="fires of one alert in one run that declare a storm",
    )
    tower.add_argument(
        "--calibration-drift-tolerance", type=float,
        default=obs_watchtower.WatchtowerThresholds.calibration_drift_tolerance,
        help="allowed relative growth of mean |what-if error| vs baseline",
    )


def _load(path: str) -> list[dict]:
    """Parse a JSONL trace; raises ValueError with a line number on garbage."""
    records = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i}: not JSON: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"{path}:{i}: not a trace record (no 'type' key)")
        records.append(record)
    return records


def _counts_by_name(records: list[dict], record_type: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in records:
        if record.get("type") == record_type:
            name = str(record.get("name", "<unnamed>"))
            counts[name] = counts.get(name, 0) + 1
    return counts


def _render_counts(title: str, counts: dict[str, int], out: IO[str]) -> None:
    if not counts:
        return
    print(f"{title}:", file=out)
    # Heaviest first; name breaks ties so output is deterministic.
    for name in sorted(counts, key=lambda n: (-counts[n], n)):
        print(f"  {name:<36} {counts[name]:>8}", file=out)


def _summary_payload(path: str, records: list[dict]) -> dict:
    """The machine-readable summarize view, shaped for ``dumps_json``.

    Everything here is a pure function of the trace bytes plus sidecar
    *presence* (not sidecar content), so same-seed runs summarize to
    identical JSON.
    """
    spans = _counts_by_name(records, "span")
    events = _counts_by_name(records, "event")
    times = [r["time"] for r in records if "time" in r]
    sidecars = {
        kind: pathlib.Path(f"{path}.{kind}.json").is_file()
        for kind in ("metrics", "series", "alerts", "campaign", "resources")
    }
    return {
        "schema": 1,
        "manifests": [
            {
                k: m.get(k)
                for k in ("scenario", "seed", "config_hash", "slider", "version")
            }
            for m in records
            if m["type"] == "manifest"
        ],
        "n_records": len(records),
        "n_spans": sum(spans.values()),
        "n_events": sum(events.values()),
        "spans_by_name": spans,
        "events_by_name": events,
        "time_range": (
            {"min": min(times), "max": max(times)} if times else None
        ),
        "sidecars": sidecars,
    }


def summarize(path: str, out: IO[str], fmt: str = "text") -> int:
    """Render the trace's shape; exit 1 when it contains no spans."""
    try:
        records = _load(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if fmt == "json":
        payload = _summary_payload(path, records)
        out.write(dumps_json(payload))
        if payload["n_spans"] == 0:
            print(
                "error: trace contains no spans (instrumentation rot?)",
                file=sys.stderr,
            )
            return 1
        return 0
    manifests = [r for r in records if r["type"] == "manifest"]
    for m in manifests:
        print(
            "manifest: scenario={scenario} seed={seed} config={config_hash} "
            "slider={slider} version={version}".format(
                **{
                    k: m.get(k)
                    for k in ("scenario", "seed", "config_hash", "slider", "version")
                }
            ),
            file=out,
        )
    spans = _counts_by_name(records, "span")
    events = _counts_by_name(records, "event")
    n_spans = sum(spans.values())
    n_events = sum(events.values())
    print(
        f"records: {len(records)} ({n_spans} spans, {n_events} events, "
        f"{len(manifests)} manifest)",
        file=out,
    )
    times = [r["time"] for r in records if "time" in r]
    if times:
        lo, hi = min(times), max(times)
        print(
            f"time range: {lo:.3f} .. {hi:.3f} ({format_time(lo)} .. {format_time(hi)})",
            file=out,
        )
    _render_counts("spans by name", spans, out)
    _render_counts("events by name", events, out)
    _summarize_metrics(path, out)
    _summarize_alerts(path, out)
    if n_spans == 0:
        print("error: trace contains no spans (instrumentation rot?)", file=sys.stderr)
        return 1
    return 0


def _summarize_metrics(trace_path: str, out: IO[str], top: int = 5) -> None:
    """Render the metrics snapshot sitting next to a trace, when present.

    ``obs smoke`` writes ``<trace>.metrics.json`` alongside the trace; show
    the heaviest counters and each gauge's extremes so a summarize is a
    one-stop look at the run.  Silently skipped when absent or unreadable —
    the trace summary must not fail because a sidecar file rotted.
    """
    metrics_path = pathlib.Path(trace_path + ".metrics.json")
    try:
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return
    if not isinstance(snapshot, dict) or not snapshot:
        return
    counters = {
        name: m for name, m in snapshot.items() if m.get("kind") == "counter"
    }
    gauges = {name: m for name, m in snapshot.items() if m.get("kind") == "gauge"}
    print(f"metrics snapshot: {len(snapshot)} series ({metrics_path.name})", file=out)
    if counters:
        print("top counters:", file=out)
        ranked = sorted(counters, key=lambda n: (-counters[n]["value"], n))
        for name in ranked[:top]:
            print(f"  {name:<44} {counters[name]['value']:>12g}", file=out)
    if gauges:
        print("gauge extremes:", file=out)
        for name in sorted(gauges):
            g = gauges[name]
            # min/max entered the snapshot in schema v2; tolerate v1 files.
            lo, hi = g.get("min", g["value"]), g.get("max", g["value"])
            print(
                f"  {name:<44} last={g['value']:g} min={lo:g} max={hi:g}",
                file=out,
            )


def _summarize_alerts(trace_path: str, out: IO[str], top: int = 5) -> None:
    """Render the alert lifecycle sidecar next to a trace, when present.

    ``obs smoke`` (and the chaos runners) write ``<trace>.alerts.json``
    alongside the trace; show fire/resolve counts, the loudest alerts,
    and whatever is still burning.  Silently skipped when absent or
    unreadable — same tolerance as :func:`_summarize_metrics`.
    """
    alerts_path = pathlib.Path(trace_path + ".alerts.json")
    try:
        snapshot = json.loads(alerts_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return
    if not isinstance(snapshot, dict):
        return
    history = snapshot.get("history", [])
    active = snapshot.get("active", [])
    if not history and not active:
        return
    fires = sum(1 for row in history if row.get("state") == "fire")
    resolves = sum(1 for row in history if row.get("state") == "resolve")
    print(
        f"alerts sidecar: {len(history)} lifecycle events "
        f"({fires} fires, {resolves} resolves) ({alerts_path.name})",
        file=out,
    )
    per_alert: dict[str, int] = {}
    for row in history:
        if row.get("state") == "fire":
            name = str(row.get("alert", "<unnamed>"))
            per_alert[name] = per_alert.get(name, 0) + 1
    if per_alert:
        print("top alerts by fires:", file=out)
        for name in sorted(per_alert, key=lambda n: (-per_alert[n], n))[:top]:
            print(f"  {name:<44} {per_alert[name]:>8}", file=out)
    if active:
        names = ", ".join(
            f"{a.get('alert', '?')} ({a.get('severity', '?')})" for a in active
        )
        print(f"still active at end of run: {names}", file=out)


def diff(path_a: str, path_b: str, out: IO[str]) -> int:
    """Compare two traces; identical bytes exit 0, any difference exits 1."""
    try:
        text_a = pathlib.Path(path_a).read_text(encoding="utf-8")
        text_b = pathlib.Path(path_b).read_text(encoding="utf-8")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if text_a == text_b:
        n = sum(1 for line in text_a.splitlines() if line.strip())
        print(f"traces identical ({n} records)", file=out)
        return 0
    try:
        records_a, records_b = _load(path_a), _load(path_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"traces differ: {len(records_a)} vs {len(records_b)} records", file=out)
    for record_type in ("span", "event"):
        counts_a = _counts_by_name(records_a, record_type)
        counts_b = _counts_by_name(records_b, record_type)
        for name in sorted(set(counts_a) | set(counts_b)):
            a, b = counts_a.get(name, 0), counts_b.get(name, 0)
            if a != b:
                print(f"  {record_type} {name!r}: {a} vs {b}", file=out)
    for i, (ra, rb) in enumerate(zip(records_a, records_b), start=1):
        if ra != rb:
            print(f"first differing record: line {i}", file=out)
            print(f"  a: {json.dumps(ra, sort_keys=True)}", file=out)
            print(f"  b: {json.dumps(rb, sort_keys=True)}", file=out)
            break
    return 1


def profile(
    path: str,
    out: IO[str],
    top: int = 15,
    diff_path: str | None = None,
    folded: bool = False,
) -> int:
    """Per-span-name stats (and optional run-to-run diff); 1 on zero spans."""
    try:
        records = _load(path)
        prof = profile_records(records)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if folded:
        # Collapsed stacks for flamegraph tooling; byte-stable, so it can be
        # golden-file tested (--top/--diff don't apply to this format).
        out.write(to_folded(records))
        if prof.n_spans == 0:
            print(
                "error: trace contains no spans (instrumentation rot?)",
                file=sys.stderr,
            )
            return 1
        return 0
    print(
        f"profile: {prof.n_spans} spans / {prof.n_events} events, "
        f"total span sim-time {prof.total_time:.3f}s",
        file=out,
    )
    if prof.spans:
        print(
            f"{'span':<36} {'count':>7} {'total s':>10} {'self s':>10} "
            f"{'min s':>8} {'max s':>8}",
            file=out,
        )
        for stats in prof.top(top):
            print(
                f"{stats.name:<36} {stats.count:>7} {stats.total_time:>10.3f} "
                f"{stats.self_time:>10.3f} {stats.min_time:>8.3f} {stats.max_time:>8.3f}",
                file=out,
            )
        path_rows = critical_path(records)
        chain = " -> ".join(row["name"] for row in path_rows)
        print(f"critical path ({len(path_rows)} spans): {chain}", file=out)
    if diff_path is not None:
        try:
            other = profile_records(_load(diff_path))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        delta = diff_profiles(prof, other)
        print(
            f"diff vs {diff_path}: {delta['n_spans_before']} -> "
            f"{delta['n_spans_after']} spans",
            file=out,
        )
        changed = [r for r in delta["spans"] if r["count_delta"] or r["time_delta"]]
        for row in changed:
            print(
                f"  {row['name']:<36} count {row['count_before']:>6} -> "
                f"{row['count_after']:<6} time {row['time_before']:>9.3f} -> "
                f"{row['time_after']:<9.3f}",
                file=out,
            )
        if not changed:
            print("  (no per-span differences)", file=out)
    if prof.n_spans == 0:
        print("error: trace contains no spans (instrumentation rot?)", file=sys.stderr)
        return 1
    return 0


def _load_series(trace_path: str, series_path: str | None) -> SeriesRegistry:
    path = pathlib.Path(
        series_path if series_path is not None else trace_path + ".series.json"
    )
    snapshot = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(snapshot, dict):
        raise ValueError(f"{path}: not a series snapshot (expected an object)")
    return SeriesRegistry.from_snapshot(snapshot)


def slo(
    trace_path: str,
    out: IO[str],
    series_path: str | None = None,
    budget_per_hour: float = DEFAULT_SPEND_BUDGET_PER_HOUR,
) -> int:
    """Evaluate the inferred SLO set over a run's series; 1 when none apply."""
    try:
        registry = _load_series(trace_path, series_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    specs = default_slos(registry, spend_budget_per_hour=budget_per_hour)
    report = evaluate_all(specs, registry)
    for result in sorted(report.results, key=lambda r: r.spec.name):
        status = "OK" if result.ok else f"{len(result.violations)} violation(s)"
        print(
            f"{result.spec.name:<28} {result.spec.aggregate}({result.spec.metric}) "
            f"{result.spec.op} {result.spec.threshold:g}  "
            f"buckets={result.buckets_evaluated} bad={result.bad_buckets} "
            f"compliance={result.compliance:.1%}  {status}",
            file=out,
        )
        for violation in result.violations:
            resolved = (
                format_time(violation.resolved_at)
                if violation.resolved_at is not None
                else "unresolved"
            )
            print(
                f"  burn: fired {format_time(violation.fired_at)} "
                f"resolved {resolved} peak={violation.peak_burn:.0%} "
                f"bad_buckets={violation.bad_buckets}",
                file=out,
            )
    if report.skipped:
        print(f"skipped (no series): {', '.join(report.skipped)}", file=out)
    if not report.results:
        print(
            "error: no SLO could be evaluated (no monitor/billing series "
            "recorded — series rot?)",
            file=sys.stderr,
        )
        return 1
    print(f"evaluated {len(report.results)} SLO(s): ok={report.ok}", file=out)
    return 0


def alerts(trace_path: str, out: IO[str]) -> int:
    """Render the alert fire/resolve timeline recorded in a trace."""
    try:
        records = _load(trace_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") in ("alert.fire", "alert.resolve")
    ]
    if not rows:
        print("no alert events in trace", file=out)
        return 0
    open_count = 0
    for row in rows:
        attrs = row.get("attrs", {})
        state = "FIRE   " if row["name"] == "alert.fire" else "RESOLVE"
        open_count += 1 if row["name"] == "alert.fire" else -1
        detail = ""
        if row["name"] == "alert.resolve":
            detail = f" after {attrs.get('duration', 0.0):.0f}s"
            if attrs.get("refires"):
                detail += f" ({attrs['refires']} re-fires suppressed)"
        elif attrs.get("reason"):
            detail = f" [{attrs['reason']}]"
        print(
            f"{format_time(row['time']):>12} {state} "
            f"{attrs.get('severity', '?'):<8} {attrs.get('alert', '?')}{detail}",
            file=out,
        )
    print(f"{len(rows)} alert events, {open_count} still active at end of run", file=out)
    return 0


def report(
    trace_path: str,
    out: IO[str],
    out_path: str | None = None,
    budget_per_hour: float = DEFAULT_SPEND_BUDGET_PER_HOUR,
) -> int:
    """Render the per-run markdown report next to the trace."""
    # Imported here so trace-only subcommands stay import-light.
    from repro.portal.reports import render_run_report

    try:
        records = _load(trace_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        registry = _load_series(trace_path, None)
        slo_report = evaluate_all(
            default_slos(registry, spend_budget_per_hour=budget_per_hour), registry
        )
    except (OSError, ValueError):
        slo_report = None  # no series sidecar: report without the SLO section
    prof = profile_records(records)
    markdown = render_run_report(
        records, prof, critical_path(records), slo_report=slo_report
    )
    target = pathlib.Path(
        out_path if out_path is not None else trace_path + ".report.md"
    )
    target.write_text(markdown, encoding="utf-8")
    print(f"report: {target} ({len(markdown.splitlines())} lines)", file=out)
    return 0


def _store_from_trace(path: str) -> FleetStore:
    """Ingest one trace file into a fresh store (run label = file stem)."""
    store = FleetStore()
    store.ingest_trace_records(_load(path), run=pathlib.Path(path).stem)
    return store


def decisions(
    path: str,
    out: IO[str],
    warehouse: str | None = None,
    kind: str | None = None,
    top: int = 20,
) -> int:
    """Decision provenance timeline; exit 1 when the trace recorded none."""
    try:
        store = _store_from_trace(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    everything = store.decisions()
    if not everything:
        print(
            "error: trace contains no provenance.decision events "
            "(provenance rot? traces predating schema v1 have none)",
            file=sys.stderr,
        )
        return 1
    rows = store.decisions(warehouse=warehouse, decision_kind=kind)
    sealed = [r for r in rows if r.get("outcome")]
    print(
        f"decisions: {len(rows)} shown of {len(everything)} recorded "
        f"({len(sealed)} sealed), warehouses: "
        f"{', '.join(store.warehouses()) or '-'}",
        file=out,
    )
    by_kind: dict[str, int] = {}
    by_reason: dict[str, int] = {}
    for row in rows:
        by_kind[str(row.get("kind", "?"))] = by_kind.get(str(row.get("kind", "?")), 0) + 1
        code = str(row.get("reason_code", "") or "?")
        by_reason[code] = by_reason.get(code, 0) + 1
    _render_counts("decisions by kind", by_kind, out)
    _render_counts("decisions by reason code", by_reason, out)
    shown = rows[-max(top, 0):] if top else []
    if shown:
        print(f"last {len(shown)} decisions:", file=out)
    for row in shown:
        outcome = row.get("outcome")
        detail = ""
        if outcome:
            realized = outcome.get("realized_credits")
            error = outcome.get("error_credits")
            detail = f"  realized={realized:.4f}cr" if realized is not None else ""
            if error is not None:
                detail += f" err={error:+.4f}cr"
            if outcome.get("applied") is False:
                detail += f" APPLY-FAILED[{outcome.get('apply_error', '')}]"
        print(
            f"{format_time(row['time']):>12} {str(row.get('kind', '?')):<10} "
            f"{str(row.get('reason_code', '') or '?'):<30} "
            f"-> {row.get('target', '?')}{detail}",
            file=out,
        )
    return 0


def _attribution_report(store: FleetStore) -> dict:
    """The attribution/calibration facts of one store, as plain data.

    ``conserved`` does float comparisons with ``==`` on purpose: the
    provenance layer guarantees bit-exact conservation (split_exact), so
    any drift at all is a bug worth failing on.
    """
    warehouses: dict[str, dict] = {}

    def bucket(warehouse: str) -> dict:
        if warehouse not in warehouses:
            warehouses[warehouse] = {
                "n_entries": 0,
                "entries_conserved": True,
                "attributed_credits": 0.0,
                "ledger_credits": None,
                "n_decisions": 0,
                "n_sealed": 0,
                "n_with_prediction": 0,
                "sum_abs_error_credits": 0.0,
                "sum_error_credits": 0.0,
                "total_predicted_credits": 0.0,
                "total_realized_credits": 0.0,
            }
        return warehouses[warehouse]

    for row in store.query(kind="attribution"):
        agg = bucket(row["warehouse"])
        shares_total = 0.0
        for share in row["data"].get("shares", []):
            shares_total += float(share["credits"])
        if shares_total != row["data"].get("savings_credits"):
            agg["entries_conserved"] = False
        agg["n_entries"] += 1
        agg["attributed_credits"] += shares_total
    for row in store.query(kind="savings_report"):
        credits = row["data"].get("savings_credits")
        if credits is None:
            continue  # traces predating the credits attr: no ledger check
        agg = bucket(row["warehouse"])
        if agg["ledger_credits"] is None:
            agg["ledger_credits"] = 0.0
        agg["ledger_credits"] += float(credits)
    for row in store.query(kind="decision"):
        bucket(row["warehouse"])["n_decisions"] += 1
    for row in store.query(kind="outcome"):
        agg = bucket(row["warehouse"])
        agg["n_sealed"] += 1
        agg["total_realized_credits"] += float(
            row["data"].get("realized_credits") or 0.0
        )
        error = row["data"].get("error_credits")
        if error is not None:
            agg["n_with_prediction"] += 1
            agg["sum_error_credits"] += float(error)
            agg["sum_abs_error_credits"] += abs(float(error))
            agg["total_predicted_credits"] += float(
                row["data"].get("predicted_credits") or 0.0
            )
    for agg in warehouses.values():
        agg["conserved"] = agg["entries_conserved"] and (
            agg["ledger_credits"] is None
            or agg["attributed_credits"] == agg["ledger_credits"]
        )
        n = agg["n_with_prediction"]
        agg["mean_abs_error_credits"] = agg["sum_abs_error_credits"] / n if n else 0.0
        agg["mean_error_credits"] = agg["sum_error_credits"] / n if n else 0.0
    return {
        "schema": 1,
        "warehouses": {name: warehouses[name] for name in sorted(warehouses)},
        "top_savings": store.top_savings(),
        "top_regret": store.top_regret(),
    }


def attribution(
    path: str, out: IO[str], top: int = 10, out_path: str | None = None
) -> int:
    """Savings attribution + calibration; exit 1 when conservation fails."""
    try:
        store = _store_from_trace(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = _attribution_report(store)
    if not report["warehouses"]:
        print(
            "error: trace contains no provenance.attribution events "
            "(no savings reported, or provenance rot)",
            file=sys.stderr,
        )
        return 1
    failed = []
    for name, agg in report["warehouses"].items():
        ledger = agg["ledger_credits"]
        ledger_text = f"{ledger:.6f}" if ledger is not None else "n/a"
        status = "conserved" if agg["conserved"] else "CONSERVATION VIOLATED"
        print(
            f"{name}: {agg['n_entries']} ledger entries over "
            f"{agg['n_decisions']} decisions  "
            f"attributed={agg['attributed_credits']:.6f}cr "
            f"ledger={ledger_text}cr  {status}",
            file=out,
        )
        print(
            f"  calibration: {agg['n_sealed']} sealed, "
            f"{agg['n_with_prediction']} with what-if prediction, "
            f"mean |err|={agg['mean_abs_error_credits']:.5f}cr "
            f"mean err={agg['mean_error_credits']:+.5f}cr "
            f"(predicted {agg['total_predicted_credits']:.4f}cr vs "
            f"realized {agg['total_realized_credits']:.4f}cr)",
            file=out,
        )
        if not agg["conserved"]:
            failed.append(name)
    for title, key, sign in (
        ("top decisions by attributed savings", "top_savings", "credits"),
        ("top decisions by prediction regret", "top_regret", "error_credits"),
    ):
        rows = report[key][: max(top, 0)]
        if not rows:
            continue
        print(f"{title}:", file=out)
        for row in rows:
            decision = row.get("decision") or {}
            label = decision.get("reason_code") or decision.get("kind") or "?"
            print(
                f"  seq={row['seq']:<5} {row[sign]:>+12.6f}cr  "
                f"{row['warehouse']:<12} {label}",
                file=out,
            )
    if out_path is not None:
        pathlib.Path(out_path).write_text(dumps_json(report), encoding="utf-8")
        print(f"attribution report: {out_path}", file=out)
    if failed:
        print(
            f"error: attribution does not conserve ledger credits for: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def store_run(args: argparse.Namespace, out: IO[str]) -> int:
    """Dispatch the ``obs store`` subcommand family."""
    if args.store_command == "ingest":
        store = FleetStore()
        labels: dict[str, int] = {}
        try:
            for trace_path in args.traces:
                stem = pathlib.Path(trace_path).stem
                n = labels.get(stem, 0)
                labels[stem] = n + 1
                run_label = stem if n == 0 else f"{stem}#{n}"
                ingested = store.ingest_trace_records(_load(trace_path), run=run_label)
                print(f"ingested {trace_path}: {ingested} rows as run {run_label!r}", file=out)
        except (OSError, ValueError, ObservabilityError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        store.dump(args.out)
        print(
            f"store: {args.out} ({len(store)} rows, {len(store.runs())} runs, "
            f"{len(store.warehouses())} warehouses)",
            file=out,
        )
        return 0
    try:
        store = FleetStore.load(args.store)
    except (OSError, ObservabilityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.store_command == "query":
        if args.during_alerts is not None:
            rows = store.decisions_during_alerts(prefix=args.during_alerts or None)
        else:
            rows = store.query(
                warehouse=args.warehouse,
                kind=args.kind,
                since=args.since,
                until=args.until,
                run=args.run,
            )
        for row in rows[: max(args.limit, 0)]:
            print(json.dumps(row, sort_keys=True, separators=(",", ":")), file=out)
        print(
            f"{len(rows)} rows ({min(len(rows), max(args.limit, 0))} shown)",
            file=out,
        )
        return 0
    if args.store_command == "rollup":
        try:
            rows = store.rollup(bucket_seconds=args.bucket)
        except ObservabilityError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"{'run':<16} {'warehouse':<12} {'bucket start':>12} {'decisions':>10} "
            f"{'realized cr':>12} {'predicted cr':>12} {'|err| cr':>10} "
            f"{'savings cr':>11}",
            file=out,
        )
        for row in rows:
            n_decisions = sum(row["decisions"].values())
            print(
                f"{row['run']:<16} {row['warehouse']:<12} "
                f"{row['bucket_start']:>12.0f} {n_decisions:>10} "
                f"{row['realized_credits']:>12.4f} {row['predicted_credits']:>12.4f} "
                f"{row['abs_error_credits']:>10.4f} {row['savings_credits']:>11.4f}",
                file=out,
            )
        print(f"{len(rows)} buckets", file=out)
        return 0
    # top
    for title, rows, key in (
        ("top savings", store.top_savings(args.k), "credits"),
        ("top regret", store.top_regret(args.k), "error_credits"),
    ):
        print(f"{title}:", file=out)
        for row in rows:
            print(
                f"  {row['run']:<16} {row['warehouse']:<12} seq={row['seq']:<5} "
                f"{row[key]:>+12.6f}cr",
                file=out,
            )
        if not rows:
            print("  (none)", file=out)
    return 0


def smoke(seed: int, out_path: str, out: IO[str]) -> int:
    """Run the smoke scenario traced; write trace JSONL + metrics JSON."""
    # Imported here: the experiments stack pulls in the whole library, and
    # `obs summarize`/`obs diff` should stay usable without that cost.
    from repro import obs
    from repro.experiments.runner import run_before_after
    from repro.experiments.scenarios import smoke_scenario

    scenario = smoke_scenario(seed=seed)
    with obs.observed(manifest=scenario.manifest()) as rec:
        result, _ = run_before_after(scenario)
    trace_path = pathlib.Path(out_path)
    rec.sink.dump(trace_path)
    metrics_path = trace_path.with_name(trace_path.name + ".metrics.json")
    metrics_path.write_text(rec.metrics.to_json(), encoding="utf-8")
    series_path = trace_path.with_name(trace_path.name + ".series.json")
    series_path.write_text(rec.series.to_json(), encoding="utf-8")
    alerts_path = trace_path.with_name(trace_path.name + ".alerts.json")
    alerts_path.write_text(rec.alerts.to_json(), encoding="utf-8")
    print(
        f"smoke run: scenario={scenario.name} seed={seed} "
        f"savings={result.savings_fraction:+.1%}",
        file=out,
    )
    print(f"trace:   {trace_path} ({len(rec.sink)} records)", file=out)
    print(f"metrics: {metrics_path} ({len(rec.metrics)} series)", file=out)
    print(f"series:  {series_path} ({len(rec.series)} bucketed series)", file=out)
    print(f"alerts:  {alerts_path} ({len(rec.alerts)} lifecycle events)", file=out)
    return summarize(str(trace_path), out)


def campaign(args: argparse.Namespace, out: IO[str]) -> int:
    """Run a streamed smoke fleet; write the merged trace and sidecars.

    The fleet's observability leaves the workers as bounded payload chunks
    (docs/OBSERVABILITY.md §v4): spill-bounded sinks, spooled chunk files,
    per-job heartbeats.  The merged trace and its metrics/series/alerts/
    campaign sidecars are byte-identical to a serial monolithic run of the
    same seeds; the ``.resources.json`` sidecar is the R018 quarantine and
    the only artifact CI must *not* compare across runs.
    """
    # Imported here: the experiments stack pulls in the whole library, and
    # trace-only subcommands should stay usable without that cost.
    from repro import obs
    from repro.experiments.runner import run_fleet
    from repro.experiments.scenarios import smoke_scenario
    from repro.parallel import StreamConfig

    n = max(args.scenarios, 1)
    scenarios = [smoke_scenario(seed=args.seed + i) for i in range(n)]
    trace_path = pathlib.Path(args.out)
    stream_dir = pathlib.Path(
        args.dir if args.dir is not None else args.out + ".stream"
    )
    probe = obs_stream.ResourceProbe()
    cfg = StreamConfig(
        dir=stream_dir,
        max_chunk_events=args.chunk_events,
        spill_records=args.spill_records,
        probe=probe,
    )
    with obs.observed(manifest=scenarios[0].manifest()) as rec:
        result = run_fleet(scenarios, workers=args.workers, stream=cfg)
    with probe.stage("dump"):
        rec.sink.dump(trace_path)
        for suffix, text in (
            (".metrics.json", rec.metrics.to_json()),
            (".series.json", rec.series.to_json()),
            (".alerts.json", rec.alerts.to_json()),
        ):
            trace_path.with_name(trace_path.name + suffix).write_text(
                text, encoding="utf-8"
            )
    summary = obs_stream.campaign_summary(stream_dir / "progress")
    summary_path = trace_path.with_name(trace_path.name + ".campaign.json")
    summary_path.write_text(dumps_json(summary), encoding="utf-8")
    probe.sample_rss("parent")
    resources_path = trace_path.with_name(trace_path.name + ".resources.json")
    probe.dump(resources_path)
    lo, hi = result.savings_range
    print(
        f"campaign: {n} scenario(s), workers={args.workers}, "
        f"savings range {lo:+.1%} .. {hi:+.1%}",
        file=out,
    )
    print(f"trace:     {trace_path} ({len(rec.sink)} records)", file=out)
    print(
        f"summary:   {summary_path} "
        f"(complete={summary['complete']}, {summary['totals']['chunks']} chunks)",
        file=out,
    )
    print(f"resources: {resources_path} (wall-clock quarantine, R018)", file=out)
    if not summary["complete"]:
        print("error: campaign summary reports incomplete jobs", file=sys.stderr)
        return 1
    return 0


def watch(args: argparse.Namespace, out: IO[str]) -> int:
    """Render campaign progress from heartbeat files; a viewer, not a gate.

    Exit 2 when the directory doesn't exist, 1 when it holds no heartbeats
    yet, 0 otherwise.  ``--follow`` polls until the campaign completes,
    bounded by ``--max-polls`` so the loop always terminates.
    """
    base = pathlib.Path(args.dir)
    progress = base / "progress" if (base / "progress").is_dir() else base
    if not progress.is_dir():
        print(f"error: no such progress directory: {progress}", file=sys.stderr)
        return 2
    polls = max(args.max_polls, 1) if args.follow else 1
    summary = obs_stream.campaign_summary(progress)
    for poll in range(polls):
        summary = obs_stream.campaign_summary(progress)
        if summary["complete"] or poll == polls - 1:
            break
        time.sleep(max(args.interval, 0.05))
    if not summary["jobs"]:
        print(f"error: no heartbeats under {progress}", file=sys.stderr)
        return 1
    print(
        f"{'job':>4} {'scenario':<24} {'protocol':<18} {'status':<8} "
        f"{'chunks':>6} {'records':>8} {'spans':>7} {'events':>7} {'sim time':>12}",
        file=out,
    )
    for row in summary["jobs"]:
        print(
            f"{row['job']:>4} {str(row['scenario']):<24} "
            f"{str(row['protocol']):<18} {row['status']:<8} "
            f"{row['chunks']:>6} {row['records']:>8} {row['spans']:>7} "
            f"{row['events']:>7} {format_time(row['sim_time']):>12}",
            file=out,
        )
    totals = summary["totals"]
    state = "complete" if summary["complete"] else "in flight"
    print(
        f"campaign {state}: {summary['n_jobs']} job(s), "
        f"{totals['chunks']} chunks, {totals['records']} records "
        f"({totals['spans']} spans, {totals['events']} events)",
        file=out,
    )
    if args.summary is not None:
        pathlib.Path(args.summary).write_text(dumps_json(summary), encoding="utf-8")
        print(f"summary: {args.summary}", file=out)
    return 0


def watchtower(args: argparse.Namespace, out: IO[str]) -> int:
    """Gate a fleet store against its blessed baseline; 1 on regression."""
    try:
        store = FleetStore.load(args.store)
    except (OSError, ObservabilityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    baseline_path = pathlib.Path(
        args.baseline if args.baseline is not None else args.store + ".baseline.json"
    )
    if args.update_baseline:
        baseline_path.write_text(
            dumps_json(obs_watchtower.fleet_baseline(store)), encoding="utf-8"
        )
        print(
            f"blessed: {baseline_path} ({len(store.runs())} run(s), "
            f"{len(store.warehouses())} warehouse(s))",
            file=out,
        )
        return 0
    baseline = None
    if baseline_path.is_file():
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"error: unreadable baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
    elif args.baseline is not None:
        print(f"error: no such baseline: {baseline_path}", file=sys.stderr)
        return 2
    thresholds = obs_watchtower.WatchtowerThresholds(
        savings_drop_tolerance=args.savings_drop_tolerance,
        alert_storm_fires=args.alert_storm_fires,
        calibration_drift_tolerance=args.calibration_drift_tolerance,
    )
    report = obs_watchtower.run_watchtower(
        store, baseline=baseline, thresholds=thresholds
    )
    if args.fmt == "json":
        rendering = dumps_json(report)
    elif args.fmt == "markdown":
        from repro.portal.reports import render_watchtower

        rendering = render_watchtower(report) + "\n"
    else:
        rendering = obs_watchtower.render_text(report) + "\n"
    if args.out is not None:
        pathlib.Path(args.out).write_text(rendering, encoding="utf-8")
        verdict = "OK" if report["ok"] else "REGRESSION"
        print(f"watchtower report: {args.out} [{verdict}]", file=out)
    else:
        out.write(rendering)
    if not report["ok"]:
        errors = [f for f in report["findings"] if f["severity"] == "error"]
        print(
            f"error: watchtower found {len(errors)} regression finding(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def run(args: argparse.Namespace, out: IO[str] | None = None) -> int:
    """Execute a parsed ``obs`` invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if args.obs_command == "summarize":
        return summarize(args.trace, out, fmt=args.fmt)
    if args.obs_command == "diff":
        return diff(args.trace_a, args.trace_b, out)
    if args.obs_command == "profile":
        return profile(
            args.trace, out, top=args.top, diff_path=args.diff, folded=args.folded
        )
    if args.obs_command == "slo":
        return slo(args.trace, out, series_path=args.series, budget_per_hour=args.budget)
    if args.obs_command == "alerts":
        return alerts(args.trace, out)
    if args.obs_command == "report":
        return report(args.trace, out, out_path=args.out, budget_per_hour=args.budget)
    if args.obs_command == "decisions":
        return decisions(
            args.trace, out, warehouse=args.warehouse, kind=args.kind, top=args.top
        )
    if args.obs_command == "attribution":
        return attribution(args.trace, out, top=args.top, out_path=args.out)
    if args.obs_command == "store":
        return store_run(args, out)
    if args.obs_command == "campaign":
        return campaign(args, out)
    if args.obs_command == "watch":
        return watch(args, out)
    if args.obs_command == "watchtower":
        return watchtower(args, out)
    return smoke(args.seed, args.out, out)
