"""Command-line tools over ``repro.obs`` trace files.

Invocations (via the main CLI)::

    python -m repro.cli obs smoke --out trace.jsonl       # run a tiny traced scenario
    python -m repro.cli obs summarize trace.jsonl         # inspect without pandas
    python -m repro.cli obs diff a.jsonl b.jsonl          # byte/structure compare
    python -m repro.cli obs profile trace.jsonl           # per-span-name stats
    python -m repro.cli obs slo trace.jsonl               # burn-rate SLO evaluation
    python -m repro.cli obs alerts trace.jsonl            # alert fire/resolve timeline
    python -m repro.cli obs report trace.jsonl            # per-run markdown report

``summarize`` exits 1 for a trace with zero spans (CI uses this to guard
against silent instrumentation rot) and 2 for unreadable input; ``profile``
shares that contract.  ``slo`` exits 1 when *no* SLO could be evaluated
(no series recorded — the same rot guard for the analysis layer).  ``diff``
exits 0 when the two traces are byte-identical, 1 when they differ — the
determinism contract makes identical the expected answer for same-seed
runs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import IO

from repro.common.simtime import format_time
from repro.obs.profile import critical_path, diff_profiles, profile_records
from repro.obs.series import SeriesRegistry
from repro.obs.slo import DEFAULT_SPEND_BUDGET_PER_HOUR, default_slos, evaluate_all


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``obs`` subcommand family (shared with ``repro.cli obs``)."""
    sub = parser.add_subparsers(dest="obs_command", required=True)

    smoke = sub.add_parser(
        "smoke",
        help="run a small scenario with tracing enabled; write trace + metrics",
    )
    smoke.add_argument("--seed", type=int, default=123, help="scenario seed")
    smoke.add_argument(
        "--out",
        default="trace.jsonl",
        help=(
            "trace JSONL output path (metrics land at <out>.metrics.json, "
            "series at <out>.series.json, alerts at <out>.alerts.json)"
        ),
    )

    summarize = sub.add_parser("summarize", help="summarize a trace JSONL file")
    summarize.add_argument("trace", help="path to a trace .jsonl file")

    diff = sub.add_parser("diff", help="compare two trace JSONL files")
    diff.add_argument("trace_a", help="first trace .jsonl file")
    diff.add_argument("trace_b", help="second trace .jsonl file")

    profile = sub.add_parser(
        "profile", help="per-span-name sim-time stats and critical path"
    )
    profile.add_argument("trace", help="path to a trace .jsonl file")
    profile.add_argument("--top", type=int, default=15, help="rows to show")
    profile.add_argument(
        "--diff", metavar="TRACE_B", default=None,
        help="second trace: show per-span deltas (B relative to TRACE)",
    )

    slo = sub.add_parser(
        "slo", help="evaluate burn-rate SLOs over a run's metric series"
    )
    slo.add_argument("trace", help="path to a trace .jsonl file")
    slo.add_argument(
        "--series", default=None,
        help="series JSON path (default: <trace>.series.json)",
    )
    slo.add_argument(
        "--budget", type=float, default=DEFAULT_SPEND_BUDGET_PER_HOUR,
        help="spend-rate budget in credits/hour for the inferred spend SLO",
    )

    alerts = sub.add_parser("alerts", help="alert fire/resolve timeline of a trace")
    alerts.add_argument("trace", help="path to a trace .jsonl file")

    report = sub.add_parser(
        "report", help="render a per-run markdown report (savings, alerts, profile)"
    )
    report.add_argument("trace", help="path to a trace .jsonl file")
    report.add_argument(
        "--out", default=None, help="markdown output path (default: <trace>.report.md)"
    )
    report.add_argument(
        "--budget", type=float, default=DEFAULT_SPEND_BUDGET_PER_HOUR,
        help="spend-rate budget in credits/hour for the inferred spend SLO",
    )


def _load(path: str) -> list[dict]:
    """Parse a JSONL trace; raises ValueError with a line number on garbage."""
    records = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i}: not JSON: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"{path}:{i}: not a trace record (no 'type' key)")
        records.append(record)
    return records


def _counts_by_name(records: list[dict], record_type: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in records:
        if record.get("type") == record_type:
            name = str(record.get("name", "<unnamed>"))
            counts[name] = counts.get(name, 0) + 1
    return counts


def _render_counts(title: str, counts: dict[str, int], out: IO[str]) -> None:
    if not counts:
        return
    print(f"{title}:", file=out)
    # Heaviest first; name breaks ties so output is deterministic.
    for name in sorted(counts, key=lambda n: (-counts[n], n)):
        print(f"  {name:<36} {counts[name]:>8}", file=out)


def summarize(path: str, out: IO[str]) -> int:
    """Render the trace's shape; exit 1 when it contains no spans."""
    try:
        records = _load(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifests = [r for r in records if r["type"] == "manifest"]
    for m in manifests:
        print(
            "manifest: scenario={scenario} seed={seed} config={config_hash} "
            "slider={slider} version={version}".format(
                **{
                    k: m.get(k)
                    for k in ("scenario", "seed", "config_hash", "slider", "version")
                }
            ),
            file=out,
        )
    spans = _counts_by_name(records, "span")
    events = _counts_by_name(records, "event")
    n_spans = sum(spans.values())
    n_events = sum(events.values())
    print(
        f"records: {len(records)} ({n_spans} spans, {n_events} events, "
        f"{len(manifests)} manifest)",
        file=out,
    )
    times = [r["time"] for r in records if "time" in r]
    if times:
        lo, hi = min(times), max(times)
        print(
            f"time range: {lo:.3f} .. {hi:.3f} ({format_time(lo)} .. {format_time(hi)})",
            file=out,
        )
    _render_counts("spans by name", spans, out)
    _render_counts("events by name", events, out)
    _summarize_metrics(path, out)
    if n_spans == 0:
        print("error: trace contains no spans (instrumentation rot?)", file=sys.stderr)
        return 1
    return 0


def _summarize_metrics(trace_path: str, out: IO[str], top: int = 5) -> None:
    """Render the metrics snapshot sitting next to a trace, when present.

    ``obs smoke`` writes ``<trace>.metrics.json`` alongside the trace; show
    the heaviest counters and each gauge's extremes so a summarize is a
    one-stop look at the run.  Silently skipped when absent or unreadable —
    the trace summary must not fail because a sidecar file rotted.
    """
    metrics_path = pathlib.Path(trace_path + ".metrics.json")
    try:
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return
    if not isinstance(snapshot, dict) or not snapshot:
        return
    counters = {
        name: m for name, m in snapshot.items() if m.get("kind") == "counter"
    }
    gauges = {name: m for name, m in snapshot.items() if m.get("kind") == "gauge"}
    print(f"metrics snapshot: {len(snapshot)} series ({metrics_path.name})", file=out)
    if counters:
        print("top counters:", file=out)
        ranked = sorted(counters, key=lambda n: (-counters[n]["value"], n))
        for name in ranked[:top]:
            print(f"  {name:<44} {counters[name]['value']:>12g}", file=out)
    if gauges:
        print("gauge extremes:", file=out)
        for name in sorted(gauges):
            g = gauges[name]
            # min/max entered the snapshot in schema v2; tolerate v1 files.
            lo, hi = g.get("min", g["value"]), g.get("max", g["value"])
            print(
                f"  {name:<44} last={g['value']:g} min={lo:g} max={hi:g}",
                file=out,
            )


def diff(path_a: str, path_b: str, out: IO[str]) -> int:
    """Compare two traces; identical bytes exit 0, any difference exits 1."""
    try:
        text_a = pathlib.Path(path_a).read_text(encoding="utf-8")
        text_b = pathlib.Path(path_b).read_text(encoding="utf-8")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if text_a == text_b:
        n = sum(1 for line in text_a.splitlines() if line.strip())
        print(f"traces identical ({n} records)", file=out)
        return 0
    try:
        records_a, records_b = _load(path_a), _load(path_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"traces differ: {len(records_a)} vs {len(records_b)} records", file=out)
    for record_type in ("span", "event"):
        counts_a = _counts_by_name(records_a, record_type)
        counts_b = _counts_by_name(records_b, record_type)
        for name in sorted(set(counts_a) | set(counts_b)):
            a, b = counts_a.get(name, 0), counts_b.get(name, 0)
            if a != b:
                print(f"  {record_type} {name!r}: {a} vs {b}", file=out)
    for i, (ra, rb) in enumerate(zip(records_a, records_b), start=1):
        if ra != rb:
            print(f"first differing record: line {i}", file=out)
            print(f"  a: {json.dumps(ra, sort_keys=True)}", file=out)
            print(f"  b: {json.dumps(rb, sort_keys=True)}", file=out)
            break
    return 1


def profile(path: str, out: IO[str], top: int = 15, diff_path: str | None = None) -> int:
    """Per-span-name stats (and optional run-to-run diff); 1 on zero spans."""
    try:
        records = _load(path)
        prof = profile_records(records)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"profile: {prof.n_spans} spans / {prof.n_events} events, "
        f"total span sim-time {prof.total_time:.3f}s",
        file=out,
    )
    if prof.spans:
        print(
            f"{'span':<36} {'count':>7} {'total s':>10} {'self s':>10} "
            f"{'min s':>8} {'max s':>8}",
            file=out,
        )
        for stats in prof.top(top):
            print(
                f"{stats.name:<36} {stats.count:>7} {stats.total_time:>10.3f} "
                f"{stats.self_time:>10.3f} {stats.min_time:>8.3f} {stats.max_time:>8.3f}",
                file=out,
            )
        path_rows = critical_path(records)
        chain = " -> ".join(row["name"] for row in path_rows)
        print(f"critical path ({len(path_rows)} spans): {chain}", file=out)
    if diff_path is not None:
        try:
            other = profile_records(_load(diff_path))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        delta = diff_profiles(prof, other)
        print(
            f"diff vs {diff_path}: {delta['n_spans_before']} -> "
            f"{delta['n_spans_after']} spans",
            file=out,
        )
        changed = [r for r in delta["spans"] if r["count_delta"] or r["time_delta"]]
        for row in changed:
            print(
                f"  {row['name']:<36} count {row['count_before']:>6} -> "
                f"{row['count_after']:<6} time {row['time_before']:>9.3f} -> "
                f"{row['time_after']:<9.3f}",
                file=out,
            )
        if not changed:
            print("  (no per-span differences)", file=out)
    if prof.n_spans == 0:
        print("error: trace contains no spans (instrumentation rot?)", file=sys.stderr)
        return 1
    return 0


def _load_series(trace_path: str, series_path: str | None) -> SeriesRegistry:
    path = pathlib.Path(
        series_path if series_path is not None else trace_path + ".series.json"
    )
    snapshot = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(snapshot, dict):
        raise ValueError(f"{path}: not a series snapshot (expected an object)")
    return SeriesRegistry.from_snapshot(snapshot)


def slo(
    trace_path: str,
    out: IO[str],
    series_path: str | None = None,
    budget_per_hour: float = DEFAULT_SPEND_BUDGET_PER_HOUR,
) -> int:
    """Evaluate the inferred SLO set over a run's series; 1 when none apply."""
    try:
        registry = _load_series(trace_path, series_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    specs = default_slos(registry, spend_budget_per_hour=budget_per_hour)
    report = evaluate_all(specs, registry)
    for result in sorted(report.results, key=lambda r: r.spec.name):
        status = "OK" if result.ok else f"{len(result.violations)} violation(s)"
        print(
            f"{result.spec.name:<28} {result.spec.aggregate}({result.spec.metric}) "
            f"{result.spec.op} {result.spec.threshold:g}  "
            f"buckets={result.buckets_evaluated} bad={result.bad_buckets} "
            f"compliance={result.compliance:.1%}  {status}",
            file=out,
        )
        for violation in result.violations:
            resolved = (
                format_time(violation.resolved_at)
                if violation.resolved_at is not None
                else "unresolved"
            )
            print(
                f"  burn: fired {format_time(violation.fired_at)} "
                f"resolved {resolved} peak={violation.peak_burn:.0%} "
                f"bad_buckets={violation.bad_buckets}",
                file=out,
            )
    if report.skipped:
        print(f"skipped (no series): {', '.join(report.skipped)}", file=out)
    if not report.results:
        print(
            "error: no SLO could be evaluated (no monitor/billing series "
            "recorded — series rot?)",
            file=sys.stderr,
        )
        return 1
    print(f"evaluated {len(report.results)} SLO(s): ok={report.ok}", file=out)
    return 0


def alerts(trace_path: str, out: IO[str]) -> int:
    """Render the alert fire/resolve timeline recorded in a trace."""
    try:
        records = _load(trace_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") in ("alert.fire", "alert.resolve")
    ]
    if not rows:
        print("no alert events in trace", file=out)
        return 0
    open_count = 0
    for row in rows:
        attrs = row.get("attrs", {})
        state = "FIRE   " if row["name"] == "alert.fire" else "RESOLVE"
        open_count += 1 if row["name"] == "alert.fire" else -1
        detail = ""
        if row["name"] == "alert.resolve":
            detail = f" after {attrs.get('duration', 0.0):.0f}s"
            if attrs.get("refires"):
                detail += f" ({attrs['refires']} re-fires suppressed)"
        elif attrs.get("reason"):
            detail = f" [{attrs['reason']}]"
        print(
            f"{format_time(row['time']):>12} {state} "
            f"{attrs.get('severity', '?'):<8} {attrs.get('alert', '?')}{detail}",
            file=out,
        )
    print(f"{len(rows)} alert events, {open_count} still active at end of run", file=out)
    return 0


def report(
    trace_path: str,
    out: IO[str],
    out_path: str | None = None,
    budget_per_hour: float = DEFAULT_SPEND_BUDGET_PER_HOUR,
) -> int:
    """Render the per-run markdown report next to the trace."""
    # Imported here so trace-only subcommands stay import-light.
    from repro.portal.reports import render_run_report

    try:
        records = _load(trace_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        registry = _load_series(trace_path, None)
        slo_report = evaluate_all(
            default_slos(registry, spend_budget_per_hour=budget_per_hour), registry
        )
    except (OSError, ValueError):
        slo_report = None  # no series sidecar: report without the SLO section
    prof = profile_records(records)
    markdown = render_run_report(
        records, prof, critical_path(records), slo_report=slo_report
    )
    target = pathlib.Path(
        out_path if out_path is not None else trace_path + ".report.md"
    )
    target.write_text(markdown, encoding="utf-8")
    print(f"report: {target} ({len(markdown.splitlines())} lines)", file=out)
    return 0


def smoke(seed: int, out_path: str, out: IO[str]) -> int:
    """Run the smoke scenario traced; write trace JSONL + metrics JSON."""
    # Imported here: the experiments stack pulls in the whole library, and
    # `obs summarize`/`obs diff` should stay usable without that cost.
    from repro import obs
    from repro.experiments.runner import run_before_after
    from repro.experiments.scenarios import smoke_scenario

    scenario = smoke_scenario(seed=seed)
    with obs.observed(manifest=scenario.manifest()) as rec:
        result, _ = run_before_after(scenario)
    trace_path = pathlib.Path(out_path)
    rec.sink.dump(trace_path)
    metrics_path = trace_path.with_name(trace_path.name + ".metrics.json")
    metrics_path.write_text(rec.metrics.to_json(), encoding="utf-8")
    series_path = trace_path.with_name(trace_path.name + ".series.json")
    series_path.write_text(rec.series.to_json(), encoding="utf-8")
    alerts_path = trace_path.with_name(trace_path.name + ".alerts.json")
    alerts_path.write_text(rec.alerts.to_json(), encoding="utf-8")
    print(
        f"smoke run: scenario={scenario.name} seed={seed} "
        f"savings={result.savings_fraction:+.1%}",
        file=out,
    )
    print(f"trace:   {trace_path} ({len(rec.sink)} records)", file=out)
    print(f"metrics: {metrics_path} ({len(rec.metrics)} series)", file=out)
    print(f"series:  {series_path} ({len(rec.series)} bucketed series)", file=out)
    print(f"alerts:  {alerts_path} ({len(rec.alerts)} lifecycle events)", file=out)
    return summarize(str(trace_path), out)


def run(args: argparse.Namespace, out: IO[str] | None = None) -> int:
    """Execute a parsed ``obs`` invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if args.obs_command == "summarize":
        return summarize(args.trace, out)
    if args.obs_command == "diff":
        return diff(args.trace_a, args.trace_b, out)
    if args.obs_command == "profile":
        return profile(args.trace, out, top=args.top, diff_path=args.diff)
    if args.obs_command == "slo":
        return slo(args.trace, out, series_path=args.series, budget_per_hour=args.budget)
    if args.obs_command == "alerts":
        return alerts(args.trace, out)
    if args.obs_command == "report":
        return report(args.trace, out, out_path=args.out, budget_per_hour=args.budget)
    return smoke(args.seed, args.out, out)
