"""Command-line tools over ``repro.obs`` trace files.

Invocations (via the main CLI)::

    python -m repro.cli obs smoke --out trace.jsonl       # run a tiny traced scenario
    python -m repro.cli obs summarize trace.jsonl         # inspect without pandas
    python -m repro.cli obs diff a.jsonl b.jsonl          # byte/structure compare

``summarize`` exits 1 for a trace with zero spans (CI uses this to guard
against silent instrumentation rot) and 2 for unreadable input.  ``diff``
exits 0 when the two traces are byte-identical, 1 when they differ — the
determinism contract makes identical the expected answer for same-seed
runs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import IO

from repro.common.simtime import format_time


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``obs`` subcommand family (shared with ``repro.cli obs``)."""
    sub = parser.add_subparsers(dest="obs_command", required=True)

    smoke = sub.add_parser(
        "smoke",
        help="run a small scenario with tracing enabled; write trace + metrics",
    )
    smoke.add_argument("--seed", type=int, default=123, help="scenario seed")
    smoke.add_argument(
        "--out",
        default="trace.jsonl",
        help="trace JSONL output path (metrics land at <out>.metrics.json)",
    )

    summarize = sub.add_parser("summarize", help="summarize a trace JSONL file")
    summarize.add_argument("trace", help="path to a trace .jsonl file")

    diff = sub.add_parser("diff", help="compare two trace JSONL files")
    diff.add_argument("trace_a", help="first trace .jsonl file")
    diff.add_argument("trace_b", help="second trace .jsonl file")


def _load(path: str) -> list[dict]:
    """Parse a JSONL trace; raises ValueError with a line number on garbage."""
    records = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i}: not JSON: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"{path}:{i}: not a trace record (no 'type' key)")
        records.append(record)
    return records


def _counts_by_name(records: list[dict], record_type: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in records:
        if record.get("type") == record_type:
            name = str(record.get("name", "<unnamed>"))
            counts[name] = counts.get(name, 0) + 1
    return counts


def _render_counts(title: str, counts: dict[str, int], out: IO[str]) -> None:
    if not counts:
        return
    print(f"{title}:", file=out)
    # Heaviest first; name breaks ties so output is deterministic.
    for name in sorted(counts, key=lambda n: (-counts[n], n)):
        print(f"  {name:<36} {counts[name]:>8}", file=out)


def summarize(path: str, out: IO[str]) -> int:
    """Render the trace's shape; exit 1 when it contains no spans."""
    try:
        records = _load(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifests = [r for r in records if r["type"] == "manifest"]
    for m in manifests:
        print(
            "manifest: scenario={scenario} seed={seed} config={config_hash} "
            "slider={slider} version={version}".format(
                **{
                    k: m.get(k)
                    for k in ("scenario", "seed", "config_hash", "slider", "version")
                }
            ),
            file=out,
        )
    spans = _counts_by_name(records, "span")
    events = _counts_by_name(records, "event")
    n_spans = sum(spans.values())
    n_events = sum(events.values())
    print(
        f"records: {len(records)} ({n_spans} spans, {n_events} events, "
        f"{len(manifests)} manifest)",
        file=out,
    )
    times = [r["time"] for r in records if "time" in r]
    if times:
        lo, hi = min(times), max(times)
        print(
            f"time range: {lo:.3f} .. {hi:.3f} ({format_time(lo)} .. {format_time(hi)})",
            file=out,
        )
    _render_counts("spans by name", spans, out)
    _render_counts("events by name", events, out)
    if n_spans == 0:
        print("error: trace contains no spans (instrumentation rot?)", file=sys.stderr)
        return 1
    return 0


def diff(path_a: str, path_b: str, out: IO[str]) -> int:
    """Compare two traces; identical bytes exit 0, any difference exits 1."""
    try:
        text_a = pathlib.Path(path_a).read_text(encoding="utf-8")
        text_b = pathlib.Path(path_b).read_text(encoding="utf-8")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if text_a == text_b:
        n = sum(1 for line in text_a.splitlines() if line.strip())
        print(f"traces identical ({n} records)", file=out)
        return 0
    try:
        records_a, records_b = _load(path_a), _load(path_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"traces differ: {len(records_a)} vs {len(records_b)} records", file=out)
    for record_type in ("span", "event"):
        counts_a = _counts_by_name(records_a, record_type)
        counts_b = _counts_by_name(records_b, record_type)
        for name in sorted(set(counts_a) | set(counts_b)):
            a, b = counts_a.get(name, 0), counts_b.get(name, 0)
            if a != b:
                print(f"  {record_type} {name!r}: {a} vs {b}", file=out)
    for i, (ra, rb) in enumerate(zip(records_a, records_b), start=1):
        if ra != rb:
            print(f"first differing record: line {i}", file=out)
            print(f"  a: {json.dumps(ra, sort_keys=True)}", file=out)
            print(f"  b: {json.dumps(rb, sort_keys=True)}", file=out)
            break
    return 1


def smoke(seed: int, out_path: str, out: IO[str]) -> int:
    """Run the smoke scenario traced; write trace JSONL + metrics JSON."""
    # Imported here: the experiments stack pulls in the whole library, and
    # `obs summarize`/`obs diff` should stay usable without that cost.
    from repro import obs
    from repro.experiments.runner import run_before_after
    from repro.experiments.scenarios import smoke_scenario

    scenario = smoke_scenario(seed=seed)
    with obs.observed(manifest=scenario.manifest()) as rec:
        result, _ = run_before_after(scenario)
    trace_path = pathlib.Path(out_path)
    rec.sink.dump(trace_path)
    metrics_path = trace_path.with_name(trace_path.name + ".metrics.json")
    metrics_path.write_text(rec.metrics.to_json(), encoding="utf-8")
    print(
        f"smoke run: scenario={scenario.name} seed={seed} "
        f"savings={result.savings_fraction:+.1%}",
        file=out,
    )
    print(f"trace:   {trace_path} ({len(rec.sink)} records)", file=out)
    print(f"metrics: {metrics_path} ({len(rec.metrics)} series)", file=out)
    return summarize(str(trace_path), out)


def run(args: argparse.Namespace, out: IO[str] | None = None) -> int:
    """Execute a parsed ``obs`` invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if args.obs_command == "summarize":
        return summarize(args.trace, out)
    if args.obs_command == "diff":
        return diff(args.trace_a, args.trace_b, out)
    return smoke(args.seed, args.out, out)
