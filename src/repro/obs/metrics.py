"""Deterministic in-process metrics: Counter, Gauge, Histogram, registry.

Metrics follow the naming convention ``repro.<subsystem>.<name>`` (see
docs/OBSERVABILITY.md).  Everything here is plain Python state keyed by
name, and the snapshot/export is stable-sorted, so two runs of the same
scenario with the same seed produce byte-identical exports — the same
determinism contract the trace layer honours.

A parallel family of null metrics backs the disabled state: call sites can
unconditionally do ``obs.counter("repro.x.y").inc()`` and pay only an
attribute lookup and a no-op call when observation is off.
"""

from __future__ import annotations

import bisect
import json
import math
import re

from repro.common.errors import ReproError


class ObservabilityError(ReproError):
    """The observability layer was driven incorrectly (bad metric name,
    mismatched metric kinds, stop without start, ...)."""


#: Metric names: dotted lowercase segments, e.g. ``repro.engine.events``.
#: Per-entity suffixes (warehouse names) are lowercased by callers.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Default histogram buckets: upper bounds in seconds, spanning sub-second
#: queries to multi-hour windows.  An implicit +inf bucket catches the rest.
DEFAULT_BUCKETS = (0.1, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0, 3600.0)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(
            f"invalid metric name {name!r}: use dotted lowercase segments "
            "like 'repro.engine.events' (docs/OBSERVABILITY.md)"
        )
    return name


class Counter:
    """A monotonically increasing count (events dispatched, decisions...).

    Pass ``time=<sim time>`` to also fold the increment into the recorder's
    bucketed :mod:`repro.obs.series` history (no-op when no series registry
    is attached, e.g. on a bare ``MetricsRegistry()``).
    """

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.series = None  # attached by MetricsRegistry when it has one

    def inc(self, amount: float = 1.0, time: float | None = None) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        if self.series is not None and time is not None:
            self.series.record(time, amount)

    def snapshot(self) -> dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time level (queue depth, latency ratio...).

    Tracks the extremes seen across updates alongside the last value — the
    SLO engine gates on worst-case levels, and "what was the peak queue
    depth?" is useful even without a series.
    """

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updates = 0
        self.min = 0.0
        self.max = 0.0
        self.series = None

    def set(self, value: float, time: float | None = None) -> None:
        value = float(value)
        self.value = value
        if self.updates == 0:
            self.min = self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.updates += 1
        if self.series is not None and time is not None:
            self.series.record(time, value)

    def snapshot(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "value": self.value,
            "updates": self.updates,
            "min": self.min,
            "max": self.max,
        }


class Histogram:
    """A distribution over fixed, strictly increasing bucket boundaries.

    Buckets use Prometheus ``le`` semantics: an observation lands in the
    first bucket whose upper bound is **>= value**; values above the last
    boundary land in the implicit +inf bucket.  Boundary values are
    inclusive (``observe(1.0)`` with a ``1.0`` bound counts in that bucket).
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be non-empty and strictly increasing"
            )
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be finite (+inf bucket is implicit)"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.total = 0.0
        self.count = 0
        self.series = None

    def observe(self, value: float, time: float | None = None) -> None:
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(f"histogram {self.name!r} cannot observe NaN")
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if self.series is not None and time is not None:
            self.series.record(time, value)

    def snapshot(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create store of named metrics with a stable-sorted export.

    When constructed with a :class:`repro.obs.series.SeriesRegistry`, every
    metric created here gets a same-named bucketed series attached, and
    time-stamped updates (``inc``/``set``/``observe`` with ``time=``) are
    folded into it.
    """

    def __init__(self, series=None):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._series = series

    def _get(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory(_check_name(name))
            if self._series is not None:
                metric.series = self._series.series(name, kind)
        elif metric.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} is a {metric.kind}, requested as a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, "gauge")

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._get(name, lambda n: Histogram(n, buckets), "histogram")
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ObservabilityError(
                f"histogram {name!r} already exists with buckets {metric.bounds}, "
                f"requested with {tuple(buckets)}"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Name-sorted plain-dict view of every metric's current state."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def to_json(self) -> str:
        """Byte-stable JSON export (sorted keys, compact separators)."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":")) + "\n"

    def merge(self, snapshot: dict[str, dict[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Sequential-composition semantics (the parallel experiment layer's
        merge rule, docs/PERFORMANCE.md): the result equals a registry that
        recorded everything already here followed by everything the snapshot
        summarizes — counters accumulate, gauges take the snapshot's last
        value and widen their extremes, histograms add bucket counts.
        Series are *not* touched: the bucketed history merges separately
        through :meth:`repro.obs.series.SeriesRegistry.merge`.
        """
        for name in sorted(snapshot):
            snap = snapshot[name]
            kind = snap["kind"]
            if kind == "counter":
                self.counter(name).value += float(snap["value"])
            elif kind == "gauge":
                gauge = self.gauge(name)
                updates = int(snap["updates"])
                if updates == 0:
                    continue
                if gauge.updates == 0:
                    gauge.min = float(snap["min"])
                    gauge.max = float(snap["max"])
                else:
                    gauge.min = min(gauge.min, float(snap["min"]))
                    gauge.max = max(gauge.max, float(snap["max"]))
                gauge.value = float(snap["value"])
                gauge.updates += updates
            elif kind == "histogram":
                hist = self.histogram(name, tuple(snap["buckets"]))
                if len(snap["counts"]) != len(hist.counts):
                    raise ObservabilityError(
                        f"histogram {name!r} merge: bucket count mismatch"
                    )
                for i, count in enumerate(snap["counts"]):
                    hist.counts[i] += int(count)
                hist.total += float(snap["sum"])
                hist.count += int(snap["count"])
            else:
                raise ObservabilityError(
                    f"cannot merge metric {name!r}: unknown kind {kind!r}"
                )


class _NullCounter:
    """No-op counter returned while observation is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, time: float | None = None) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float, time: float | None = None) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float, time: float | None = None) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
