"""The fleet telemetry store: queryable, mergeable decision history.

``repro.obs`` traces are per-run JSONL streams; a fleet needs the same
facts *across* runs — "show me every decision warehouse X made during an
open alert", "which decisions earned the most credits", "how did the
prediction error trend by hour".  :class:`FleetStore` is that layer: an
append-only collection of normalized rows extracted from trace records
(decision / outcome / attribution provenance events, alert lifecycle
events, savings reports, manifests), with

* **byte-stable JSONL persistence** — ``to_jsonl()`` is sorted-key compact
  JSON in insertion order, so two same-seed runs ingest to identical
  bytes (the same contract as :meth:`repro.obs.trace.TraceSink.to_jsonl`);
* **deterministic merge** — :meth:`merge` appends another store's rows in
  its insertion order, the same submission-order discipline as
  :meth:`repro.obs.trace.Recorder.merge_payload`, so ingesting worker
  payloads in submission order equals ingesting the serial run;
* **indexed queries** — by warehouse, row kind, sim-time window, run, and
  decision-during-alert overlap joins;
* **rollups and top-k views** — down-sampled per-bucket aggregates and
  the best/worst decisions by attributed savings or prediction regret.

Rows are plain dicts (``run``, ``kind``, ``warehouse``, ``time``, ``seq``,
``data``); the store never mutates a row after append.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.metrics import ObservabilityError

#: Bumped on any incompatible change to the store row shapes.
STORE_SCHEMA_VERSION = 1

#: Trace event names ingested into the store, mapped to row kinds.
_EVENT_KINDS = {
    "provenance.decision": "decision",
    "provenance.outcome": "outcome",
    "provenance.attribution": "attribution",
    "alert.fire": "alert_fire",
    "alert.resolve": "alert_resolve",
    "optimizer.savings_report": "savings_report",
}


class FleetStore:
    """An append-only, queryable store of fleet decision telemetry."""

    def __init__(self):
        self.rows: list[dict] = []
        # Insertion-order row indexes (positions into self.rows).
        self._by_kind: dict[str, list[int]] = {}
        self._by_warehouse: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------- ingestion
    def append(self, row: dict) -> None:
        """Append one normalized row (used by ingestion and load)."""
        for key in ("run", "kind", "warehouse", "time"):
            if key not in row:
                raise ObservabilityError(f"store row missing {key!r}: {row!r}")
        position = len(self.rows)
        self.rows.append(row)
        self._by_kind.setdefault(row["kind"], []).append(position)
        self._by_warehouse.setdefault(row["warehouse"], []).append(position)

    def ingest_trace_records(self, records: list[dict], run: str) -> int:
        """Extract store rows from parsed trace records, in trace order.

        Returns the number of rows ingested.  Unknown record/event types
        are skipped — the store holds the fleet-level facts, not spans.
        """
        ingested = 0
        for record in records:
            rtype = record.get("type")
            if rtype == "manifest":
                self.append(
                    {
                        "run": run,
                        "kind": "manifest",
                        "warehouse": "",
                        "time": 0.0,
                        "seq": None,
                        "data": {
                            k: record.get(k)
                            for k in ("scenario", "seed", "config_hash", "slider")
                        },
                    }
                )
                ingested += 1
                continue
            if rtype != "event":
                continue
            kind = _EVENT_KINDS.get(record.get("name", ""))
            if kind is None:
                continue
            attrs = record.get("attrs", {})
            self.append(
                {
                    "run": run,
                    "kind": kind,
                    "warehouse": str(attrs.get("warehouse", "")),
                    "time": float(record["time"]),
                    "seq": attrs.get("seq"),
                    "data": attrs,
                }
            )
            ingested += 1
        return ingested

    def ingest_payload(self, payload: dict, run: str) -> int:
        """Ingest a :meth:`repro.obs.trace.Recorder.to_payload` value."""
        return self.ingest_trace_records(payload["records"], run)

    def merge(self, other: "FleetStore") -> int:
        """Append another store's rows in its insertion order.

        Submission-order merging is what makes workers=N ingestion equal
        serial ingestion byte for byte (docs/PERFORMANCE.md discipline).
        """
        for row in other.rows:
            self.append(row)
        return len(other.rows)

    # ----------------------------------------------------------- persistence
    def to_jsonl(self) -> str:
        """Byte-stable export: one sorted-key compact row per line."""
        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
            for row in self.rows
        )

    def dump(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "FleetStore":
        store = cls()
        text = pathlib.Path(path).read_text(encoding="utf-8")
        for i, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(f"{path}:{i}: not JSON: {exc}") from exc
            if not isinstance(row, dict):
                raise ObservabilityError(f"{path}:{i}: not a store row")
            store.append(row)
        return store

    # --------------------------------------------------------------- queries
    def _candidates(self, warehouse: str | None, kind: str | None) -> list[int]:
        """Intersect the narrowest applicable indexes, insertion-ordered."""
        pools = []
        if kind is not None:
            pools.append(self._by_kind.get(kind, []))
        if warehouse is not None:
            pools.append(self._by_warehouse.get(warehouse, []))
        if not pools:
            return list(range(len(self.rows)))
        if len(pools) == 1:
            return pools[0]
        narrow, wide = sorted(pools, key=len)
        wide_set = set(wide)
        return [p for p in narrow if p in wide_set]

    def query(
        self,
        warehouse: str | None = None,
        kind: str | None = None,
        since: float | None = None,
        until: float | None = None,
        run: str | None = None,
    ) -> list[dict]:
        """Rows matching every given filter, in insertion order."""
        out = []
        for position in self._candidates(warehouse, kind):
            row = self.rows[position]
            if since is not None and row["time"] < since:
                continue
            if until is not None and row["time"] >= until:
                continue
            if run is not None and row["run"] != run:
                continue
            out.append(row)
        return out

    def runs(self) -> list[str]:
        """Distinct run labels, in first-seen order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row["run"], None)
        return list(seen)

    def warehouses(self) -> list[str]:
        return sorted(w for w in self._by_warehouse if w)

    def decisions(
        self,
        warehouse: str | None = None,
        decision_kind: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[dict]:
        """Decision rows joined with their outcome (when sealed).

        Returns one dict per decision with the decision's ``data`` plus
        ``run`` and, when the outcome event is present, an ``outcome`` key.
        """
        outcomes: dict[tuple[str, str, object], dict] = {}
        for row in self.query(warehouse=warehouse, kind="outcome"):
            outcomes[(row["run"], row["warehouse"], row["seq"])] = row["data"]
        joined = []
        for row in self.query(
            warehouse=warehouse, kind="decision", since=since, until=until
        ):
            if decision_kind is not None and row["data"].get("kind") != decision_kind:
                continue
            joined.append(
                {
                    "run": row["run"],
                    "warehouse": row["warehouse"],
                    "time": row["time"],
                    **row["data"],
                    "outcome": outcomes.get(
                        (row["run"], row["warehouse"], row["seq"])
                    ),
                }
            )
        return joined

    def alert_windows(
        self, warehouse: str | None = None, prefix: str | None = None
    ) -> list[dict]:
        """Fire→resolve intervals per alert, matched within each run.

        Unresolved alerts get an open end (``None``).
        """
        windows: list[dict] = []
        open_alerts: dict[tuple[str, str], int] = {}
        for row in self.query(warehouse=warehouse):
            if row["kind"] not in ("alert_fire", "alert_resolve"):
                continue
            name = str(row["data"].get("alert", ""))
            if prefix is not None and not name.startswith(prefix):
                continue
            key = (row["run"], name)
            if row["kind"] == "alert_fire":
                if key not in open_alerts:
                    open_alerts[key] = len(windows)
                    windows.append(
                        {
                            "run": row["run"],
                            "alert": name,
                            "warehouse": row["warehouse"],
                            "start": row["time"],
                            "end": None,
                        }
                    )
            else:
                position = open_alerts.pop(key, None)
                if position is not None:
                    windows[position]["end"] = row["time"]
        return windows

    def decisions_during_alerts(self, prefix: str | None = None) -> list[dict]:
        """Decisions whose governed window overlaps an open alert in the
        same run — "what did the optimizer do while things were on fire"."""
        alert_spans = self.alert_windows(prefix=prefix)
        out = []
        for decision in self.decisions():
            start = decision["time"]
            end = start + float(decision.get("interval", 0.0))
            hits = [
                span["alert"]
                for span in alert_spans
                if span["run"] == decision["run"]
                and span["start"] < end
                and (span["end"] is None or start < span["end"])
            ]
            if hits:
                out.append({**decision, "alerts": sorted(set(hits))})
        return out

    # ------------------------------------------------------ watchtower views
    def savings_credits_by_warehouse(self) -> dict[str, float]:
        """Total attributed savings credits per warehouse (name-sorted).

        Sums every attribution row's shares — the same credits the
        conservation check in ``obs attribution`` ties to the ledger.
        """
        totals: dict[str, float] = {}
        for position in self._by_kind.get("attribution", []):
            row = self.rows[position]
            credited = sum(
                float(share["credits"])
                for share in row["data"].get("shares", [])
            )
            totals[row["warehouse"]] = totals.get(row["warehouse"], 0.0) + credited
        return {name: totals[name] for name in sorted(totals)}

    def alert_fire_counts(self) -> dict[tuple[str, str], int]:
        """Alert fire counts per ``(run, alert name)``, insertion-keyed."""
        counts: dict[tuple[str, str], int] = {}
        for position in self._by_kind.get("alert_fire", []):
            row = self.rows[position]
            key = (row["run"], str(row["data"].get("alert", "")))
            counts[key] = counts.get(key, 0) + 1
        return counts

    def calibration_by_warehouse(self) -> dict[str, dict]:
        """Per-warehouse what-if calibration from sealed outcomes.

        One dict per warehouse (name-sorted): sealed/predicted counts and
        the mean absolute / signed prediction error in credits — the
        drift surface the watchtower monitors across runs.
        """
        out: dict[str, dict] = {}
        for position in self._by_kind.get("outcome", []):
            row = self.rows[position]
            agg = out.setdefault(
                row["warehouse"],
                {
                    "n_sealed": 0,
                    "n_with_prediction": 0,
                    "sum_abs_error_credits": 0.0,
                    "sum_error_credits": 0.0,
                },
            )
            agg["n_sealed"] += 1
            error = row["data"].get("error_credits")
            if error is not None:
                agg["n_with_prediction"] += 1
                agg["sum_abs_error_credits"] += abs(float(error))
                agg["sum_error_credits"] += float(error)
        for agg in out.values():
            n = agg["n_with_prediction"]
            agg["mean_abs_error_credits"] = (
                agg["sum_abs_error_credits"] / n if n else 0.0
            )
            agg["mean_error_credits"] = agg["sum_error_credits"] / n if n else 0.0
        return {name: out[name] for name in sorted(out)}

    # --------------------------------------------------------------- rollups
    def rollup(self, bucket_seconds: float = 3600.0) -> list[dict]:
        """Down-sampled per-(run, warehouse, bucket) aggregates.

        One row per bucket with decision counts by kind, realized and
        predicted credits, and the summed absolute prediction error.
        Rows are sorted by (run, warehouse, bucket) for stable rendering.
        """
        if bucket_seconds <= 0:
            raise ObservabilityError("bucket_seconds must be positive")
        buckets: dict[tuple[str, str, int], dict] = {}

        def bucket_for(row: dict) -> dict:
            key = (row["run"], row["warehouse"], int(row["time"] // bucket_seconds))
            if key not in buckets:
                buckets[key] = {
                    "run": key[0],
                    "warehouse": key[1],
                    "bucket": key[2],
                    "bucket_start": key[2] * bucket_seconds,
                    "decisions": {},
                    "realized_credits": 0.0,
                    "predicted_credits": 0.0,
                    "abs_error_credits": 0.0,
                    "savings_credits": 0.0,
                }
            return buckets[key]

        for row in self.rows:
            if row["kind"] == "decision":
                agg = bucket_for(row)
                kind = str(row["data"].get("kind", "?"))
                agg["decisions"][kind] = agg["decisions"].get(kind, 0) + 1
            elif row["kind"] == "outcome":
                agg = bucket_for(row)
                agg["realized_credits"] += float(
                    row["data"].get("realized_credits") or 0.0
                )
                agg["predicted_credits"] += float(
                    row["data"].get("predicted_credits") or 0.0
                )
                error = row["data"].get("error_credits")
                if error is not None:
                    agg["abs_error_credits"] += abs(float(error))
            elif row["kind"] == "attribution":
                agg = bucket_for(row)
                agg["savings_credits"] += float(
                    row["data"].get("savings_credits") or 0.0
                )
        return [buckets[key] for key in sorted(buckets)]

    def top_savings(self, k: int = 10) -> list[dict]:
        """The k decisions credited with the most savings.

        Joins attribution shares back to their decisions; the synthetic
        unattributed share (seq < 0) is excluded.
        """
        credited: dict[tuple[str, str, int], float] = {}
        for row in self._by_kind.get("attribution", []):
            attribution = self.rows[row]
            for share in attribution["data"].get("shares", []):
                seq = share.get("decision_seq")
                if seq is None or seq < 0:
                    continue
                key = (attribution["run"], attribution["warehouse"], int(seq))
                credited[key] = credited.get(key, 0.0) + float(share["credits"])
        ranked = sorted(
            credited.items(), key=lambda item: (-item[1], item[0])
        )[: max(k, 0)]
        decisions = {
            (d["run"], d["warehouse"], d["seq"]): d for d in self.decisions()
        }
        return [
            {
                "run": run,
                "warehouse": warehouse,
                "seq": seq,
                "credits": credits,
                "decision": decisions.get((run, warehouse, seq)),
            }
            for (run, warehouse, seq), credits in ranked
        ]

    def top_regret(self, k: int = 10) -> list[dict]:
        """The k sealed decisions whose realized cost most exceeded the
        prediction (positive ``error_credits`` = the what-if was too rosy)."""
        rows = []
        for position in self._by_kind.get("outcome", []):
            row = self.rows[position]
            error = row["data"].get("error_credits")
            if error is None:
                continue
            rows.append(
                {
                    "run": row["run"],
                    "warehouse": row["warehouse"],
                    "seq": row["seq"],
                    "time": row["time"],
                    "error_credits": float(error),
                    "predicted_credits": row["data"].get("predicted_credits"),
                    "realized_credits": row["data"].get("realized_credits"),
                }
            )
        rows.sort(
            key=lambda r: (-r["error_credits"], r["run"], r["warehouse"], r["seq"])
        )
        rows = rows[: max(k, 0)]
        decisions = {
            (d["run"], d["warehouse"], d["seq"]): d for d in self.decisions()
        }
        for row in rows:
            row["decision"] = decisions.get(
                (row["run"], row["warehouse"], row["seq"])
            )
        return rows
