"""Command-line entry point: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli fig4a [--seed 401]
    python -m repro.cli fig5
    python -m repro.cli fig6
    python -m repro.cli fig7
    python -m repro.cli onboarding [--days 12]
    python -m repro.cli fleet [--customers 6]
    python -m repro.cli lint [paths ...] [--format json|sarif]
    python -m repro.cli analyze [paths ...] [--format json|sarif] [--graph out.dot]
    python -m repro.cli obs {smoke,summarize,diff,profile,slo,alerts,report} ...
    python -m repro.cli faults {list,describe,run} ...
    python -m repro.cli durability {checkpoint,restore,verify,smoke} ...
    python -m repro.cli costmodel stream [--rows 400]

Each experiment command runs the corresponding §7 protocol and prints the
same rows/series the paper's figure reports (the benchmarks wrap these same
protocols with timing and assertions).  ``lint`` runs the determinism &
invariant checker (see docs/INVARIANTS.md); ``obs`` inspects trace files
from the observability layer (see docs/OBSERVABILITY.md); ``faults`` runs
the chaos scenarios of the fault-injection layer (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import argparse
import sys

import repro.analysis.cli as analysis_cli
import repro.costmodel.cli as costmodel_cli
import repro.durability.cli as durability_cli
import repro.faults.cli as faults_cli
import repro.lint.cli as lint_cli
import repro.obs.cli as obs_cli

from repro.experiments.runner import (
    run_before_after,
    run_cost_model_accuracy,
    run_fleet,
    run_onboarding_curve,
    run_overhead,
    run_slider_sweep,
)
from repro.parallel import StreamConfig
from repro.experiments.scenarios import (
    fig4a_scenario,
    fig4b_scenario,
    fig5_scenarios,
    fig6_scenario,
    fleet_scenarios,
    onboarding_scenario,
)
from repro.portal.reports import render_overhead, render_savings


def _cmd_fig4(args: argparse.Namespace) -> None:
    builder = fig4a_scenario if args.command == "fig4a" else fig4b_scenario
    result, _ = run_before_after(builder(seed=args.seed) if args.seed else builder())
    print(render_savings(result.dashboard))
    print(f"\np99 change: {result.p99_change_fraction():+.1%}")
    print(f"cost-model estimated savings: {result.estimated_savings_fraction:.1%}")


def _cmd_fig5(args: argparse.Namespace) -> None:
    rows = run_cost_model_accuracy(fig5_scenarios(seed=args.seed or 500))
    print(f"{'warehouse':>12} {'actual':>9} {'estimated':>10} {'rel.err':>8}")
    for row in rows:
        print(
            f"{row.warehouse:>12} {row.actual_credits:>9.2f} "
            f"{row.estimated_credits:>10.2f} {row.relative_error:>8.2%}"
        )


def _cmd_fig6(args: argparse.Namespace) -> None:
    result = run_overhead(fig6_scenario(seed=args.seed or 600))
    print(render_overhead(result.dashboard))
    print(f"\nhourly CV of (actual + est. savings): {result.total_without_keebo_stability():.3f}")


def _cmd_fig7(args: argparse.Namespace) -> None:
    rows = run_slider_sweep(seed=args.seed or 700)
    print(f"{'slider':>7} {'label':>17} {'credits':>9} {'avg lat':>8} {'p99':>8}")
    for row in rows:
        print(
            f"{int(row.slider):>7} {row.slider.label:>17} {row.total_credits:>9.1f} "
            f"{row.avg_latency:>7.2f}s {row.p99_latency:>7.1f}s"
        )


def _cmd_onboarding(args: argparse.Namespace) -> None:
    curve = run_onboarding_curve(
        onboarding_scenario(seed=args.seed or 800, total_days=args.days)
    )
    print("hours  trailing-24h savings rate")
    for h, s in zip(curve.hours, curve.savings_rate):
        print(f"{h:>5.0f}  {s:>7.1%}")
    for fraction in (0.5, 0.7, 0.95):
        print(f"hours to {fraction:.0%} of eventual: {curve.hours_to_reach(fraction)}")


def _cmd_fleet(args: argparse.Namespace) -> None:
    stream = StreamConfig(dir=args.stream_dir) if args.stream_dir else None
    result = run_fleet(
        fleet_scenarios(n_customers=args.customers, seed=args.seed or 900),
        workers=args.workers,
        stream=stream,
    )
    for row in result.rows:
        print(
            f"{row.scenario:>28}  savings {row.savings_fraction:>6.1%}  "
            f"p99 change {row.p99_change_fraction():>+6.1%}"
        )
    lo, hi = result.savings_range
    print(f"\nsavings range: {lo:.1%} .. {hi:.1%}")


_COMMANDS = {
    "fig4a": _cmd_fig4,
    "fig4b": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "onboarding": _cmd_onboarding,
    "fleet": _cmd_fleet,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the paper's experiments (SIGMOD-Companion '23 Keebo KWO).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in sorted(_COMMANDS) + ["list"]:
        sub = subparsers.add_parser(
            name, help="enumerate the experiments" if name == "list" else f"run the {name} protocol"
        )
        sub.add_argument("--seed", type=int, default=None, help="override the scenario seed")
        sub.add_argument("--days", type=int, default=12, help="horizon for 'onboarding'")
        sub.add_argument("--customers", type=int, default=6, help="fleet size for 'fleet'")
        sub.add_argument(
            "--workers",
            type=int,
            default=0,
            help="worker processes for 'fleet' (0 = in-process; results are "
            "identical either way, docs/PERFORMANCE.md)",
        )
        sub.add_argument(
            "--stream-dir",
            default=None,
            dest="stream_dir",
            help="for 'fleet': stream worker observability through this "
            "directory in bounded chunks with heartbeats "
            "(docs/OBSERVABILITY.md §v4)",
        )
    lint = subparsers.add_parser(
        "lint", help="run the determinism & invariant linter (docs/INVARIANTS.md)"
    )
    lint_cli.configure_parser(lint)
    analyze = subparsers.add_parser(
        "analyze", help="run the whole-program static analyzer (docs/ANALYSIS.md)"
    )
    analysis_cli.configure_parser(analyze)
    obs = subparsers.add_parser(
        "obs", help="inspect observability traces (docs/OBSERVABILITY.md)"
    )
    obs_cli.configure_parser(obs)
    faults = subparsers.add_parser(
        "faults", help="run chaos scenarios under fault injection (docs/ROBUSTNESS.md)"
    )
    faults_cli.configure_parser(faults)
    durability = subparsers.add_parser(
        "durability",
        help="checkpoint/restore/verify control-plane state (docs/ROBUSTNESS.md)",
    )
    durability_cli.configure_parser(durability)
    costmodel = subparsers.add_parser(
        "costmodel",
        help="smoke-drive the incremental what-if ledger (docs/PERFORMANCE.md)",
    )
    costmodel_cli.configure_parser(costmodel)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(_COMMANDS):
            print(name)
        return 0
    if args.command == "lint":
        return lint_cli.run(args)
    if args.command == "analyze":
        return analysis_cli.run(args)
    if args.command == "obs":
        return obs_cli.run(args)
    if args.command == "faults":
        return faults_cli.run(args)
    if args.command == "durability":
        return durability_cli.run(args)
    if args.command == "costmodel":
        return costmodel_cli.run(args)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
