"""repro.parallel — deterministic process-parallel experiment execution.

The paper's evaluation sweeps many independent warehouses (the Figure 4/5
fleet, the Figure 7 slider sweep); each is an isolated simulation, so they
parallelize embarrassingly — *if* parallelism cannot change the results.
This package provides that guarantee (docs/PERFORMANCE.md):

* scenarios cross the process boundary as picklable
  :class:`~repro.experiments.scenarios.ScenarioSpec` recipes, never as live
  objects — each worker rebuilds its scenario from the registered factory,
  and ``RngRegistry``'s name-derived streams make the rebuild exact;
* each scenario runs in an isolated observation session (in a worker *or*
  inline), and the parent folds the captured payloads back **in submission
  order** through :meth:`repro.obs.Recorder.merge_payload`;
* the serial (``workers=0``) path uses the very same isolate-and-merge
  machinery, so ``workers=N`` output is byte-identical to ``workers=0``
  by construction, not by luck;
* with a :class:`~repro.parallel.pool.StreamConfig`, payloads instead
  travel as bounded chunk streams spooled through disk
  (:mod:`repro.obs.stream`): worker peak RSS is O(spill bound), the
  parent folds O(chunk) at a time, workers heartbeat their progress —
  and the exported bytes are *still* identical to the monolithic paths.

This is the only module allowed to touch :mod:`multiprocessing`
(lint rule R011, docs/INVARIANTS.md).
"""

from repro.parallel.pool import (
    ParallelExecutionError,
    StreamConfig,
    WorkerJob,
    register_protocol,
    resolve_protocol,
    run_jobs,
)

__all__ = [
    "ParallelExecutionError",
    "StreamConfig",
    "WorkerJob",
    "register_protocol",
    "resolve_protocol",
    "run_jobs",
]
