"""The process pool: job specs, the worker entrypoint, and ``run_jobs``.

Execution model
---------------

A :class:`WorkerJob` names a *protocol* (a registered per-scenario
function, e.g. the §7.1 before/after row) and the scenario to run it on.
``run_jobs`` executes the jobs and returns their results in submission
order:

* ``workers=0`` (default) runs everything inline, one isolated
  observation session per job when a session is active;
* ``workers>0`` runs jobs in ``spawn``-context worker processes.  Each
  worker rebuilds its scenario from the job's
  :class:`~repro.experiments.scenarios.ScenarioSpec`, records into a
  fresh session, and ships the result plus the session payload back.

Either way the parent merges the per-job payloads in submission order, so
the two paths produce byte-identical traces, metrics and series exports
(tests/experiments/test_parallel.py states this as an equality).

``spawn`` (not ``fork``) is deliberate: workers start from a clean
interpreter, so they cannot inherit the parent's active recorder, warmed
caches, or any other ambient state that could make a worker run diverge
from a fresh serial run.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import sys
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.common.errors import ReproError
from repro.obs import trace as obs_trace
from repro.obs.series import DEFAULT_BUCKET_SECONDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.experiments.scenarios import Scenario, ScenarioSpec


class ParallelExecutionError(ReproError):
    """A job could not be shipped to or completed by a worker process.

    Always names the failing scenario's spec (``factory(kwargs)[index]``)
    so a fleet failure points at the one rebuildable scenario to rerun.
    """


#: Protocol registry: name -> per-scenario callable.  Populated by
#: :func:`register_protocol` when :mod:`repro.experiments.runner` imports;
#: workers resolve lazily through :func:`resolve_protocol`.
_PROTOCOLS: dict[str, Callable] = {}


def register_protocol(name: str) -> Callable:
    """Register a per-scenario protocol function under ``name``.

    Protocol functions take a built ``Scenario`` (plus keyword arguments
    from the job) and must return a **picklable** result — optimizers and
    accounts stay behind in the worker.
    """

    def decorate(fn: Callable) -> Callable:
        if name in _PROTOCOLS:
            raise ParallelExecutionError(f"duplicate protocol {name!r}")
        _PROTOCOLS[name] = fn
        return fn

    return decorate


def resolve_protocol(name: str) -> Callable:
    """Look up a protocol by name, importing the runner module first.

    The lazy import breaks the ``runner -> parallel`` cycle and doubles as
    the worker-side bootstrap: a freshly spawned process only needs the
    job to know which code to run.
    """
    import repro.experiments.runner  # noqa: F401  (registers protocols)

    try:
        return _PROTOCOLS[name]
    except KeyError:
        raise ParallelExecutionError(
            f"unknown protocol {name!r}; registered: {sorted(_PROTOCOLS)}"
        ) from None


@dataclass(frozen=True)
class WorkerJob:
    """One unit of work: run ``protocol`` on one scenario.

    Callers in the same process may attach the live ``scenario`` object
    (used by the serial path, and the source of the spec when shipping);
    only the picklable ``(protocol, spec, kwargs)`` triple ever crosses a
    process boundary.
    """

    protocol: str
    spec: "ScenarioSpec | None" = None
    scenario: "Scenario | None" = field(default=None, compare=False)
    kwargs: tuple[tuple[str, object], ...] = ()

    def build_scenario(self) -> "Scenario":
        if self.scenario is not None:
            return self.scenario
        if self.spec is None:
            raise ParallelExecutionError(
                f"job for protocol {self.protocol!r} has neither a scenario "
                "nor a spec"
            )
        return self.spec.build()

    def shippable(self) -> "WorkerJob":
        """A copy safe to pickle: spec only, live scenario stripped."""
        spec = self.spec
        if spec is None and self.scenario is not None:
            spec = self.scenario.spec
        if spec is None:
            name = getattr(self.scenario, "name", None)
            raise ParallelExecutionError(
                f"cannot ship scenario {name!r} to a worker: it carries no "
                "ScenarioSpec — build it through a registered "
                "@scenario_factory (docs/PERFORMANCE.md)"
            )
        return replace(self, spec=spec, scenario=None)


def _execute(job: WorkerJob, observe: bool, bucket_seconds: float):
    """Worker entrypoint: rebuild, run, and capture the session payload.

    Module-level so ``spawn`` can pickle it by reference.  Also the serial
    path's per-job body — both paths run *exactly* this code.
    """
    fn = resolve_protocol(job.protocol)
    scenario = job.build_scenario()
    if not observe:
        return fn(scenario, **dict(job.kwargs)), None
    rec = obs_trace.start(bucket_seconds=bucket_seconds)
    try:
        result = fn(scenario, **dict(job.kwargs))
    finally:
        obs_trace.stop()
    return result, rec.to_payload()


@contextmanager
def _child_import_path() -> Iterator[None]:
    """Make ``repro`` importable in spawned children via ``PYTHONPATH``.

    ``spawn`` children start a fresh interpreter that inherits the
    environment but not the parent's ``sys.path`` edits; prepending this
    package's source root covers parents that imported ``repro`` through a
    path hack rather than an install.
    """
    src = str(pathlib.Path(__file__).resolve().parents[2])
    old = os.environ.get("PYTHONPATH")
    if old is None or src not in old.split(os.pathsep):
        os.environ["PYTHONPATH"] = src if old is None else os.pathsep.join([src, old])
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = old


def run_jobs(jobs: Sequence[WorkerJob], workers: int = 0) -> list:
    """Run jobs and return their results in submission order.

    ``workers=0`` runs inline; ``workers>0`` uses that many ``spawn``
    worker processes.  When an observation session is active, both paths
    run each job in an isolated session and merge the captured payloads
    back in submission order, so the exported trace/metrics/series are
    identical regardless of ``workers``.
    """
    jobs = list(jobs)
    if workers < 0:
        raise ParallelExecutionError(f"workers must be >= 0, got {workers}")
    if not jobs:
        return []
    if workers == 0:
        return _run_serial(jobs)
    return _run_parallel(jobs, workers)


def _run_serial(jobs: list[WorkerJob]) -> list:
    parent = obs_trace.recorder()
    if parent is None:
        return [_execute(job, False, DEFAULT_BUCKET_SECONDS)[0] for job in jobs]
    bucket_seconds = parent.series.bucket_seconds
    outcomes = []
    obs_trace.stop()
    try:
        for job in jobs:
            outcomes.append(_execute(job, True, bucket_seconds))
    finally:
        obs_trace.resume(parent)
    for _, payload in outcomes:
        parent.merge_payload(payload)
    return [result for result, _ in outcomes]


def _run_parallel(jobs: list[WorkerJob], workers: int) -> list:
    parent = obs_trace.recorder()
    observe = parent is not None
    bucket_seconds = parent.series.bucket_seconds if observe else DEFAULT_BUCKET_SECONDS
    shipped = [job.shippable() for job in jobs]
    context = multiprocessing.get_context("spawn")
    outcomes = []
    with _child_import_path():
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = [
                pool.submit(_execute, job, observe, bucket_seconds) for job in shipped
            ]
            for job, future in zip(shipped, futures):
                try:
                    outcomes.append(future.result())
                except ParallelExecutionError:
                    raise
                except BaseException as exc:
                    raise ParallelExecutionError(
                        f"worker failed for scenario {job.spec.describe()} "
                        f"(protocol {job.protocol!r}): {exc!r}"
                    ) from exc
    if observe:
        for _, payload in outcomes:
            parent.merge_payload(payload)
    return [result for result, _ in outcomes]
