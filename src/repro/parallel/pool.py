"""The process pool: job specs, the worker entrypoint, and ``run_jobs``.

Execution model
---------------

A :class:`WorkerJob` names a *protocol* (a registered per-scenario
function, e.g. the §7.1 before/after row) and the scenario to run it on.
``run_jobs`` executes the jobs and returns their results in submission
order:

* ``workers=0`` (default) runs everything inline, one isolated
  observation session per job when a session is active;
* ``workers>0`` runs jobs in ``spawn``-context worker processes.  Each
  worker rebuilds its scenario from the job's
  :class:`~repro.experiments.scenarios.ScenarioSpec`, records into a
  fresh session, and ships the result plus the session payload back.

Either way the parent merges the per-job payloads in submission order, so
the two paths produce byte-identical traces, metrics and series exports
(tests/experiments/test_parallel.py states this as an equality).

Worker deaths are survivable: a :class:`BrokenProcessPool` (OOM kill,
segfault, ``os._exit``) rebuilds the pool and re-submits the jobs that
were lost, with a bounded per-job budget — a job that keeps killing
workers is quarantined behind a typed :class:`ParallelExecutionError`
carrying heartbeat evidence instead of burning processes forever.
Deterministic in-job exceptions never retry, and ``KeyboardInterrupt``
re-raises untouched (see :func:`_run_with_worker_recovery`).

``spawn`` (not ``fork``) is deliberate: workers start from a clean
interpreter, so they cannot inherit the parent's active recorder, warmed
caches, or any other ambient state that could make a worker run diverge
from a fresh serial run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.common.errors import ReproError
from repro.obs import stream as obs_stream
from repro.obs import trace as obs_trace
from repro.obs.series import DEFAULT_BUCKET_SECONDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.experiments.scenarios import Scenario, ScenarioSpec

#: Times a single job may be implicated in a worker death before it is
#: quarantined instead of retried (one retry: crashes are either transient
#: environmental kills, gone on the second attempt, or deterministic
#: poison, where more attempts only burn more workers).
WORKER_DEATH_RETRY_LIMIT = 2


class ParallelExecutionError(ReproError):
    """A job could not be shipped to or completed by a worker process.

    Always names the failing scenario's spec (``factory(kwargs)[index]``)
    so a fleet failure points at the one rebuildable scenario to rerun.
    """


#: Protocol registry: name -> per-scenario callable.  Populated by
#: :func:`register_protocol` when :mod:`repro.experiments.runner` imports;
#: workers resolve lazily through :func:`resolve_protocol`.
_PROTOCOLS: dict[str, Callable] = {}


def register_protocol(name: str) -> Callable:
    """Register a per-scenario protocol function under ``name``.

    Protocol functions take a built ``Scenario`` (plus keyword arguments
    from the job) and must return a **picklable** result — optimizers and
    accounts stay behind in the worker.
    """

    def decorate(fn: Callable) -> Callable:
        if name in _PROTOCOLS:
            raise ParallelExecutionError(f"duplicate protocol {name!r}")
        _PROTOCOLS[name] = fn
        return fn

    return decorate


def resolve_protocol(name: str) -> Callable:
    """Look up a protocol by name, importing the runner module first.

    The lazy import breaks the ``runner -> parallel`` cycle and doubles as
    the worker-side bootstrap: a freshly spawned process only needs the
    job to know which code to run.
    """
    import repro.experiments.runner  # noqa: F401  (registers protocols)

    try:
        return _PROTOCOLS[name]
    except KeyError:
        raise ParallelExecutionError(
            f"unknown protocol {name!r}; registered: {sorted(_PROTOCOLS)}"
        ) from None


@dataclass(frozen=True)
class WorkerJob:
    """One unit of work: run ``protocol`` on one scenario.

    Callers in the same process may attach the live ``scenario`` object
    (used by the serial path, and the source of the spec when shipping);
    only the picklable ``(protocol, spec, kwargs)`` triple ever crosses a
    process boundary.
    """

    protocol: str
    spec: "ScenarioSpec | None" = None
    scenario: "Scenario | None" = field(default=None, compare=False)
    kwargs: tuple[tuple[str, object], ...] = ()

    def build_scenario(self) -> "Scenario":
        if self.scenario is not None:
            return self.scenario
        if self.spec is None:
            raise ParallelExecutionError(
                f"job for protocol {self.protocol!r} has neither a scenario "
                "nor a spec"
            )
        return self.spec.build()

    def shippable(self) -> "WorkerJob":
        """A copy safe to pickle: spec only, live scenario stripped."""
        spec = self.spec
        if spec is None and self.scenario is not None:
            spec = self.scenario.spec
        if spec is None:
            name = getattr(self.scenario, "name", None)
            raise ParallelExecutionError(
                f"cannot ship scenario {name!r} to a worker: it carries no "
                "ScenarioSpec — build it through a registered "
                "@scenario_factory (docs/PERFORMANCE.md)"
            )
        return replace(self, spec=spec, scenario=None)


@dataclass(frozen=True)
class StreamConfig:
    """How ``run_jobs`` should stream observability out of its workers.

    ``dir`` is the campaign directory; workers spill trace segments under
    ``<dir>/spill/job-<i>/``, spool their payload chunk streams to
    ``<dir>/spool/job-<i>.chunks.jsonl``, and append heartbeats under
    ``<dir>/progress/`` (``repro.cli obs watch`` tails those).  ``probe``
    is an optional parent-side :class:`repro.obs.stream.ResourceProbe`;
    it never crosses the process boundary — workers self-report plain
    stats dicts that the parent folds into it.
    """

    dir: str | pathlib.Path
    max_chunk_events: int = obs_stream.DEFAULT_CHUNK_EVENTS
    spill_records: int = obs_stream.DEFAULT_SPILL_RECORDS
    probe: object | None = field(default=None, compare=False)

    def base(self) -> pathlib.Path:
        return pathlib.Path(self.dir)


def _execute(job: WorkerJob, observe: bool, bucket_seconds: float):
    """Worker entrypoint: rebuild, run, and capture the session payload.

    Module-level so ``spawn`` can pickle it by reference.  Also the serial
    path's per-job body — both paths run *exactly* this code.
    """
    fn = resolve_protocol(job.protocol)
    scenario = job.build_scenario()
    if not observe:
        return fn(scenario, **dict(job.kwargs)), None
    rec = obs_trace.start(bucket_seconds=bucket_seconds)
    try:
        result = fn(scenario, **dict(job.kwargs))
    finally:
        obs_trace.stop()
    return result, rec.to_payload()


def _job_label(job: WorkerJob) -> str:
    """The scenario label heartbeats carry — identical on both paths.

    Serial jobs arrive un-shipped (spec on the scenario, not the job), so
    look through to the scenario's spec before falling back to its name.
    """
    spec = job.spec
    if spec is None and job.scenario is not None:
        spec = getattr(job.scenario, "spec", None)
    if spec is not None:
        return spec.describe()
    return str(getattr(job.scenario, "name", "?"))


def _execute_streamed(
    job: WorkerJob,
    index: int,
    observe: bool,
    bucket_seconds: float,
    dir_str: str,
    max_chunk_events: int,
    spill_records: int,
):
    """Streamed worker entrypoint: spill, run, spool chunks, heartbeat.

    Module-level so ``spawn`` can pickle it by reference; also the serial
    streamed path's per-job body.  Records into a
    :class:`~repro.obs.stream.SpillingTraceSink` (peak RSS bounded by the
    spill threshold, not the run length), then writes the session's chunk
    stream to a spool file the parent folds in submission order.  Returns
    ``(result, spool_path | None, stats)``; ``stats`` holds only
    deterministic counts plus the worker's peak RSS, and is routed
    exclusively to the resources sidecar.
    """
    base = pathlib.Path(dir_str)
    progress_dir = base / "progress"
    obs_stream.write_heartbeat(
        progress_dir,
        index,
        status="start",
        scenario=_job_label(job),
        protocol=job.protocol,
    )
    fn = resolve_protocol(job.protocol)
    scenario = job.build_scenario()
    if not observe:
        result = fn(scenario, **dict(job.kwargs))
        obs_stream.write_heartbeat(
            progress_dir, index, status="done",
            records=0, spans=0, events=0, chunks=0, sim_time=0.0,
        )
        return result, None, {"job": index, "peak_rss_kb": obs_stream.peak_rss_kb()}
    sink = obs_stream.SpillingTraceSink(
        base / "spill" / f"job-{index:05d}", max_records=spill_records
    )
    rec = obs_trace.start(sink=sink, bucket_seconds=bucket_seconds)
    try:
        result = fn(scenario, **dict(job.kwargs))
    finally:
        obs_trace.stop()
    spool_dir = base / "spool"
    spool_dir.mkdir(parents=True, exist_ok=True)
    spool_path = spool_dir / f"job-{index:05d}.chunks.jsonl"
    records = spans = events = chunks = 0
    sim_time = 0.0
    with open(spool_path, "w", encoding="utf-8") as fh:
        for chunk in rec.to_payload_chunks(max_events=max_chunk_events):
            fh.write(
                json.dumps(chunk, sort_keys=True, separators=(",", ":")) + "\n"
            )
            chunks += 1
            records += len(chunk["records"])
            spans += int(chunk["span_ids"])
            for record in chunk["records"]:
                if record.get("type") == "event":
                    events += 1
                sim_time = max(
                    sim_time,
                    float(record.get("time_end", record.get("time", 0.0)) or 0.0),
                )
            obs_stream.write_heartbeat(
                progress_dir, index, status="chunk", seq=chunk["seq"],
                records=records, spans=spans, events=events, sim_time=sim_time,
            )
    spilled_segments = sink.spilled_segments
    sink.cleanup()
    obs_stream.write_heartbeat(
        progress_dir, index, status="done",
        records=records, spans=spans, events=events, chunks=chunks,
        sim_time=sim_time,
    )
    stats = {
        "job": index,
        "records": records,
        "spans": spans,
        "events": events,
        "chunks": chunks,
        "spool_bytes": spool_path.stat().st_size,
        "spilled_segments": spilled_segments,
        "peak_rss_kb": obs_stream.peak_rss_kb(),
    }
    return result, str(spool_path), stats


@contextmanager
def _child_import_path() -> Iterator[None]:
    """Make ``repro`` importable in spawned children via ``PYTHONPATH``.

    ``spawn`` children start a fresh interpreter that inherits the
    environment but not the parent's ``sys.path`` edits; prepending this
    package's source root covers parents that imported ``repro`` through a
    path hack rather than an install.
    """
    src = str(pathlib.Path(__file__).resolve().parents[2])
    old = os.environ.get("PYTHONPATH")
    if old is None or src not in old.split(os.pathsep):
        os.environ["PYTHONPATH"] = src if old is None else os.pathsep.join([src, old])
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = old


def run_jobs(
    jobs: Sequence[WorkerJob],
    workers: int = 0,
    stream: StreamConfig | None = None,
) -> list:
    """Run jobs and return their results in submission order.

    ``workers=0`` runs inline; ``workers>0`` uses that many ``spawn``
    worker processes.  When an observation session is active, both paths
    run each job in an isolated session and merge the captured payloads
    back in submission order, so the exported trace/metrics/series are
    identical regardless of ``workers``.

    With a :class:`StreamConfig`, payloads travel as bounded chunk
    streams through spool files instead of monolithic values: worker
    peak RSS is O(spill bound), the parent merges O(chunk) at a time,
    and workers heartbeat their progress — all while producing the very
    same bytes as the monolithic paths (docs/OBSERVABILITY.md §v4).
    """
    jobs = list(jobs)
    if workers < 0:
        raise ParallelExecutionError(f"workers must be >= 0, got {workers}")
    if not jobs:
        return []
    if stream is not None:
        if workers == 0:
            return _run_serial_streamed(jobs, stream)
        return _run_parallel_streamed(jobs, workers, stream)
    if workers == 0:
        return _run_serial(jobs)
    return _run_parallel(jobs, workers)


def _run_serial(jobs: list[WorkerJob]) -> list:
    parent = obs_trace.recorder()
    if parent is None:
        return [_execute(job, False, DEFAULT_BUCKET_SECONDS)[0] for job in jobs]
    bucket_seconds = parent.series.bucket_seconds
    outcomes = []
    obs_trace.stop()
    try:
        for job in jobs:
            outcomes.append(_execute(job, True, bucket_seconds))
    finally:
        obs_trace.resume(parent)
    for _, payload in outcomes:
        parent.merge_payload(payload)
    return [result for result, _ in outcomes]


#: Placeholder for a job whose outcome has not arrived yet (results and
#: payloads may legitimately be None, so identity-checked sentinel).
_UNSET = object()


def _heartbeat_evidence(progress_dir) -> str:
    """Which jobs started but never reported done, per their heartbeats.

    The streamed paths append per-job heartbeats under ``progress/``; when
    a worker dies, the jobs whose files end without a ``done`` record are
    the ones that were on the dead worker — the closest thing to a crash
    log a vanished process leaves behind.
    """
    if progress_dir is None or not pathlib.Path(progress_dir).exists():
        return ""
    beats = obs_stream.read_heartbeats(progress_dir)
    lost = []
    for index in sorted(beats):
        statuses = {beat.get("status") for beat in beats[index]}
        if "start" in statuses and "done" not in statuses:
            last = beats[index][-1]
            scenario = next(
                (b.get("scenario") for b in beats[index] if b.get("scenario")), "?"
            )
            lost.append(
                f"job {index} ({scenario}) last heartbeat "
                f"status={last.get('status')!r}"
            )
    return "; ".join(lost)


def _run_with_worker_recovery(
    n_jobs: int,
    submit_one: Callable,
    describe_job: Callable[[int], str],
    workers: int,
    on_result: Callable[[int, object], None],
    progress_dir=None,
) -> None:
    """Run one task per job index on spawn pools, surviving worker deaths.

    The exception contract ``run_jobs`` promises:

    * ``KeyboardInterrupt``/``SystemExit`` re-raise untouched — an
      interrupt is the *user's* signal, never a job failure to wrap;
    * an exception raised *inside* a job (the worker survives, the future
      carries the error) is a deterministic job failure — typed
      :class:`ParallelExecutionError` naming the job, no retry;
    * :class:`BrokenProcessPool` means a worker *process died* (OOM kill,
      segfault, ``os._exit``).  The job it broke on is re-submitted to a
      rebuilt pool with a budget of :data:`WORKER_DEATH_RETRY_LIMIT`
      implications; a job that keeps killing workers is quarantined with a
      typed error carrying the heartbeat evidence, because retrying
      deterministic poison forever just burns processes.

    Completed outcomes are emitted through ``on_result`` in strict
    submission order (later results wait for earlier holes), so callers
    can merge observability incrementally and still get byte-identical
    exports regardless of worker deaths or retries.
    """
    context = multiprocessing.get_context("spawn")
    outcomes: list = [_UNSET] * n_jobs
    strikes: dict[int, int] = {}
    emitted = 0

    def flush() -> None:
        nonlocal emitted
        while emitted < n_jobs and outcomes[emitted] is not _UNSET:
            on_result(emitted, outcomes[emitted])
            outcomes[emitted] = None  # emitted; drop the reference
            emitted += 1

    pending = list(range(n_jobs))
    while pending:
        broken: tuple[int, BaseException] | None = None
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {index: submit_one(pool, index) for index in pending}
            for index in pending:
                if broken is not None:
                    # The pool is already broken; harvest whatever finished
                    # before the death so survivors are not re-run.
                    future = futures[index]
                    if future.done() and future.exception() is None:
                        outcomes[index] = future.result()
                    continue
                try:
                    outcomes[index] = futures[index].result()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BrokenProcessPool as exc:
                    broken = (index, exc)
                except ParallelExecutionError:
                    raise
                except Exception as exc:
                    raise ParallelExecutionError(
                        f"job failed for scenario {describe_job(index)}: {exc!r}"
                    ) from exc
        flush()
        if broken is None:
            return
        suspect, cause = broken
        strikes[suspect] = strikes.get(suspect, 0) + 1
        if strikes[suspect] >= WORKER_DEATH_RETRY_LIMIT:
            evidence = _heartbeat_evidence(progress_dir)
            suffix = f"; heartbeat evidence: {evidence}" if evidence else ""
            raise ParallelExecutionError(
                f"worker process died {strikes[suspect]} times running scenario "
                f"{describe_job(suspect)}; quarantining the job as poison "
                f"instead of retrying (cause: {cause!r}){suffix}"
            ) from cause
        pending = [index for index in pending if outcomes[index] is _UNSET]


def _run_parallel(jobs: list[WorkerJob], workers: int) -> list:
    parent = obs_trace.recorder()
    observe = parent is not None
    bucket_seconds = parent.series.bucket_seconds if observe else DEFAULT_BUCKET_SECONDS
    shipped = [job.shippable() for job in jobs]
    results: list = []

    def on_result(index: int, outcome) -> None:
        result, payload = outcome
        if observe:
            parent.merge_payload(payload)
        results.append(result)

    with _child_import_path():
        _run_with_worker_recovery(
            len(shipped),
            lambda pool, i: pool.submit(_execute, shipped[i], observe, bucket_seconds),
            lambda i: f"{shipped[i].spec.describe()} (protocol {shipped[i].protocol!r})",
            workers,
            on_result,
        )
    return results


def _merge_chunk_spool(parent, spool_path: str, probe) -> None:
    """Fold one worker's spooled chunk stream into the parent session.

    Reads the spool one line at a time — the parent never holds more
    than a single chunk — and deletes it once fully merged.  A spool
    whose final chunk never arrived means the worker died mid-capture;
    that must fail loudly, not truncate the trace silently.
    """
    merger = obs_stream.PayloadChunkMerger(parent)
    with open(spool_path, "r", encoding="utf-8") as fh:
        for line in fh:
            if not line.strip():
                continue
            probe.add_bytes("chunk_bytes_merged", len(line))
            probe.add_count("chunks_merged")
            with probe.stage("merge_chunks"):
                merger.merge(json.loads(line))
    if not merger.finished:
        raise ParallelExecutionError(
            f"chunk spool {spool_path} ended before its final chunk "
            "(worker died mid-capture?)"
        )
    os.remove(spool_path)


def _stream_probe(cfg: StreamConfig):
    return cfg.probe if cfg.probe is not None else obs_stream.NULL_PROBE


def _run_serial_streamed(jobs: list[WorkerJob], cfg: StreamConfig) -> list:
    parent = obs_trace.recorder()
    observe = parent is not None
    bucket_seconds = (
        parent.series.bucket_seconds if observe else DEFAULT_BUCKET_SECONDS
    )
    probe = _stream_probe(cfg)
    outcomes = []
    if observe:
        obs_trace.stop()
    try:
        for index, job in enumerate(jobs):
            with probe.stage("execute"):
                outcomes.append(
                    _execute_streamed(
                        job, index, observe, bucket_seconds, str(cfg.base()),
                        cfg.max_chunk_events, cfg.spill_records,
                    )
                )
    finally:
        if observe:
            obs_trace.resume(parent)
    results = []
    for result, spool_path, stats in outcomes:
        probe.add_worker(stats)
        if observe and spool_path is not None:
            _merge_chunk_spool(parent, spool_path, probe)
        results.append(result)
    probe.sample_rss("parent")
    return results


def _run_parallel_streamed(
    jobs: list[WorkerJob], workers: int, cfg: StreamConfig
) -> list:
    parent = obs_trace.recorder()
    observe = parent is not None
    bucket_seconds = (
        parent.series.bucket_seconds if observe else DEFAULT_BUCKET_SECONDS
    )
    probe = _stream_probe(cfg)
    shipped = [job.shippable() for job in jobs]
    results: list = []

    # Merge each stream the moment its job (in submission order)
    # completes — later workers keep running while earlier chunks fold
    # in, and the parent never buffers whole payloads.  A retried job
    # rewrites its spool from scratch, so a half-written spool from a
    # dead worker is replaced, never merged.
    def on_result(index: int, outcome) -> None:
        result, spool_path, stats = outcome
        probe.add_worker(stats)
        if observe and spool_path is not None:
            _merge_chunk_spool(parent, spool_path, probe)
        results.append(result)

    with _child_import_path():
        _run_with_worker_recovery(
            len(shipped),
            lambda pool, i: pool.submit(
                _execute_streamed, shipped[i], i, observe, bucket_seconds,
                str(cfg.base()), cfg.max_chunk_events, cfg.spill_records,
            ),
            lambda i: f"{shipped[i].spec.describe()} (protocol {shipped[i].protocol!r})",
            workers,
            on_result,
            progress_dir=cfg.base() / "progress",
        )
    probe.sample_rss("parent")
    return results
