"""Customer constraint rules (§4.1 "Constraints", §2 C2).

Constraints are hard business rules over time windows: "from 9:00 to 9:30
the BI warehouse must be at least X-Large with a minimum of 3 clusters", or
"on the last day of the month the ad-hoc warehouse cannot be downsized".
The smart model *never* takes an action that violates a rule in force
(§4.3): non-compliant candidate actions are masked out before selection.

A rule has an applicability predicate (weekdays × hour-of-day window ×
month-day window) and a set of requirements on the *resulting*
configuration (size floor/ceiling, cluster floor) plus per-optimization
permissions (may KWO downsize / upsize / touch parallelism at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, hour_of_day
from repro.learning.actions import ActionSpace
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize

ALL_WEEKDAYS = (0, 1, 2, 3, 4, 5, 6)


@dataclass(frozen=True)
class ConstraintRule:
    """One customer rule; all requirement fields are optional."""

    name: str
    #: Weekdays the rule applies on (0=Mon..6=Sun).
    weekdays: tuple[int, ...] = ALL_WEEKDAYS
    #: Hour-of-day window [start, end); the rule is always-on if full-day.
    start_hour: float = 0.0
    end_hour: float = 24.0
    #: Day-of-(28-day-)month window, e.g. ``(27, 28)`` = last day. None = all.
    month_days: tuple[int, int] | None = None
    # ------------------------------------------------ requirements in force
    min_size: WarehouseSize | None = None
    max_size: WarehouseSize | None = None
    min_clusters: int | None = None
    allow_downsize: bool = True
    allow_upsize: bool = True
    allow_cluster_changes: bool = True
    #: Auto-suspend floor in seconds (e.g. "never suspend faster than 5 min").
    min_auto_suspend: float | None = None

    def __post_init__(self):
        if not 0.0 <= self.start_hour <= 24.0 or not 0.0 <= self.end_hour <= 24.0:
            raise ConfigurationError("rule hours must be within [0, 24]")
        if not self.weekdays:
            raise ConfigurationError("rule must apply to at least one weekday")
        if any(d < 0 or d > 6 for d in self.weekdays):
            raise ConfigurationError("weekdays must be 0..6")
        if (
            self.min_size is not None
            and self.max_size is not None
            and self.min_size > self.max_size
        ):
            raise ConfigurationError("min_size exceeds max_size")

    # --------------------------------------------------------- applicability
    def applies_at(self, t: float) -> bool:
        weekday = int(t // DAY) % 7
        if weekday not in self.weekdays:
            return False
        h = hour_of_day(t)
        if self.start_hour <= self.end_hour:
            in_hours = self.start_hour <= h < self.end_hour
        else:  # wraps midnight
            in_hours = h >= self.start_hour or h < self.end_hour
        if not in_hours:
            return False
        if self.month_days is not None:
            day_in_month = int(t // DAY) % 28
            lo, hi = self.month_days
            if not lo <= day_in_month < hi:
                return False
        return True

    # ------------------------------------------------------------ compliance
    def permits(self, current: WarehouseConfig, proposed: WarehouseConfig) -> bool:
        """Is moving ``current -> proposed`` allowed while this rule is on?"""
        if not self.allow_downsize and proposed.size < current.size:
            return False
        if not self.allow_upsize and proposed.size > current.size:
            return False
        if not self.allow_cluster_changes and (
            proposed.max_clusters != current.max_clusters
            or proposed.min_clusters != current.min_clusters
            or proposed.scaling_policy != current.scaling_policy
        ):
            return False
        if self.min_size is not None and proposed.size < self.min_size:
            return False
        if self.max_size is not None and proposed.size > self.max_size:
            return False
        if self.min_clusters is not None and proposed.max_clusters < self.min_clusters:
            return False
        if (
            self.min_auto_suspend is not None
            and proposed.auto_suspend_seconds < self.min_auto_suspend
        ):
            return False
        return True

    def required_floor(self, config: WarehouseConfig) -> WarehouseConfig:
        """Lift ``config`` to satisfy this rule's resource floors.

        Used when a rule *starts* applying: the optimizer must immediately
        bring the warehouse into compliance (e.g. the Monday-9am "must be
        X-Large, 3 clusters" rule of §4.1's example).
        """
        changes = {}
        if self.min_size is not None and config.size < self.min_size:
            changes["size"] = self.min_size
        if self.max_size is not None and config.size > self.max_size:
            changes["size"] = self.max_size
        if self.min_clusters is not None and config.max_clusters < self.min_clusters:
            changes["max_clusters"] = self.min_clusters
            changes["min_clusters"] = max(config.min_clusters, self.min_clusters)
        if (
            self.min_auto_suspend is not None
            and config.auto_suspend_seconds < self.min_auto_suspend
        ):
            changes["auto_suspend_seconds"] = self.min_auto_suspend
        return config.with_changes(**changes) if changes else config


@dataclass
class ConstraintSet:
    """All rules attached to one warehouse."""

    rules: list[ConstraintRule] = field(default_factory=list)

    def add(self, rule: ConstraintRule) -> None:
        self.rules.append(rule)

    def active_rules(self, t: float) -> list[ConstraintRule]:
        return [r for r in self.rules if r.applies_at(t)]

    def permits(self, t: float, current: WarehouseConfig, proposed: WarehouseConfig) -> bool:
        return all(r.permits(current, proposed) for r in self.active_rules(t))

    def action_mask(
        self, t: float, current: WarehouseConfig, space: ActionSpace
    ) -> np.ndarray:
        """Boolean mask over ``space`` of rule-compliant actions."""
        active = self.active_rules(t)
        if not active:
            return space.effective_mask(current)
        mask = np.zeros(len(space), dtype=bool)
        for i, proposed in enumerate(space.resulting_configs(current)):
            mask[i] = all(r.permits(current, proposed) for r in active)
        return mask

    def enforce_floor(self, t: float, config: WarehouseConfig) -> WarehouseConfig:
        """Apply every active rule's resource floor to ``config``."""
        for rule in self.active_rules(t):
            config = rule.required_floor(config)
        return config
