"""Real-time monitoring (§4.4): the feedback loop that makes KWO safe.

The monitor watches each warehouse for three things:

1. **Impact of KWO's own actions** — recent p99 latency and queueing versus
   the pre-optimization baseline; when degradation exceeds the slider's
   tolerance the smart model must back off (Algorithm 1 lines 18-19).
2. **Workload change** — sudden arrival spikes (Poisson z-score against the
   baseline's hour-of-day profile) or query shapes never seen in training
   (unseen template hashes), either of which argues for conservatism.
3. **External changes** — a human or another tool altering the warehouse
   under KWO's feet.  The monitor compares the live configuration against
   what the actuator last set; on mismatch KWO reverts its own action and
   pauses until the conflict clears (§4.4's devastating-interference
   example).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import TelemetryError, WarehouseError
from repro.common.simtime import HOUR, Window
from repro.common.stats import percentile
from repro.core.sliders import SliderParams
from repro.durability.codec import decode_config, encode_config, require_keys
from repro.obs import trace as obs
from repro.learning.features import WorkloadBaseline
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig

#: Spilled-query share that forces a back-off.  Spilling is categorical
#: evidence the warehouse sits below the workload's working set, and the
#: cost model's log-linear scaling cannot price it — so the bar is low.
SPILL_BACKOFF_FRACTION = 0.05


@dataclass(frozen=True)
class RealTimeFeedback:
    """What the monitor reports to the smart model each decision tick."""

    time: float
    queue_length: int
    running_queries: int
    recent_queries: int
    recent_p99: float
    latency_ratio: float  # recent p99 / baseline p99
    mean_queue_seconds: float
    arrival_zscore: float
    unseen_template_fraction: float
    external_change: bool
    #: What "normal" short-window p99 volatility looked like pre-optimization.
    baseline_ratio_q99: float = 1.5
    #: Fraction of recent queries that spilled to storage — a direct signal
    #: that the current size is below the workload's working set.
    spill_fraction: float = 0.0
    #: False when this snapshot could not read fresh telemetry (vendor
    #: error/timeout/blackout) and the fields above are stale placeholders.
    telemetry_ok: bool = True
    #: Seconds since the last successful telemetry fetch (0 when fresh).
    telemetry_age_seconds: float = 0.0

    def needs_backoff(self, params: SliderParams) -> bool:
        """Degradation beyond the slider's tolerance → revert to safety.

        The latency signal requires a minimum sample (a 15-minute p99 over
        three queries is dominated by a single heavy query, not by KWO's
        actions) and a threshold above the workload's own historical p99
        volatility — otherwise ordinary noise would cause thrashing.
        """
        if self.queue_length > 0 and self.mean_queue_seconds > 1.0:
            return True
        if self.recent_queries >= 5 and self.spill_fraction > SPILL_BACKOFF_FRACTION:
            # Widespread spilling means the warehouse is below the working
            # set: queries are growing super-linearly slower (§5.2) and the
            # cost model's log-linear scaling under-predicts the damage.
            return True
        threshold = max(params.backoff_latency_ratio, 1.1 * self.baseline_ratio_q99)
        return self.recent_queries >= 5 and self.latency_ratio > threshold

    def spike_detected(self, params: SliderParams) -> bool:
        return self.arrival_zscore > params.spike_zscore


class Monitor:
    """Per-warehouse monitoring component."""

    def __init__(
        self,
        client: CloudWarehouseClient,
        warehouse: str,
        baseline: WorkloadBaseline,
        lookback_seconds: float = 900.0,
    ):
        self.client = client
        self.warehouse = warehouse
        self.baseline = baseline
        self.lookback_seconds = lookback_seconds
        self._expected_config: WarehouseConfig | None = None
        self._known_templates: set[str] = set()
        #: Sim time of the last snapshot that read telemetry successfully.
        self._last_good_fetch = client.now
        #: Total snapshots that hit a telemetry/vendor read failure.
        self.telemetry_failures = 0

    # -------------------------------------------------- actuator integration
    def set_expected_config(self, config: WarehouseConfig) -> None:
        """The actuator reports what KWO last set; deviations are external."""
        self._expected_config = config

    def learn_templates(self, template_hashes: set[str]) -> None:
        """Register templates seen during training (for novelty detection)."""
        self._known_templates |= template_hashes

    @property
    def last_good_fetch(self) -> float:
        return self._last_good_fetch

    def telemetry_age(self, now: float) -> float:
        """Seconds since telemetry was last read successfully."""
        return max(0.0, now - self._last_good_fetch)

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {
            "baseline": self.baseline.state_dict(),
            "lookback_seconds": self.lookback_seconds,
            "expected_config": (
                None
                if self._expected_config is None
                else encode_config(self._expected_config)
            ),
            "known_templates": sorted(self._known_templates),
            "last_good_fetch": self._last_good_fetch,
            "telemetry_failures": self.telemetry_failures,
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state,
            (
                "baseline",
                "lookback_seconds",
                "expected_config",
                "known_templates",
                "last_good_fetch",
                "telemetry_failures",
            ),
            "Monitor",
        )
        self.baseline = WorkloadBaseline.from_state(state["baseline"])
        self.lookback_seconds = float(state["lookback_seconds"])
        expected = state["expected_config"]
        self._expected_config = None if expected is None else decode_config(expected)
        self._known_templates = set(state["known_templates"])
        self._last_good_fetch = float(state["last_good_fetch"])
        self.telemetry_failures = int(state["telemetry_failures"])

    # -------------------------------------------------------------- snapshot
    def snapshot(self, now: float) -> RealTimeFeedback:
        window = Window(max(0.0, now - self.lookback_seconds), now)
        try:
            records = self.client.query_history(self.warehouse, window)
            info = self.client.describe_warehouse(self.warehouse)
        except (TelemetryError, WarehouseError) as exc:
            # Degraded snapshot: the vendor view is dark.  Report a neutral
            # feedback frame flagged stale so the optimizer can decide when
            # staleness crosses into SAFE_MODE (docs/ROBUSTNESS.md).
            self.telemetry_failures += 1
            age = self.telemetry_age(now)
            obs.emit(
                "monitor.telemetry_error",
                now,
                warehouse=self.warehouse,
                error=str(exc),
                age=age,
            )
            feedback = RealTimeFeedback(
                time=now,
                queue_length=0,
                running_queries=0,
                recent_queries=0,
                recent_p99=0.0,
                latency_ratio=0.0,
                mean_queue_seconds=0.0,
                arrival_zscore=0.0,
                unseen_template_fraction=0.0,
                external_change=False,
                baseline_ratio_q99=self.baseline.window_p99_ratio_q99,
                telemetry_ok=False,
                telemetry_age_seconds=age,
            )
            self._observe(now, feedback)
            return feedback
        self._last_good_fetch = now
        latencies = [r.total_seconds for r in records]
        p99 = percentile(latencies, 99)
        queue_mean = (
            float(np.mean([r.queued_seconds for r in records])) if records else 0.0
        )
        expected = self.baseline.expected_arrivals_per_hour(now) * (
            self.lookback_seconds / HOUR
        )
        observed = len(records)
        if expected > 0.5:
            zscore = (observed - expected) / math.sqrt(expected)
        else:
            # No historical traffic at this hour: any activity is "new",
            # but a couple of queries is not a spike.
            zscore = 0.0 if observed <= 2 else float(observed)
        if records and self._known_templates:
            unseen = sum(
                1 for r in records if r.template_hash not in self._known_templates
            )
            unseen_fraction = unseen / len(records)
        else:
            unseen_fraction = 0.0
        external = (
            self._expected_config is not None and info.config != self._expected_config
        )
        # A baseline fitted on an idle onboarding window can carry a zero
        # p99; "no baseline signal" must read as "no degradation" (ratio
        # 0.0), not crash the feedback loop.
        if latencies and self.baseline.p99_latency > 0:
            latency_ratio = p99 / self.baseline.p99_latency
        else:
            latency_ratio = 0.0
        feedback = RealTimeFeedback(
            time=now,
            queue_length=info.queue_length,
            running_queries=info.running_queries,
            recent_queries=observed,
            recent_p99=p99,
            latency_ratio=latency_ratio,
            mean_queue_seconds=queue_mean,
            arrival_zscore=float(zscore),
            unseen_template_fraction=unseen_fraction,
            external_change=external,
            baseline_ratio_q99=self.baseline.window_p99_ratio_q99,
            spill_fraction=(
                sum(1 for r in records if r.bytes_spilled > 0) / len(records)
                if records
                else 0.0
            ),
        )
        self._observe(now, feedback)
        return feedback

    def _observe(self, now: float, feedback: RealTimeFeedback) -> None:
        """Feed the snapshot into the active observation session, if any."""
        rec = obs.recorder()
        if rec is None:
            return
        prefix = f"repro.monitor.{self.warehouse.lower()}"
        rec.counter(f"{prefix}.snapshots").inc(time=now)
        rec.gauge(f"{prefix}.latency_ratio").set(feedback.latency_ratio, time=now)
        rec.gauge(f"{prefix}.arrival_zscore").set(feedback.arrival_zscore, time=now)
        rec.gauge(f"{prefix}.spill_fraction").set(feedback.spill_fraction, time=now)
        rec.gauge(f"{prefix}.queue_length").set(feedback.queue_length, time=now)
        rec.gauge(f"{prefix}.telemetry_age").set(feedback.telemetry_age_seconds, time=now)
        if not feedback.telemetry_ok:
            rec.counter(f"{prefix}.telemetry_failures").inc(time=now)
        if feedback.external_change:
            rec.emit("monitor.external_change", now, warehouse=self.warehouse)
            # Stays active until the optimizer accepts/reverts the conflict
            # (resume_optimizations resolves it).
            rec.alerts.fire(
                f"monitor.external_change.{self.warehouse.lower()}",
                now,
                severity="critical",
                warehouse=self.warehouse,
            )
