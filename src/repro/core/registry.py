"""Per-warehouse smart-model persistence.

The paper's smart models are long-lived, per-warehouse assets: they keep
improving across retrains and "are never shared or used for other
customers" (§4.2).  The registry gives them a durable home so a managed
service can restart without retraining from scratch:

* agent weights are stored as ``.npz`` archives keyed by
  ``(account, warehouse)``;
* each checkpoint carries metadata (training episodes seen, feature/action
  dimensions, slider at save time) that is validated on load — restoring a
  checkpoint into an incompatible agent is an error, not a silent corruption;
* the isolation rule is structural: a registry lookup requires the exact
  account *and* warehouse key, and listing is scoped per account;
* saves are crash-consistent: both files are written atomically, the
  weights archive is published *first*, and the metadata — written last —
  carries a content hash of the weights bytes.  A crash between the two
  writes leaves either the old consistent pair or new weights with old
  metadata; :meth:`ModelRegistry.load_into` detects the mismatched pair by
  hash and raises :class:`~repro.common.errors.RecoveryError` instead of
  restoring weights the metadata does not describe.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, RecoveryError
from repro.durability.io import atomic_savez, atomic_write_text
from repro.learning.agent import DQNAgent


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata stored alongside each weight archive."""

    account: str
    warehouse: str
    state_dim: int
    n_actions: int
    train_steps: int
    slider_position: int
    #: Simulation timestamp of the save (float seconds since the scenario
    #: epoch), supplied by the caller.  Wall-clock stamps would make two
    #: replays of the same scenario produce different checkpoint metadata.
    saved_at: float
    #: SHA-256 of the weights archive bytes this metadata describes.
    #: ``None`` only in metadata written before the hash existed; such
    #: legacy pairs load without the pairing check.
    weights_sha256: str | None = None

    def to_json(self) -> str:
        return json.dumps(self.__dict__, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CheckpointInfo":
        return cls(**json.loads(text))


class ModelRegistry:
    """Filesystem-backed store of per-warehouse agent checkpoints."""

    def __init__(self, root: str | pathlib.Path):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------------- paths
    @staticmethod
    def _slug(name: str) -> str:
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
        if not safe:
            raise ConfigurationError(f"cannot derive a storage key from {name!r}")
        return safe

    def _paths(self, account: str, warehouse: str) -> tuple[pathlib.Path, pathlib.Path]:
        base = self.root / self._slug(account)
        return base / f"{self._slug(warehouse)}.npz", base / f"{self._slug(warehouse)}.json"

    # ------------------------------------------------------------------ save
    def save(
        self,
        account: str,
        warehouse: str,
        agent: DQNAgent,
        slider_position: int = 3,
        saved_at: float = 0.0,
    ) -> CheckpointInfo:
        """Checkpoint ``agent``'s online weights (atomically per file pair).

        ``saved_at`` is the simulation time of the save; callers inside a
        running scenario pass ``sim.now`` so checkpoint metadata stays a
        pure function of (scenario, seed).
        """
        weights_path, meta_path = self._paths(account, warehouse)
        weights_path.parent.mkdir(parents=True, exist_ok=True)
        params = agent.snapshot()
        # Weights first, metadata last: a crash between the two leaves new
        # weights with old metadata, which load_into rejects by hash — the
        # reverse order would leave metadata describing weights that do
        # not exist yet.
        atomic_savez(weights_path, *params)
        info = CheckpointInfo(
            account=account,
            warehouse=warehouse,
            state_dim=agent.online.input_dim,
            n_actions=agent.n_actions,
            train_steps=agent.train_steps,
            slider_position=slider_position,
            saved_at=saved_at,
            weights_sha256=hashlib.sha256(weights_path.read_bytes()).hexdigest(),
        )
        atomic_write_text(meta_path, info.to_json())
        return info

    # ------------------------------------------------------------------ load
    def info(self, account: str, warehouse: str) -> CheckpointInfo | None:
        _, meta_path = self._paths(account, warehouse)
        if not meta_path.exists():
            return None
        return CheckpointInfo.from_json(meta_path.read_text())

    def load_into(self, account: str, warehouse: str, agent: DQNAgent) -> CheckpointInfo:
        """Restore a checkpoint into ``agent`` (online and target nets)."""
        weights_path, _ = self._paths(account, warehouse)
        info = self.info(account, warehouse)
        if info is None or not weights_path.exists():
            raise ConfigurationError(
                f"no checkpoint for warehouse {warehouse!r} of account {account!r}"
            )
        if info.state_dim != agent.online.input_dim or info.n_actions != agent.n_actions:
            raise ConfigurationError(
                f"checkpoint shape ({info.state_dim}, {info.n_actions}) does not match "
                f"agent ({agent.online.input_dim}, {agent.n_actions})"
            )
        if info.weights_sha256 is not None:
            actual = hashlib.sha256(weights_path.read_bytes()).hexdigest()
            if actual != info.weights_sha256:
                raise RecoveryError(
                    f"checkpoint pair mismatch for warehouse {warehouse!r} of "
                    f"account {account!r}: weights hash {actual[:12]}… does not "
                    f"match metadata {info.weights_sha256[:12]}… (torn save or "
                    "corrupted archive)"
                )
        with np.load(weights_path) as archive:
            params = [archive[key] for key in sorted(archive.files, key=_array_index)]
        agent.restore(params)
        return info

    # ------------------------------------------------------------------ list
    def warehouses(self, account: str) -> list[str]:
        """Checkpointed warehouses of one account (isolation boundary)."""
        base = self.root / self._slug(account)
        if not base.exists():
            return []
        return sorted(p.stem for p in base.glob("*.json"))

    def delete(self, account: str, warehouse: str) -> bool:
        """Remove a checkpoint; returns whether anything existed."""
        weights_path, meta_path = self._paths(account, warehouse)
        existed = weights_path.exists() or meta_path.exists()
        weights_path.unlink(missing_ok=True)
        meta_path.unlink(missing_ok=True)
        return existed


def _array_index(key: str) -> int:
    """np.savez names positional arrays 'arr_0', 'arr_1', ... — sort by index
    so layer order survives the roundtrip past 'arr_9'."""
    return int(key.split("_")[1])
