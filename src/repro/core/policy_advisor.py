"""Scale-out policy optimization (§3 "warehouse parallelism").

Snowflake's multi-cluster warehouses offer two dynamic scale-out policies:
STANDARD (scale out as soon as anything queues) and ECONOMY (only scale out
for sustained load, keeping clusters full).  The policy is a categorical
knob, so it lives outside the smart model's numeric action lattice; this
advisor tunes it deterministically from the same inputs the smart model
uses — the slider and real-time queueing evidence:

* performance-leaning sliders always run STANDARD (queueing is the one
  thing those customers will not tolerate);
* cost-leaning sliders move to ECONOMY once queueing has stayed negligible
  for a full observation streak, and snap back to STANDARD the moment real
  queueing appears (self-correction, same spirit as §4.4);
* single-cluster warehouses are left alone — the policy only matters when
  scale-out can happen.

Policy flips re-provision nothing (no cache loss), but a dwell time avoids
oscillation at the decision boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.monitoring import RealTimeFeedback
from repro.core.sliders import SliderParams, SliderPosition
from repro.durability.codec import require_keys
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import ScalingPolicy

#: Queue evidence thresholds (seconds of mean queueing over the lookback).
QUIET_QUEUE_SECONDS = 0.2
NOISY_QUEUE_SECONDS = 1.0
#: Consecutive quiet observations required before ECONOMY engages.
QUIET_STREAK_REQUIRED = 12
#: Minimum time between policy flips.
POLICY_DWELL_SECONDS = 2 * 3600.0


@dataclass
class ScalingPolicyAdvisor:
    """Recommends STANDARD/ECONOMY per decision tick."""

    params: SliderParams
    _quiet_streak: int = 0
    _last_flip: float = field(default=-1e18)

    def set_slider(self, params: SliderParams) -> None:
        self.params = params
        self._quiet_streak = 0

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {"quiet_streak": self._quiet_streak, "last_flip": self._last_flip}

    def load_state_dict(self, state: dict) -> None:
        require_keys(state, ("quiet_streak", "last_flip"), "ScalingPolicyAdvisor")
        self._quiet_streak = int(state["quiet_streak"])
        self._last_flip = float(state["last_flip"])

    def recommend(
        self, now: float, config: WarehouseConfig, feedback: RealTimeFeedback
    ) -> ScalingPolicy | None:
        """The policy to set now, or ``None`` to keep the current one."""
        if config.max_clusters <= 1:
            return None
        if self.params.position >= SliderPosition.GOOD_PERFORMANCE:
            # Performance-leaning: STANDARD, immediately and always.
            if config.scaling_policy != ScalingPolicy.STANDARD:
                return self._flip(now, ScalingPolicy.STANDARD)
            return None

        queueing = feedback.queue_length > 0 or (
            feedback.mean_queue_seconds > NOISY_QUEUE_SECONDS
        )
        quiet = (
            feedback.queue_length == 0
            and feedback.mean_queue_seconds <= QUIET_QUEUE_SECONDS
        )
        if queueing:
            self._quiet_streak = 0
            # Snap back to STANDARD regardless of dwell: queueing is the
            # failure mode ECONOMY risks, and C4 says performance first.
            if config.scaling_policy == ScalingPolicy.ECONOMY:
                return self._flip(now, ScalingPolicy.STANDARD, force=True)
            return None
        if quiet:
            self._quiet_streak += 1
        if (
            config.scaling_policy == ScalingPolicy.STANDARD
            and self._quiet_streak >= QUIET_STREAK_REQUIRED
        ):
            return self._flip(now, ScalingPolicy.ECONOMY)
        return None

    def _flip(
        self, now: float, policy: ScalingPolicy, force: bool = False
    ) -> ScalingPolicy | None:
        if not force and now - self._last_flip < POLICY_DWELL_SECONDS:
            return None
        self._last_flip = now
        self._quiet_streak = 0
        return policy
