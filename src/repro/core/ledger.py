"""The savings ledger: Algorithm 1's reporting step (lines 18-19).

The optimization loop doesn't just act — it periodically estimates the
savings its actions produced (``savings <- cm.estimateSavings(...)``) and
reports them (``report(action[], feedback[], savings)``).  The ledger is
that report stream: an append-only series of per-period savings entries the
dashboards, invoices and the onboarding-curve analysis all read from.

Keeping the ledger inside the loop (rather than recomputing savings ad hoc)
matters for value-based pricing: the invoice amount is exactly the sum of
what was reported to the customer, period by period, not a retroactive
recomputation under a later (possibly refitted) cost model.

:class:`LiveLedger` is the streaming half: it keeps an
:class:`~repro.costmodel.incremental.IncrementalReplay` warm over the
*open* report period so the projected without-Keebo cost is available on
every decision tick at O(delta) cost, instead of only once per
``report_interval`` after a full-window recompute.  At each period close
the streamed projection is reconciled against the authoritative full
estimate — in exact mode the two are bit-identical whenever the period
boundaries line up, which turns the reconciliation into a free runtime
self-check of the incremental ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.costmodel.clusters import ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.incremental import IncrementalReplay, SketchResult
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.model import SavingsEstimate
from repro.costmodel.replay import ReplayResult
from repro.durability.codec import decode_window, encode_window, require_keys
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord


@dataclass(frozen=True)
class LedgerEntry:
    """One reported period."""

    window: Window
    without_keebo_credits: float
    with_keebo_credits: float
    n_actions: int
    n_backoffs: int

    @property
    def savings_credits(self) -> float:
        return self.without_keebo_credits - self.with_keebo_credits


@dataclass
class SavingsLedger:
    """Append-only per-period savings reports for one warehouse."""

    warehouse: str
    entries: list[LedgerEntry] = field(default_factory=list)

    def report(
        self, estimate: SavingsEstimate, n_actions: int, n_backoffs: int
    ) -> LedgerEntry:
        if self.entries and estimate.window.start < self.entries[-1].window.end - 1e-9:
            raise ConfigurationError("ledger periods must not overlap")
        entry = LedgerEntry(
            window=estimate.window,
            without_keebo_credits=estimate.without_keebo_credits,
            with_keebo_credits=estimate.with_keebo_credits,
            n_actions=n_actions,
            n_backoffs=n_backoffs,
        )
        self.entries.append(entry)
        return entry

    # ----------------------------------------------------------- durability
    @staticmethod
    def encode_entry(entry: LedgerEntry) -> dict:
        return {
            "window": encode_window(entry.window),
            "without_keebo_credits": entry.without_keebo_credits,
            "with_keebo_credits": entry.with_keebo_credits,
            "n_actions": entry.n_actions,
            "n_backoffs": entry.n_backoffs,
        }

    @staticmethod
    def decode_entry(state: dict) -> LedgerEntry:
        return LedgerEntry(
            window=decode_window(state["window"]),
            without_keebo_credits=float(state["without_keebo_credits"]),
            with_keebo_credits=float(state["with_keebo_credits"]),
            n_actions=int(state["n_actions"]),
            n_backoffs=int(state["n_backoffs"]),
        )

    def state_dict(self) -> dict:
        return {
            "warehouse": self.warehouse,
            "entries": [self.encode_entry(e) for e in self.entries],
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(state, ("warehouse", "entries"), "SavingsLedger")
        self.warehouse = state["warehouse"]
        self.entries = [self.decode_entry(e) for e in state["entries"]]

    # ------------------------------------------------------------- queries
    def total_savings_credits(self, window: Window | None = None) -> float:
        return sum(
            e.savings_credits
            for e in self.entries
            if window is None or window.overlap(e.window) > 0
        )

    def total_billable_credits(self, window: Window | None = None) -> float:
        """Only positive periods are billable (no savings, no charges)."""
        return sum(
            max(e.savings_credits, 0.0)
            for e in self.entries
            if window is None or window.overlap(e.window) > 0
        )

    def series(self) -> list[tuple[float, float]]:
        """(period end, savings credits) pairs for plotting."""
        return [(e.window.end, e.savings_credits) for e in self.entries]

    @property
    def periods_reported(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class LiveReconciliation:
    """One closed period's streamed projection vs the authoritative estimate.

    ``aligned`` is True when the streamed period's boundaries matched the
    report period exactly; only then is ``divergence`` meaningful.  In
    exact mode an aligned divergence must be ``0.0`` to the bit — both
    sides replay the same rows under the same models — so any non-zero
    value is an incremental-ledger defect surfacing at runtime, not noise.
    In sketch mode ``divergence`` is the distance of the estimate from the
    ``[projected_lo, projected_hi]`` interval (0.0 when enclosed).
    """

    window: Window
    aligned: bool
    projected_credits: float
    estimated_credits: float
    divergence: float
    rows_streamed: int
    #: Sketch-mode hull; in exact mode both equal ``projected_credits``.
    projected_lo: float = 0.0
    projected_hi: float = 0.0


class LiveLedger:
    """Streaming realized-vs-projected savings for one warehouse.

    Feed completed QUERY_HISTORY rows with :meth:`ingest` (idempotent per
    query id — the open period is re-scanned every tick because rows only
    become visible at completion), read the running projection with
    :meth:`projection`/:meth:`sketch_projection`, close a period with
    :meth:`reconcile` and start the next with :meth:`roll`.
    """

    def __init__(
        self,
        warehouse: str,
        latency_model: LatencyScalingModel,
        gap_model: GapModel,
        cluster_predictor: ClusterCountPredictor,
        period: Window,
        mode: str = "exact",
        resolution: float = 60.0,
    ):
        self.warehouse = warehouse
        self.latency_model = latency_model
        self.gap_model = gap_model
        self.cluster_predictor = cluster_predictor
        self.mode = mode
        self.resolution = resolution
        self.cursor = period.start
        self.reconciliations: list[LiveReconciliation] = []
        self.unaligned_periods = 0
        self._seen: set = set()
        self.replay = self._fresh_replay(period)

    def _fresh_replay(self, period: Window) -> IncrementalReplay:
        return IncrementalReplay(
            self.latency_model,
            self.gap_model,
            self.cluster_predictor,
            period,
            mode=self.mode,
            resolution=self.resolution,
        )

    @property
    def period(self) -> Window:
        return self.replay.window

    @property
    def rows_streamed(self) -> int:
        return self.replay.n_records

    # -------------------------------------------------------------- streaming
    def ingest(self, records: list[QueryRecord], now: float) -> int:
        """Stream the period's completed rows; returns how many were new."""
        period = self.period
        fresh = 0
        for record in records:
            if record.query_id in self._seen:
                continue
            if not (period.start <= record.arrival_time < period.end):
                continue
            self.replay.observe(record)
            self._seen.add(record.query_id)
            fresh += 1
        self.cursor = max(self.cursor, now)
        return fresh

    def projection(self, config: WarehouseConfig) -> ReplayResult:
        """The running what-if for the open period (exact mode)."""
        return self.replay.result(config)

    def sketch_projection(self, config: WarehouseConfig) -> SketchResult:
        return self.replay.sketch(config)

    # ------------------------------------------------------------- period end
    def reconcile(
        self, estimate: SavingsEstimate, original: WarehouseConfig
    ) -> LiveReconciliation:
        """Close the books on one period against the authoritative estimate.

        ``original`` is the without-Keebo baseline configuration the full
        estimate replayed under (resolved at the period end, so a customer
        config change mid-period reaches both sides identically).
        """
        period = self.period
        aligned = (
            estimate.window.start == period.start
            and estimate.window.end == period.end
        )
        if self.mode == "sketch":
            sketch = self.sketch_projection(original)
            lo, hi = sketch.credits_lo, sketch.credits_hi
            projected = sketch.credits
            target = estimate.without_keebo_credits
            divergence = max(lo - target, target - hi, 0.0) if aligned else 0.0
        else:
            projected = self.projection(original).credits
            lo = hi = projected
            divergence = (
                projected - estimate.without_keebo_credits if aligned else 0.0
            )
        if not aligned:
            self.unaligned_periods += 1
        entry = LiveReconciliation(
            window=estimate.window,
            aligned=aligned,
            projected_credits=projected,
            estimated_credits=estimate.without_keebo_credits,
            divergence=divergence,
            rows_streamed=self.rows_streamed,
            projected_lo=lo,
            projected_hi=hi,
        )
        self.reconciliations.append(entry)
        return entry

    def roll(self, period: Window) -> None:
        """Open the next period with a fresh streaming replay."""
        self.replay = self._fresh_replay(period)
        self._seen = set()
        self.cursor = period.start

    # ------------------------------------------------------------- durability
    @staticmethod
    def encode_reconciliation(entry: LiveReconciliation) -> dict:
        return {
            "window": encode_window(entry.window),
            "aligned": entry.aligned,
            "projected_credits": entry.projected_credits,
            "estimated_credits": entry.estimated_credits,
            "divergence": entry.divergence,
            "rows_streamed": entry.rows_streamed,
            "projected_lo": entry.projected_lo,
            "projected_hi": entry.projected_hi,
        }

    @staticmethod
    def decode_reconciliation(state: dict) -> LiveReconciliation:
        return LiveReconciliation(
            window=decode_window(state["window"]),
            aligned=bool(state["aligned"]),
            projected_credits=float(state["projected_credits"]),
            estimated_credits=float(state["estimated_credits"]),
            divergence=float(state["divergence"]),
            rows_streamed=int(state["rows_streamed"]),
            projected_lo=float(state["projected_lo"]),
            projected_hi=float(state["projected_hi"]),
        )

    def state_dict(self) -> dict:
        """Canonical durable state (StateCodec vocabulary).

        The replay's row *contents* are deliberately not captured — restore
        re-feeds them from telemetry (which survives a control-plane crash)
        and :meth:`IncrementalReplay.verify_restored` checks count and
        checksum, mirroring how the rest of the control plane never
        duplicates telemetry into checkpoints.
        """
        return {
            "warehouse": self.warehouse,
            "mode": self.mode,
            "resolution": self.resolution,
            "cursor": self.cursor,
            "unaligned_periods": self.unaligned_periods,
            "replay": self.replay.state_dict(),
            "reconciliations": [
                self.encode_reconciliation(e) for e in self.reconciliations
            ],
        }

    def load_state_dict(self, state: dict, records: list[QueryRecord]) -> None:
        """Restore from a checkpoint plus the telemetry rows to re-feed.

        ``records`` is the period's QUERY_HISTORY; only rows that were
        visible at the checkpoint (completed by ``cursor``) are replayed,
        and the restored ledger must match the captured row count and
        id-checksum byte for byte or a ``RecoveryError`` surfaces.
        """
        require_keys(
            state,
            (
                "warehouse",
                "mode",
                "resolution",
                "cursor",
                "unaligned_periods",
                "replay",
                "reconciliations",
            ),
            "LiveLedger",
        )
        self.warehouse = state["warehouse"]
        self.mode = state["mode"]
        self.resolution = float(state["resolution"])
        self.cursor = float(state["cursor"])
        self.unaligned_periods = int(state["unaligned_periods"])
        self.reconciliations = [
            self.decode_reconciliation(e) for e in state["reconciliations"]
        ]
        period = decode_window(state["replay"]["window"])
        self.replay = self._fresh_replay(period)
        self.replay.load_state_dict(state["replay"])
        self._seen = set()
        for record in records:
            if record.query_id in self._seen:
                continue
            if not (period.start <= record.arrival_time < period.end):
                continue
            if record.end_time > self.cursor:
                continue  # not yet visible when the checkpoint was taken
            self.replay.observe(record)
            self._seen.add(record.query_id)
        self.replay.verify_restored()


def fleet_projection(
    ledgers: list[LiveLedger],
    config_for: Callable[[LiveLedger], WarehouseConfig],
) -> dict:
    """Roll open-period projections up across a fleet of live ledgers.

    Sketch-mode ledgers contribute their bounded-error interval; exact
    ledgers contribute a degenerate one.  ``config_for`` maps a ledger to
    the baseline configuration to project under (typically the customer's
    original).  The rollup is what the fleet store/watchtower ingest:
    guaranteed lo/hi bounds on the fleet's projected without-Keebo spend.
    """
    lo = hi = 0.0
    rows = 0
    per_warehouse = {}
    for ledger in ledgers:
        config = config_for(ledger)
        if ledger.mode == "sketch":
            sketch = ledger.sketch_projection(config)
            wh_lo, wh_hi = sketch.credits_lo, sketch.credits_hi
        else:
            credits = ledger.projection(config).credits
            wh_lo = wh_hi = credits
        lo += wh_lo
        hi += wh_hi
        rows += ledger.rows_streamed
        per_warehouse[ledger.warehouse] = {
            "credits_lo": wh_lo,
            "credits_hi": wh_hi,
            "rows": ledger.rows_streamed,
        }
    return {
        "credits_lo": lo,
        "credits_hi": hi,
        "rows": rows,
        "n_warehouses": len(ledgers),
        "warehouses": per_warehouse,
    }
