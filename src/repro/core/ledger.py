"""The savings ledger: Algorithm 1's reporting step (lines 18-19).

The optimization loop doesn't just act — it periodically estimates the
savings its actions produced (``savings <- cm.estimateSavings(...)``) and
reports them (``report(action[], feedback[], savings)``).  The ledger is
that report stream: an append-only series of per-period savings entries the
dashboards, invoices and the onboarding-curve analysis all read from.

Keeping the ledger inside the loop (rather than recomputing savings ad hoc)
matters for value-based pricing: the invoice amount is exactly the sum of
what was reported to the customer, period by period, not a retroactive
recomputation under a later (possibly refitted) cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.costmodel.model import SavingsEstimate
from repro.durability.codec import decode_window, encode_window, require_keys


@dataclass(frozen=True)
class LedgerEntry:
    """One reported period."""

    window: Window
    without_keebo_credits: float
    with_keebo_credits: float
    n_actions: int
    n_backoffs: int

    @property
    def savings_credits(self) -> float:
        return self.without_keebo_credits - self.with_keebo_credits


@dataclass
class SavingsLedger:
    """Append-only per-period savings reports for one warehouse."""

    warehouse: str
    entries: list[LedgerEntry] = field(default_factory=list)

    def report(
        self, estimate: SavingsEstimate, n_actions: int, n_backoffs: int
    ) -> LedgerEntry:
        if self.entries and estimate.window.start < self.entries[-1].window.end - 1e-9:
            raise ConfigurationError("ledger periods must not overlap")
        entry = LedgerEntry(
            window=estimate.window,
            without_keebo_credits=estimate.without_keebo_credits,
            with_keebo_credits=estimate.with_keebo_credits,
            n_actions=n_actions,
            n_backoffs=n_backoffs,
        )
        self.entries.append(entry)
        return entry

    # ----------------------------------------------------------- durability
    @staticmethod
    def encode_entry(entry: LedgerEntry) -> dict:
        return {
            "window": encode_window(entry.window),
            "without_keebo_credits": entry.without_keebo_credits,
            "with_keebo_credits": entry.with_keebo_credits,
            "n_actions": entry.n_actions,
            "n_backoffs": entry.n_backoffs,
        }

    @staticmethod
    def decode_entry(state: dict) -> LedgerEntry:
        return LedgerEntry(
            window=decode_window(state["window"]),
            without_keebo_credits=float(state["without_keebo_credits"]),
            with_keebo_credits=float(state["with_keebo_credits"]),
            n_actions=int(state["n_actions"]),
            n_backoffs=int(state["n_backoffs"]),
        )

    def state_dict(self) -> dict:
        return {
            "warehouse": self.warehouse,
            "entries": [self.encode_entry(e) for e in self.entries],
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(state, ("warehouse", "entries"), "SavingsLedger")
        self.warehouse = state["warehouse"]
        self.entries = [self.decode_entry(e) for e in state["entries"]]

    # ------------------------------------------------------------- queries
    def total_savings_credits(self, window: Window | None = None) -> float:
        return sum(
            e.savings_credits
            for e in self.entries
            if window is None or window.overlap(e.window) > 0
        )

    def total_billable_credits(self, window: Window | None = None) -> float:
        """Only positive periods are billable (no savings, no charges)."""
        return sum(
            max(e.savings_credits, 0.0)
            for e in self.entries
            if window is None or window.overlap(e.window) > 0
        )

    def series(self) -> list[tuple[float, float]]:
        """(period end, savings credits) pairs for plotting."""
        return [(e.window.end, e.savings_credits) for e in self.entries]

    @property
    def periods_reported(self) -> int:
        return len(self.entries)
