"""The smart model (§4.3): the per-warehouse decision maker.

At every decision tick the smart model combines the four inputs the paper
enumerates:

1. **historical knowledge** — the trained DQN's Q-values over the joint
   action space;
2. **the warehouse cost model** — a guardrail: before committing to the
   best-Q action, the model what-ifs its predicted latency factor over the
   recent workload and skips candidates that exceed the slider's ceiling
   (C4: never prioritize cost over performance beyond what the customer
   allowed);
3. **customer constraints and the slider** — non-compliant actions are
   masked before selection ("the smart models never take actions that
   violate the customer constraints"), and active resource floors are
   enforced unconditionally;
4. **real-time feedback** — on degradation or a load spike the model backs
   off to a safe configuration (a step back toward the customer's original
   settings) and holds during a cooldown; on an external change it asks the
   optimizer to revert and pause (§4.4).

Because the slider only shifts guardrails, penalties and masks, moving it
re-calibrates behaviour without retraining — exactly the paper's
"re-calibrate its decisions automatically" property.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.common.simtime import HOUR, Window
from repro.durability.codec import require_keys
from repro.obs.provenance import CandidateEvaluation, DecisionContext
from repro.learning.actions import ActionSpace
from repro.core.constraints import ConstraintSet
from repro.core.monitoring import RealTimeFeedback
from repro.core.sliders import SliderParams
from repro.costmodel.model import WarehouseCostModel
from repro.learning.agent import DQNAgent
from repro.learning.features import FeatureExtractor, interval_windows
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize

#: How many top-Q candidates the cost-model guardrail will consider before
#: falling back to holding the current configuration.
GUARDRAIL_CANDIDATES = 3
#: Window of recent history used for guardrail what-ifs.
GUARDRAIL_LOOKBACK = 2 * HOUR
#: Hold time after a back-off before learned actions resume.
BACKOFF_COOLDOWN = 1800.0
#: Minimum dwell between *structural* changes (size / cluster bounds).
#: Resizes drop every cluster's cache, so thrashing sizes every decision
#: interval destroys exactly the cache warmth KWO is trying to preserve.
#: Auto-suspend retuning is exempt — it drops nothing.
STRUCTURAL_DWELL = 1800.0
#: Minimum queries in the monitor's lookback before a structural change is
#: considered.  During idle periods the what-if replay sees no workload, so
#: every resize looks free — acting on that evidence vacuum is how an
#: optimizer drifts to the wrong size overnight.  (Idle time is also exactly
#: when resizing buys nothing: a suspended warehouse costs 0 at any size.)
MIN_ACTIVITY_FOR_STRUCTURAL = 5


class DecisionKind(enum.Enum):
    LEARNED = "learned"  # chosen by the DQN and cleared by guardrails
    CONSTRAINT_FLOOR = "constraint_floor"  # forced by an active rule
    BACKOFF = "backoff"  # self-correction on degradation/spike
    HOLD = "hold"  # cooldown or no admissible improvement
    EXTERNAL_CONFLICT = "external_conflict"  # revert + pause requested
    SAFE_MODE = "safe_mode"  # degraded operation: frozen at original config


@dataclass(frozen=True)
class Decision:
    """One decision tick's outcome.

    ``reason_code`` is the machine-readable variant of ``reason``: a stable
    dotted identifier (``learned.apply``, ``hold.cooldown``,
    ``decision_error.TelemetryError``, ...) that provenance records, counters
    and the fleet store key on, while ``reason`` stays free-form prose.
    """

    kind: DecisionKind
    target: WarehouseConfig
    reason: str
    action_index: int | None = None
    q_value: float | None = None
    reason_code: str = ""

    @property
    def typed_reason(self) -> str:
        """The reason code, falling back to the decision kind."""
        return self.reason_code or self.kind.value


class SmartModel:
    """Decision policy for one warehouse."""

    def __init__(
        self,
        client: CloudWarehouseClient,
        warehouse: str,
        agent: DQNAgent,
        action_space: ActionSpace,
        features: FeatureExtractor,
        cost_model: WarehouseCostModel,
        constraints: ConstraintSet,
        params: SliderParams,
        decision_interval: float = 600.0,
    ):
        self.client = client
        self.warehouse = warehouse
        self.agent = agent
        self.action_space = action_space
        self.features = features
        self.cost_model = cost_model
        self.constraints = constraints
        self.params = params
        self.decision_interval = decision_interval
        self.original = action_space.original
        self._cooldown_until = -1e18
        self._last_structural_change = -1e18
        self._confidence_anchor: float | None = None
        self._confidence_tau: float = 0.0
        self.guardrail_vetoes = 0
        #: What the model evaluated during the most recent ``next_action``
        #: call — candidate what-ifs and the chosen target's predicted
        #: cost rate.  Read by the optimizer's provenance log.
        self.last_context = DecisionContext()

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {
            "cooldown_until": self._cooldown_until,
            "last_structural_change": self._last_structural_change,
            "confidence_anchor": self._confidence_anchor,
            "confidence_tau": self._confidence_tau,
            "guardrail_vetoes": self.guardrail_vetoes,
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state,
            (
                "cooldown_until",
                "last_structural_change",
                "confidence_anchor",
                "confidence_tau",
                "guardrail_vetoes",
            ),
            "SmartModel",
        )
        self._cooldown_until = float(state["cooldown_until"])
        self._last_structural_change = float(state["last_structural_change"])
        anchor = state["confidence_anchor"]
        self._confidence_anchor = None if anchor is None else float(anchor)
        self._confidence_tau = float(state["confidence_tau"])
        self.guardrail_vetoes = int(state["guardrail_vetoes"])

    # ----------------------------------------------------------- slider swap
    def set_slider(self, params: SliderParams) -> None:
        """Re-calibrate without retraining (§4.3)."""
        self.params = params

    # ------------------------------------------------------- confidence ramp
    def set_confidence_ramp(self, anchor_time: float, tau_seconds: float) -> None:
        """Unlock aggressiveness gradually after onboarding.

        The paper reports customers reach 50/70/95% of their eventual
        savings after 20/43/83 hours — models "constantly learn and improve
        with more usage".  We encode that trust ramp explicitly: confidence
        ``c = 1 - exp(-t/τ)`` grows with enabled time, and the admissible
        action set widens with it (the suspend floor relaxes from the most
        conservative choice down to the slider's floor; the permitted
        downsizing depth grows from zero to the slider's depth).  τ = 0
        disables the ramp (full aggressiveness immediately).
        """
        self._confidence_anchor = anchor_time
        self._confidence_tau = tau_seconds

    def confidence(self, now: float) -> float:
        if self._confidence_anchor is None or self._confidence_tau <= 0:
            return 1.0
        elapsed = max(0.0, now - self._confidence_anchor)
        raw = 1.0 - float(np.exp(-elapsed / self._confidence_tau))
        # Normalize so full aggressiveness is actually reached (the raw
        # exponential only approaches 1 asymptotically, which would leave
        # the most aggressive actions masked forever).
        return min(1.0, raw / 0.95)

    # ------------------------------------------------------------- decisions
    def next_action(self, now: float, feedback: RealTimeFeedback) -> Decision:
        self.last_context = DecisionContext()
        current = self.client.current_config(self.warehouse)

        if feedback.external_change:
            return Decision(
                DecisionKind.EXTERNAL_CONFLICT,
                current,
                "external configuration change detected",
                reason_code="external_conflict.detected",
            )

        # Mandatory resource floors from active rules apply before anything.
        floored = self.constraints.enforce_floor(now, current)
        if floored != current:
            return Decision(
                DecisionKind.CONSTRAINT_FLOOR,
                floored,
                "active rule requires resources",
                reason_code="constraint_floor.active_rule",
            )

        if feedback.needs_backoff(self.params) or feedback.spike_detected(self.params):
            target = self._safe_config(now, current)
            self._cooldown_until = now + BACKOFF_COOLDOWN
            if self._is_structural(current, target):
                self._last_structural_change = now
            degradation = feedback.needs_backoff(self.params)
            cause = "performance degradation" if degradation else "arrival spike"
            return Decision(
                DecisionKind.BACKOFF,
                target,
                f"self-correct: {cause}",
                reason_code=(
                    "backoff.degradation" if degradation else "backoff.spike"
                ),
            )

        if now < self._cooldown_until:
            return Decision(
                DecisionKind.HOLD,
                current,
                "cooldown after back-off",
                reason_code="hold.cooldown",
            )

        return self._learned_decision(now, current, feedback)

    @staticmethod
    def _is_structural(current: WarehouseConfig, target: WarehouseConfig) -> bool:
        """Does the change re-provision servers (and thus drop caches)?"""
        return (
            target.size != current.size
            or target.max_clusters != current.max_clusters
            or target.min_clusters != current.min_clusters
        )

    def _learned_decision(
        self, now: float, current: WarehouseConfig, feedback: RealTimeFeedback
    ) -> Decision:
        context = self.last_context
        state = self._state(now)
        mask = self._admissible_mask(now, current)
        context.admissible_actions = int(mask.sum())
        if not mask.any():
            return Decision(
                DecisionKind.HOLD,
                current,
                "no admissible action",
                reason_code="hold.no_admissible",
            )
        q = self.agent.q_values(state)
        order = np.argsort(np.where(mask, q, -np.inf))[::-1]
        candidates = [int(i) for i in order[:GUARDRAIL_CANDIDATES] if mask[i]]
        dwelling = now - self._last_structural_change < STRUCTURAL_DWELL
        quiet = feedback.recent_queries < MIN_ACTIVITY_FOR_STRUCTURAL
        pressure = feedback.queue_length > 0 or feedback.latency_ratio > 1.15
        guard = self._guardrail_context(now, current)
        window_hours = guard["window"].duration / HOUR
        base_rate = guard["base"].credits / window_hours if window_hours > 0 else None
        decision: Decision | None = None
        for idx in candidates:
            action = self.action_space.actions[idx]
            target = self.action_space.apply(current, action)
            if decision is not None:
                context.candidates.append(
                    CandidateEvaluation(idx, action.describe(), float(q[idx]), "not_reached")
                )
                continue
            if target == current:
                context.candidates.append(
                    CandidateEvaluation(
                        idx, action.describe(), float(q[idx]), "chosen",
                        predicted_credits_per_hour=base_rate,
                        predicted_avg_latency=guard["base"].avg_latency,
                    )
                )
                context.predicted_credits_per_hour = base_rate
                context.predicted_avg_latency = guard["base"].avg_latency
                decision = Decision(
                    DecisionKind.LEARNED, current, "best action keeps settings",
                    action_index=idx, q_value=float(q[idx]),
                    reason_code="learned.keep",
                )
                continue
            structural = self._is_structural(current, target)
            if structural and (dwelling or quiet):
                # Too soon, or no workload evidence to judge by.
                context.candidates.append(
                    CandidateEvaluation(
                        idx, action.describe(), float(q[idx]),
                        "dwell" if dwelling else "quiet",
                    )
                )
                continue
            passes, estimate = self._guardrail_verdict(guard, target, pressure)
            rate = estimate.credits / window_hours if window_hours > 0 else None
            if passes:
                if structural:
                    self._last_structural_change = now
                context.candidates.append(
                    CandidateEvaluation(
                        idx, action.describe(), float(q[idx]), "chosen",
                        predicted_credits_per_hour=rate,
                        predicted_avg_latency=estimate.avg_latency,
                    )
                )
                context.predicted_credits_per_hour = rate
                context.predicted_avg_latency = estimate.avg_latency
                decision = Decision(
                    DecisionKind.LEARNED,
                    target,
                    action.describe(),
                    action_index=idx,
                    q_value=float(q[idx]),
                    reason_code="learned.apply",
                )
                continue
            context.candidates.append(
                CandidateEvaluation(
                    idx, action.describe(), float(q[idx]), "vetoed",
                    predicted_credits_per_hour=rate,
                    predicted_avg_latency=estimate.avg_latency,
                )
            )
            self.guardrail_vetoes += 1
        if decision is not None:
            return decision
        # Holding keeps the current configuration, whose what-if is the
        # already-computed base replay.
        context.predicted_credits_per_hour = base_rate
        context.predicted_avg_latency = guard["base"].avg_latency
        return Decision(
            DecisionKind.HOLD,
            current,
            "all candidates vetoed by cost model",
            reason_code="hold.all_vetoed",
        )

    # ------------------------------------------------------------- internals
    def _state(self, now: float) -> np.ndarray:
        recent_w, previous_w = interval_windows(now, self.decision_interval)
        recent = self.client.query_history(self.warehouse, recent_w)
        previous = self.client.query_history(self.warehouse, previous_w)
        info = self.client.describe_warehouse(self.warehouse)
        return self.features.extract(now, recent, previous, info)

    def _admissible_mask(
        self, now: float, current: WarehouseConfig, confidence: float | None = None
    ) -> np.ndarray:
        """Constraints ∧ slider policy (suspend floor, downsize depth),
        scaled back by the onboarding confidence ramp.

        ``confidence`` overrides the ramp — offline training passes 1.0 so
        the agent learns over the *eventual* action space (episode
        timestamps predate the ramp anchor, so without the override every
        training step would see the fully-locked day-zero mask and the DQN
        would never explore the actions it later becomes allowed to take).
        """
        mask = self.constraints.action_mask(now, current, self.action_space)
        c = self.confidence(now) if confidence is None else confidence
        # The suspend floor relaxes geometrically from the customer's own
        # setting down to the slider's floor as confidence grows: early on
        # KWO only trims the obvious idle fat; the aggressive 60 s suspends
        # that risk cold caches are earned, not assumed.
        max_suspend = max(a.suspend_seconds for a in self.action_space.actions)
        anchor = max(self.original.auto_suspend_seconds, max_suspend)
        if self.original.auto_suspend_seconds <= 0:  # "never suspend" customer
            anchor = 4 * max_suspend
        floor = max(self.params.min_auto_suspend, 1.0)
        suspend_floor = floor * (anchor / floor) ** (1.0 - c)
        downsize_depth = int(c * self.params.max_downsize_steps)
        size_floor = self.original.size.step(-downsize_depth)
        size_ceiling = self.original.size.step(self.params.max_upsize_steps)
        for i, action in enumerate(self.action_space.actions):
            if not mask[i]:
                continue
            if not action.keeps_suspend and action.suspend_seconds < suspend_floor - 1e-9:
                mask[i] = False
                continue
            target = self.action_space.apply(current, action)
            if not size_floor <= target.size <= size_ceiling:
                mask[i] = False
        if not mask.any():
            # A constraint floor can be unreachable in one step (e.g. a rule
            # demanding X-Large while the warehouse sits at Small).  In the
            # live loop enforce_floor() jumps the config before this mask is
            # consulted; during offline training we simply hold.
            mask[self.action_space.noop_index] = True
        return mask

    def _guardrail_context(self, now: float, current: WarehouseConfig) -> dict:
        """Replay the recent window under the current *and* the customer's
        original configuration once per tick (candidates reuse both)."""
        window = Window(max(0.0, now - GUARDRAIL_LOOKBACK), now)
        base = self.cost_model.estimate_cost(window, current)
        if self.original == current:
            original = base
        else:
            original = self.cost_model.estimate_cost(window, self.original)
        return {"window": window, "current": current, "base": base, "original": original}

    def _passes_guardrail(
        self, guard: dict, target: WarehouseConfig, pressure: bool
    ) -> bool:
        return self._guardrail_verdict(guard, target, pressure)[0]

    def _guardrail_verdict(
        self, guard: dict, target: WarehouseConfig, pressure: bool
    ):
        """Cost-model veto: reject actions predicted to slow queries beyond
        the slider's ceiling, or to raise cost beyond the slider's cost
        tolerance.  This is C4's safety net against a mistrained Q-function:
        whatever the agent believes, an action must look good to the
        what-if replay before it is applied.  Returns ``(passes, estimate)``
        so provenance can record the what-if that justified the verdict.

        Latency is judged against the *original* configuration's replay, not
        the current one.  Judging against the current config creates a
        ratchet: once the warehouse drifts above the customer's size, every
        downsize looks like a "slowdown" and is vetoed forever, even though
        it merely returns to the performance the customer provisioned for.

        ``pressure`` reports live performance stress: without it, upsizing
        (which can only cost money) needs a predicted saving to be worth it.
        """
        candidate = self.cost_model.estimate_cost(guard["window"], target)
        base = guard["base"]
        original = guard["original"]
        reference_latency = max(original.avg_latency, 1e-9)
        latency_factor = (
            candidate.avg_latency / reference_latency if original.avg_latency > 0 else 1.0
        )
        if latency_factor > self.params.max_latency_factor + 1e-9:
            return False, candidate
        credits_delta = candidate.credits - base.credits
        slows_vs_base = candidate.avg_latency > base.avg_latency + 1e-9
        if slows_vs_base and credits_delta >= 0:
            return False, candidate
        current = guard["current"]
        # Upsizing costs money; it needs either live performance pressure, a
        # predicted saving, or a slider so performance-leaning (tolerance
        # >= 0.5, i.e. Best Performance) that speed is worth buying outright.
        speed_buyer = self.params.cost_increase_tolerance >= 0.5
        if target.size > current.size and not pressure and not speed_buyer and credits_delta >= 0:
            return False, candidate
        allowed_increase = self.params.cost_increase_tolerance * max(base.credits, 1e-6)
        if credits_delta > allowed_increase + 1e-9:
            return False, candidate
        return True, candidate

    def _safe_config(self, now: float, current: WarehouseConfig) -> WarehouseConfig:
        """The back-off target: one step toward the original configuration,
        with suspension relaxed so caches stop churning."""
        size = current.size
        if size < self.original.size:
            size = WarehouseSize(size.value + 1)
        max_clusters = min(self.original.max_clusters, current.max_clusters + 1)
        safe = current.with_changes(
            size=size,
            max_clusters=max_clusters,
            min_clusters=min(current.min_clusters, max_clusters),
            auto_suspend_seconds=max(
                current.auto_suspend_seconds, self.original.auto_suspend_seconds
            ),
        )
        return self.constraints.enforce_floor(now, safe)
