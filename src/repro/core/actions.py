"""Compatibility shim: the action vocabulary moved to ``repro.learning.actions``.

The joint action space is shared vocabulary between the learning layer
(env, baselines) and the control loop (constraints, optimizer, smart
model).  It originally lived here in ``repro.core``, which put a
``learning -> core`` import under a ``core -> learning`` one — a layering
cycle the analyzer (R012, docs/ANALYSIS.md) rejects.  The definitions now
live one layer down in :mod:`repro.learning.actions`; this module re-exports
them so existing ``repro.core.actions`` imports keep working (core may
import learning — downward — freely).
"""

from repro.learning.actions import (
    CLUSTER_DELTAS,
    KEEP_SUSPEND,
    RESIZE_DELTAS,
    SUSPEND_CHOICES,
    Action,
    ActionSpace,
)

__all__ = [
    "Action",
    "ActionSpace",
    "CLUSTER_DELTAS",
    "KEEP_SUSPEND",
    "RESIZE_DELTAS",
    "SUSPEND_CHOICES",
]
