"""The actuator (§4.5): translates decided actions into vendor API calls.

The actuator is the only KWO component that issues writes against the CDW.
It keeps a full log of applied actions (for dashboards, §4.1), knows how to
*revert* to the customer's original configuration (used on external-change
conflicts and back-offs), and tells the monitor what configuration it
expects so external changes are detectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import WarehouseError
from repro.core.monitoring import Monitor
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig


@dataclass(frozen=True)
class AppliedAction:
    """One entry of the actuator's action log."""

    time: float
    warehouse: str
    from_config: WarehouseConfig
    to_config: WarehouseConfig
    reason: str
    succeeded: bool
    error: str = ""

    @property
    def changed(self) -> bool:
        return self.from_config != self.to_config


class Actuator:
    """Applies target configurations through the vendor API."""

    def __init__(self, client: CloudWarehouseClient, warehouse: str, monitor: Monitor):
        self.client = client
        self.warehouse = warehouse
        self.monitor = monitor
        self.log: list[AppliedAction] = []
        self.errors = 0

    def apply(self, target: WarehouseConfig, reason: str) -> AppliedAction:
        """Move the warehouse to ``target``; no-ops are logged but free."""
        now = self.client.now
        current = self.client.current_config(self.warehouse)
        if target == current:
            entry = AppliedAction(now, self.warehouse, current, current, reason, True)
            self.log.append(entry)
            self.monitor.set_expected_config(current)
            return entry
        try:
            self.client.alter_warehouse(
                self.warehouse,
                size=target.size,
                auto_suspend_seconds=target.auto_suspend_seconds,
                min_clusters=target.min_clusters,
                max_clusters=target.max_clusters,
                scaling_policy=target.scaling_policy,
            )
            entry = AppliedAction(now, self.warehouse, current, target, reason, True)
        except WarehouseError as exc:
            # Report and keep going (§4.5: "reports any errors it encounters").
            self.errors += 1
            entry = AppliedAction(
                now, self.warehouse, current, current, reason, False, error=str(exc)
            )
        self.log.append(entry)
        self.monitor.set_expected_config(self.client.current_config(self.warehouse))
        return entry

    def revert_to(self, config: WarehouseConfig, reason: str) -> AppliedAction:
        """Restore a previous configuration (self-correction / conflicts)."""
        return self.apply(config, reason=f"revert: {reason}")

    @property
    def last_applied(self) -> AppliedAction | None:
        return self.log[-1] if self.log else None

    def actions_taken(self) -> list[AppliedAction]:
        """Only the entries that actually changed the warehouse."""
        return [a for a in self.log if a.changed and a.succeeded]
