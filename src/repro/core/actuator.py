"""The actuator (§4.5): translates decided actions into vendor API calls.

The actuator is the only KWO component that issues writes against the CDW.
It keeps a full log of applied actions (for dashboards, §4.1), knows how to
*revert* to the customer's original configuration (used on external-change
conflicts and back-offs), and tells the monitor what configuration it
expects so external changes are detectable.

Hardened against vendor flakiness (docs/ROBUSTNESS.md):

* **Bounded retries** — a failed write schedules a retry on the simulation
  event loop with deterministic exponential backoff plus seeded jitter,
  up to :attr:`RetryPolicy.max_attempts`.  A newer ``apply`` supersedes
  any pending retry (the retry carries a generation number and aborts
  silently when stale).
* **Circuit breaker** — after ``failure_threshold`` consecutive write
  failures the per-warehouse breaker opens: writes are skipped (logged as
  failed entries) until a cool-down elapses, then one half-open probe is
  allowed through; its outcome closes or re-opens the breaker.
* **Read-back verification** — after every attempt the actuator reads the
  live configuration back and reconciles ``monitor.set_expected_config``
  with what *actually* happened, so partial writes and ambiguous timeouts
  (the write landed, the response didn't) never desynchronise the
  external-change detector.  Both the pre-write read and the read-back are
  guarded: a failing read is recorded on the log entry, never raised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, WarehouseError
from repro.common.rng import fallback_rng
from repro.core.monitoring import Monitor
from repro.durability.codec import decode_config, encode_config, require_keys
from repro.obs import trace as obs
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff for failed actuations.

    Attempt ``k`` (1-based) failing schedules attempt ``k+1`` after
    ``base_delay_seconds * multiplier**(k-1)`` seconds, capped at
    ``max_delay_seconds`` and scaled by a seeded jitter factor in
    ``[1 - jitter_fraction, 1 + jitter_fraction]``.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 5.0
    multiplier: float = 2.0
    max_delay_seconds: float = 120.0
    jitter_fraction: float = 0.2

    def delay_seconds(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before the attempt *after* ``attempt`` (1-based)."""
        raw = min(
            self.base_delay_seconds * self.multiplier ** (attempt - 1),
            self.max_delay_seconds,
        )
        if self.jitter_fraction > 0:
            raw *= 1.0 + self.jitter_fraction * float(2.0 * rng.random() - 1.0)
        return max(0.0, raw)

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_seconds": self.base_delay_seconds,
            "multiplier": self.multiplier,
            "max_delay_seconds": self.max_delay_seconds,
            "jitter_fraction": self.jitter_fraction,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RetryPolicy":
        require_keys(
            state,
            (
                "max_attempts",
                "base_delay_seconds",
                "multiplier",
                "max_delay_seconds",
                "jitter_fraction",
            ),
            "RetryPolicy",
        )
        return cls(
            max_attempts=int(state["max_attempts"]),
            base_delay_seconds=float(state["base_delay_seconds"]),
            multiplier=float(state["multiplier"]),
            max_delay_seconds=float(state["max_delay_seconds"]),
            jitter_fraction=float(state["jitter_fraction"]),
        )


class BreakerState(enum.Enum):
    CLOSED = "closed"  # healthy: writes flow
    OPEN = "open"  # tripped: writes skipped until cool-down
    HALF_OPEN = "half_open"  # probing: one write allowed through


class CircuitBreaker:
    """Consecutive-failure breaker for one warehouse's write path."""

    def __init__(self, failure_threshold: int = 3, cooldown_seconds: float = 1800.0):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.opens = 0

    @property
    def is_open(self) -> bool:
        return self.state is BreakerState.OPEN

    def blocking(self, now: float) -> bool:
        """True while writes must be skipped (open, cool-down not elapsed)."""
        if self.state is not BreakerState.OPEN:
            return False
        return now - self.opened_at < self.cooldown_seconds

    def begin_attempt(self, now: float) -> bool:
        """Gate one write attempt; transitions OPEN→HALF_OPEN when probing."""
        if self.blocking(now):
            return False
        if self.state is BreakerState.OPEN:
            self.state = BreakerState.HALF_OPEN
        return True

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self.opened_at = None
            obs.emit("actuator.breaker.close", now)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        failed_probe = self.state is BreakerState.HALF_OPEN
        if failed_probe or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.opens += 1
            obs.emit(
                "actuator.breaker.open",
                now,
                consecutive_failures=self.consecutive_failures,
                probe_failed=failed_probe,
            )

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown_seconds,
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opened_at": self.opened_at,
            "opens": self.opens,
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state,
            (
                "failure_threshold",
                "cooldown_seconds",
                "state",
                "consecutive_failures",
                "opened_at",
                "opens",
            ),
            "CircuitBreaker",
        )
        self.failure_threshold = int(state["failure_threshold"])
        self.cooldown_seconds = float(state["cooldown_seconds"])
        self.state = BreakerState(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        opened_at = state["opened_at"]
        self.opened_at = None if opened_at is None else float(opened_at)
        self.opens = int(state["opens"])


@dataclass(frozen=True)
class AppliedAction:
    """One entry of the actuator's action log."""

    time: float
    warehouse: str
    from_config: WarehouseConfig
    to_config: WarehouseConfig
    reason: str
    succeeded: bool
    error: str = ""
    #: 1-based attempt number (retries append fresh entries).
    attempt: int = 1
    #: Non-empty when the post-apply configuration read-back failed.
    read_back_error: str = ""

    @property
    def changed(self) -> bool:
        return self.from_config != self.to_config


class Actuator:
    """Applies target configurations through the vendor API."""

    def __init__(
        self,
        client: CloudWarehouseClient,
        warehouse: str,
        monitor: Monitor,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.client = client
        self.warehouse = warehouse
        self.monitor = monitor
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self._rng = rng if rng is not None else fallback_rng()
        self.log: list[AppliedAction] = []
        self.errors = 0
        self.retries_scheduled = 0
        #: Bumped by every externally-requested apply; stale retries abort.
        self._generation = 0
        #: In-flight retry events (due time + payload), so a checkpoint can
        #: journal them and a crash teardown can cancel them.
        self._pending_retries: list[dict] = []

    def apply(self, target: WarehouseConfig, reason: str) -> AppliedAction:
        """Move the warehouse to ``target``; no-ops are logged but free."""
        self._generation += 1
        return self._apply_attempt(target, reason, attempt=1, generation=self._generation)

    def revert_to(self, config: WarehouseConfig, reason: str) -> AppliedAction:
        """Restore a previous configuration (self-correction / conflicts)."""
        return self.apply(config, reason=f"revert: {reason}")

    # ------------------------------------------------------------- internals
    def _apply_attempt(
        self, target: WarehouseConfig, reason: str, attempt: int, generation: int
    ) -> AppliedAction:
        now = self.client.now
        wh = self.warehouse.lower()
        if not self.breaker.begin_attempt(now):
            entry = AppliedAction(
                now, self.warehouse, target, target, reason, False,
                error="circuit breaker open", attempt=attempt,
            )
            self.log.append(entry)
            obs.alerts().fire(
                f"actuator.breaker.{wh}", now, severity="critical",
                warehouse=self.warehouse,
            )
            return entry
        try:
            current = self.client.current_config(self.warehouse)
        except WarehouseError as exc:
            # Satellite fix: the pre-write read itself can fail under a
            # flaky vendor; record it instead of crashing the tick.
            self.errors += 1
            entry = AppliedAction(
                now, self.warehouse, target, target, reason, False,
                error=f"config read failed: {exc}", attempt=attempt,
                read_back_error=str(exc),
            )
            self.log.append(entry)
            self._maybe_schedule_retry(target, reason, attempt, generation, now)
            return entry
        if target == current:
            entry = AppliedAction(
                now, self.warehouse, current, current, reason, True, attempt=attempt
            )
            self.log.append(entry)
            self.monitor.set_expected_config(current)
            return entry
        error = ""
        write_ok = True
        try:
            self.client.alter_warehouse(
                self.warehouse,
                size=target.size,
                auto_suspend_seconds=target.auto_suspend_seconds,
                min_clusters=target.min_clusters,
                max_clusters=target.max_clusters,
                scaling_policy=target.scaling_policy,
            )
        except WarehouseError as exc:
            # Report and keep going (§4.5: "reports any errors it encounters").
            write_ok = False
            error = str(exc)
            self.errors += 1
        # Read-back verification: reconcile with what *actually* happened —
        # a timeout whose write landed, or a partial write, must still leave
        # the monitor expecting the live configuration.
        read_back_error = ""
        actual = None
        try:
            actual = self.client.current_config(self.warehouse)
        except WarehouseError as exc:
            read_back_error = str(exc)
        if actual is not None:
            succeeded = actual == target
            reached = actual
            self.monitor.set_expected_config(actual)
        else:
            # Both the write response and the read-back are unknown: trust
            # the write's reported outcome so the expected config tracks the
            # most likely live state.
            succeeded = write_ok
            reached = target if write_ok else current
            self.monitor.set_expected_config(reached)
        if succeeded and not write_ok:
            error = f"reconciled by read-back after: {error}"
        entry = AppliedAction(
            now, self.warehouse, current, reached, reason, succeeded,
            error=error, attempt=attempt, read_back_error=read_back_error,
        )
        self.log.append(entry)
        if succeeded:
            self.breaker.record_success(now)
            obs.alerts().resolve(f"actuator.breaker.{wh}", now)
        else:
            self.breaker.record_failure(now)
            if self.breaker.is_open:
                obs.alerts().fire(
                    f"actuator.breaker.{wh}", now, severity="critical",
                    warehouse=self.warehouse,
                )
            self._maybe_schedule_retry(target, reason, attempt, generation, now)
        return entry

    def _maybe_schedule_retry(
        self,
        target: WarehouseConfig,
        reason: str,
        attempt: int,
        generation: int,
        now: float,
    ) -> None:
        if attempt >= self.retry_policy.max_attempts:
            return
        if self.breaker.blocking(now):
            return  # the breaker owns recovery pacing now
        delay = self.retry_policy.delay_seconds(attempt, self._rng)
        self.retries_scheduled += 1
        obs.emit(
            "actuator.retry_scheduled",
            now,
            warehouse=self.warehouse,
            attempt=attempt + 1,
            delay=delay,
        )
        self._schedule_retry(now + delay, target, reason, attempt + 1, generation)

    def _schedule_retry(
        self, due: float, target: WarehouseConfig, reason: str, attempt: int, generation: int
    ) -> None:
        entry = {
            "due": due,
            "target": target,
            "reason": reason,
            "attempt": attempt,
            "generation": generation,
        }
        retry = _RetryActuation(self, target, reason, attempt, generation, entry)
        entry["handle"] = self.client.account.sim.schedule(
            due, retry, label=f"actuator-retry[{self.warehouse}]"
        )
        self._pending_retries.append(entry)

    def cancel_pending_retries(self) -> None:
        """Cancel every in-flight retry event (crash teardown)."""
        for entry in self._pending_retries:
            entry["handle"].cancel()
        self._pending_retries.clear()

    def pending_retry_state(self) -> list[dict]:
        """Journal-ready view of the in-flight retries, ordered by due time."""
        return [
            {
                "due": e["due"],
                "target": encode_config(e["target"]),
                "reason": e["reason"],
                "attempt": e["attempt"],
                "generation": e["generation"],
            }
            for e in sorted(self._pending_retries, key=lambda e: e["due"])
        ]

    def restore_pending_retries(self, entries: list[dict]) -> None:
        """Re-schedule journaled retries at their original due times.

        No ``actuator.retry_scheduled`` events are re-emitted — the
        original emission is already in the pre-crash trace.
        """
        for e in entries:
            self._schedule_retry(
                float(e["due"]),
                decode_config(e["target"]),
                e["reason"],
                int(e["attempt"]),
                int(e["generation"]),
            )

    @property
    def last_applied(self) -> AppliedAction | None:
        return self.log[-1] if self.log else None

    def actions_taken(self) -> list[AppliedAction]:
        """Only the entries that actually changed the warehouse."""
        return [a for a in self.log if a.changed and a.succeeded]

    # ----------------------------------------------------------- durability
    @staticmethod
    def encode_log_entry(entry: AppliedAction) -> dict:
        return {
            "time": entry.time,
            "warehouse": entry.warehouse,
            "from_config": encode_config(entry.from_config),
            "to_config": encode_config(entry.to_config),
            "reason": entry.reason,
            "succeeded": entry.succeeded,
            "error": entry.error,
            "attempt": entry.attempt,
            "read_back_error": entry.read_back_error,
        }

    @staticmethod
    def decode_log_entry(state: dict) -> AppliedAction:
        return AppliedAction(
            time=float(state["time"]),
            warehouse=state["warehouse"],
            from_config=decode_config(state["from_config"]),
            to_config=decode_config(state["to_config"]),
            reason=state["reason"],
            succeeded=bool(state["succeeded"]),
            error=state["error"],
            attempt=int(state["attempt"]),
            read_back_error=state["read_back_error"],
        )

    def state_dict(self) -> dict:
        """Log + counters + breaker/policy state (StateCodec).

        Pending retries are exported separately (:meth:`pending_retry_state`)
        because restoring them schedules simulator events, which the service
        sequences explicitly after all components exist.
        """
        return {
            "log": [self.encode_log_entry(e) for e in self.log],
            "errors": self.errors,
            "retries_scheduled": self.retries_scheduled,
            "generation": self._generation,
            "retry_policy": self.retry_policy.state_dict(),
            "breaker": self.breaker.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state,
            ("log", "errors", "retries_scheduled", "generation", "retry_policy", "breaker"),
            "Actuator",
        )
        self.log = [self.decode_log_entry(e) for e in state["log"]]
        self.errors = int(state["errors"])
        self.retries_scheduled = int(state["retries_scheduled"])
        self._generation = int(state["generation"])
        self.retry_policy = RetryPolicy.from_state(state["retry_policy"])
        self.breaker.load_state_dict(state["breaker"])


class _RetryActuation:
    """A scheduled retry; aborts silently when a newer apply superseded it."""

    __slots__ = ("actuator", "target", "reason", "attempt", "generation", "entry")

    def __init__(
        self,
        actuator: Actuator,
        target: WarehouseConfig,
        reason: str,
        attempt: int,
        generation: int,
        entry: dict | None = None,
    ):
        self.actuator = actuator
        self.target = target
        self.reason = reason
        self.attempt = attempt
        self.generation = generation
        self.entry = entry

    def __call__(self) -> None:
        if self.entry is not None and self.entry in self.actuator._pending_retries:
            self.actuator._pending_retries.remove(self.entry)
        if self.generation != self.actuator._generation:
            return  # superseded by a newer decision
        self.actuator._apply_attempt(
            self.target, self.reason, attempt=self.attempt, generation=self.generation
        )
