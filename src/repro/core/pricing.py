"""Value-based pricing (§4.7): customers pay a share of realized savings.

The invoice for a period charges ``fee_fraction`` of the cost model's
estimated savings, floored at zero ("no savings, no charges" — C1's
zero-downside requirement).  Negative savings (the optimizer cost money)
are never billed and are surfaced explicitly so dashboards can show them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.costmodel.model import SavingsEstimate


@dataclass(frozen=True)
class Invoice:
    """One billing line for one warehouse and period."""

    warehouse: str
    window: Window
    without_keebo_credits: float
    with_keebo_credits: float
    savings_credits: float
    fee_fraction: float
    price_per_credit: float

    @property
    def billable_savings_credits(self) -> float:
        return max(self.savings_credits, 0.0)

    @property
    def fee_dollars(self) -> float:
        return self.billable_savings_credits * self.price_per_credit * self.fee_fraction

    @property
    def customer_net_benefit_dollars(self) -> float:
        """What the customer keeps after Keebo's fee."""
        return self.savings_credits * self.price_per_credit - self.fee_dollars


class ValueBasedPricing:
    """Turns savings estimates into invoices."""

    def __init__(self, fee_fraction: float = 0.3, price_per_credit: float = 3.0):
        if not 0.0 <= fee_fraction <= 1.0:
            raise ConfigurationError("fee_fraction must be within [0, 1]")
        if price_per_credit <= 0:
            raise ConfigurationError("price_per_credit must be positive")
        self.fee_fraction = fee_fraction
        self.price_per_credit = price_per_credit

    def invoice(self, warehouse: str, estimate: SavingsEstimate) -> Invoice:
        return Invoice(
            warehouse=warehouse,
            window=estimate.window,
            without_keebo_credits=estimate.without_keebo_credits,
            with_keebo_credits=estimate.with_keebo_credits,
            savings_credits=estimate.savings_credits,
            fee_fraction=self.fee_fraction,
            price_per_credit=self.price_per_credit,
        )
