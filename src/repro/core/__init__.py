"""Keebo Warehouse Optimization (KWO) — the paper's core contribution.

Action space, constraint engine, slider mapping, monitoring, actuator,
smart model, value-based pricing, and the Algorithm-1 optimization loop.
"""

from repro.learning.actions import (
    CLUSTER_DELTAS,
    RESIZE_DELTAS,
    SUSPEND_CHOICES,
    Action,
    ActionSpace,
)
from repro.core.actuator import Actuator, AppliedAction
from repro.core.consolidation import ConsolidationAdvisor, ConsolidationRecommendation
from repro.core.constraints import ConstraintRule, ConstraintSet
from repro.core.ledger import LedgerEntry, SavingsLedger
from repro.core.monitoring import Monitor, RealTimeFeedback
from repro.core.optimizer import KeeboService, OptimizerConfig, WarehouseOptimizer
from repro.core.policy_advisor import ScalingPolicyAdvisor
from repro.core.pricing import Invoice, ValueBasedPricing
from repro.core.registry import CheckpointInfo, ModelRegistry
from repro.core.sliders import SliderParams, SliderPosition, slider_params
from repro.core.smart_model import Decision, DecisionKind, SmartModel

__all__ = [
    "Action",
    "ActionSpace",
    "SUSPEND_CHOICES",
    "RESIZE_DELTAS",
    "CLUSTER_DELTAS",
    "ConstraintRule",
    "ConstraintSet",
    "SliderPosition",
    "SliderParams",
    "slider_params",
    "Monitor",
    "RealTimeFeedback",
    "Actuator",
    "AppliedAction",
    "SmartModel",
    "Decision",
    "DecisionKind",
    "ValueBasedPricing",
    "Invoice",
    "ModelRegistry",
    "ScalingPolicyAdvisor",
    "ConsolidationAdvisor",
    "ConsolidationRecommendation",
    "SavingsLedger",
    "LedgerEntry",
    "CheckpointInfo",
    "WarehouseOptimizer",
    "KeeboService",
    "OptimizerConfig",
]
