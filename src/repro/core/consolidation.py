"""Warehouse consolidation analysis (§1's optimization catalogue).

Among the warehouse-level decisions the paper lists is "consolidating
multiple warehouses into one": organizations accumulate per-team
warehouses that are each mostly idle, and paying two sets of auto-suspend
tails and 60-second minimums for workloads that would comfortably share one
warehouse is pure waste.

The advisor is a what-if application of the §5 cost model:

1. fit the parameter estimators on each candidate warehouse's telemetry;
2. for every pair, merge the two query histories on one timeline and replay
   them under candidate target configurations (each member's original
   configuration, and one size up of the larger — headroom for the combined
   load);
3. compare the merged replay's credits against the sum of the members'
   separate replays, and its counterfactual latency against each member's
   own baseline;
4. recommend the cheapest merge whose predicted per-member latency factor
   stays within the tolerance.

Like everything else in KWO, this consumes only telemetry metadata.  The
output is a recommendation (consolidation moves user traffic, so unlike
knob changes it is *not* auto-applied — it needs connection-string changes
only the customer can make).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.costmodel.clusters import ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.replay import QueryReplay, ReplayResult
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord


@dataclass(frozen=True)
class ConsolidationRecommendation:
    """One evaluated merge of two warehouses."""

    warehouses: tuple[str, str]
    target_config: WarehouseConfig
    separate_credits: float
    merged_credits: float
    #: Predicted avg-latency factor per member warehouse (vs its own config).
    latency_factors: dict[str, float]

    @property
    def savings_credits(self) -> float:
        return self.separate_credits - self.merged_credits

    @property
    def savings_fraction(self) -> float:
        if self.separate_credits <= 0:
            return 0.0
        return self.savings_credits / self.separate_credits

    @property
    def worst_latency_factor(self) -> float:
        return max(self.latency_factors.values(), default=1.0)

    def describe(self) -> str:
        a, b = self.warehouses
        return (
            f"merge {a} + {b} onto {self.target_config.describe()}: "
            f"{self.separate_credits:.1f} -> {self.merged_credits:.1f} credits "
            f"({self.savings_fraction:+.1%}), worst latency x{self.worst_latency_factor:.2f}"
        )


class ConsolidationAdvisor:
    """Finds profitable warehouse merges from telemetry."""

    def __init__(
        self,
        client: CloudWarehouseClient,
        max_latency_factor: float = 1.15,
        min_savings_fraction: float = 0.05,
    ):
        self.client = client
        self.max_latency_factor = max_latency_factor
        self.min_savings_fraction = min_savings_fraction

    # ------------------------------------------------------------- analysis
    def analyze(
        self, warehouses: list[str], window: Window
    ) -> list[ConsolidationRecommendation]:
        """Evaluate all pairs; return profitable, latency-safe merges sorted
        by savings (best first)."""
        if len(warehouses) < 2:
            raise ConfigurationError("consolidation needs at least two warehouses")
        histories = {
            name: self.client.query_history(name, window) for name in warehouses
        }
        configs = {name: self.client.current_config(name) for name in warehouses}
        recommendations = []
        for a, b in itertools.combinations(warehouses, 2):
            recommendation = self._evaluate_pair(
                a, b, histories[a], histories[b], configs[a], configs[b], window
            )
            if recommendation is None:
                continue
            if recommendation.savings_fraction < self.min_savings_fraction:
                continue
            if recommendation.worst_latency_factor > self.max_latency_factor:
                continue
            recommendations.append(recommendation)
        return sorted(recommendations, key=lambda r: -r.savings_credits)

    def _evaluate_pair(
        self,
        a: str,
        b: str,
        records_a: list[QueryRecord],
        records_b: list[QueryRecord],
        config_a: WarehouseConfig,
        config_b: WarehouseConfig,
        window: Window,
    ) -> ConsolidationRecommendation | None:
        if not records_a or not records_b:
            return None
        merged = sorted(records_a + records_b, key=lambda r: r.arrival_time)
        replay = self._fit_replay(merged, config_a if config_a.size >= config_b.size else config_b)
        separate = (
            replay.replay(records_a, config_a, window).credits
            + replay.replay(records_b, config_b, window).credits
        )
        best: ConsolidationRecommendation | None = None
        for target in self._candidate_targets(config_a, config_b):
            merged_result = replay.replay(merged, target, window)
            factors = {
                a: self._latency_factor(replay, records_a, config_a, target, window),
                b: self._latency_factor(replay, records_b, config_b, target, window),
            }
            candidate = ConsolidationRecommendation(
                warehouses=(a, b),
                target_config=target,
                separate_credits=separate,
                merged_credits=merged_result.credits,
                latency_factors=factors,
            )
            if candidate.worst_latency_factor > self.max_latency_factor:
                continue
            if best is None or candidate.merged_credits < best.merged_credits:
                best = candidate
        return best

    @staticmethod
    def _fit_replay(records: list[QueryRecord], fit_config: WarehouseConfig) -> QueryReplay:
        latency = LatencyScalingModel().fit(records)
        gaps = GapModel().fit(records)
        clusters = ClusterCountPredictor().fit(records, fit_config)
        return QueryReplay(latency, gaps, clusters)

    @staticmethod
    def _candidate_targets(
        config_a: WarehouseConfig, config_b: WarehouseConfig
    ) -> list[WarehouseConfig]:
        """Plausible homes for the merged workload."""
        bigger = config_a if config_a.size >= config_b.size else config_b
        max_clusters = max(config_a.max_clusters, config_b.max_clusters)
        suspend = min(config_a.auto_suspend_seconds, config_b.auto_suspend_seconds)
        base = bigger.with_changes(
            max_clusters=max_clusters,
            min_clusters=min(bigger.min_clusters, max_clusters),
            auto_suspend_seconds=suspend,
        )
        return [base, base.with_changes(size=base.size.step(1))]

    def _latency_factor(
        self,
        replay: QueryReplay,
        records: list[QueryRecord],
        own_config: WarehouseConfig,
        target: WarehouseConfig,
        window: Window,
    ) -> float:
        own: ReplayResult = replay.replay(records, own_config, window)
        merged: ReplayResult = replay.replay(records, target, window)
        if own.avg_latency <= 0:
            return 1.0
        return merged.avg_latency / own.avg_latency
