"""The warehouse optimizer: Algorithm 1, end to end.

:class:`WarehouseOptimizer` is the per-warehouse control loop.  Onboarding
(§4.2, "data learning") reads the warehouse's recent telemetry, fits the
cost model, reconstructs a training environment and trains the DQN smart
model offline.  The optimizer then registers a periodic controller on the
account's event loop and, every ``decision_interval`` (the paper's
``T_realtime``), gathers real-time feedback, asks the smart model for the
next action and applies it through the actuator.  Every
``retrain_interval`` (the paper's ``T``) it re-fits the models on the
accumulated telemetry (Algorithm 1 lines 13-16).

:class:`KeeboService` is the managed-product facade: one smart model per
warehouse (never shared across warehouses or customers — C5/C6), slider
updates without retraining, constraint management, savings reporting and
value-based invoicing.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.errors import (
    ConfigurationError,
    TelemetryError,
    UnknownWarehouseError,
    WarehouseError,
)
from repro.common.simtime import DAY, HOUR, Window
from repro.common.stats import percentile
from repro.obs import trace as obs
from repro.obs.provenance import DecisionContext, DecisionOutcome, ProvenanceLog
from repro.learning.actions import ActionSpace
from repro.core.actuator import Actuator
from repro.core.constraints import ConstraintSet
from repro.core.ledger import SavingsLedger
from repro.core.monitoring import Monitor
from repro.core.policy_advisor import ScalingPolicyAdvisor
from repro.core.pricing import Invoice, ValueBasedPricing
from repro.core.registry import ModelRegistry
from repro.core.sliders import SliderPosition, slider_params
from repro.core.smart_model import Decision, DecisionKind, SmartModel
from repro.costmodel.model import SavingsEstimate, WarehouseCostModel
from repro.learning.agent import DQNAgent, DQNConfig
from repro.learning.env import WarehouseEnv, reconstruct_workload
from repro.learning.features import FEATURE_DIM, FeatureExtractor, WorkloadBaseline
from repro.learning.trainer import OfflineTrainer, TrainingReport
from repro.warehouse.account import Account
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.telemetry import WarehouseEvent


@dataclass
class OptimizerConfig:
    """Knobs of the optimization loop itself (not of the warehouse)."""

    #: Paper's ``T_realtime``: seconds between decisions.
    decision_interval: float = 600.0
    #: Paper's ``T``: seconds between model refreshes.
    retrain_interval: float = 24 * HOUR
    #: Telemetry history used for onboarding training.
    training_window: float = 3 * DAY
    #: Training episodes at onboarding.
    onboarding_episodes: int = 6
    #: Fine-tuning episodes per periodic retrain (0 = refit cost model only).
    retrain_episodes: int = 1
    #: Episode length for training (shorter slices -> more resets/episodes).
    episode_length: float = 1 * DAY
    #: Seconds between savings reports to the ledger (Algorithm 1 line 18).
    report_interval: float = 4 * HOUR
    #: Time constant (seconds) of the onboarding confidence ramp: the smart
    #: model's permitted aggressiveness grows as 1 - exp(-t/τ) after
    #: onboarding (0 disables).  The default reproduces the paper's observed
    #: 50/70/95%-of-eventual-savings at roughly 20/43/83 hours.
    confidence_tau: float = 30 * HOUR
    #: SAFE_MODE trigger: seconds of telemetry staleness before the
    #: optimizer freezes at the customer's original configuration
    #: (docs/ROBUSTNESS.md).  Also entered while the actuation circuit
    #: breaker is open.
    telemetry_staleness_threshold: float = 1800.0
    agent: DQNConfig = field(default_factory=DQNConfig)

    def __post_init__(self):
        if self.decision_interval <= 0 or self.retrain_interval <= 0:
            raise ConfigurationError("intervals must be positive")
        if self.training_window < self.episode_length:
            raise ConfigurationError("training window shorter than one episode")


class WarehouseOptimizer:
    """Algorithm 1 for one warehouse."""

    def __init__(
        self,
        account: Account,
        warehouse: str,
        slider: SliderPosition = SliderPosition.BALANCED,
        constraints: ConstraintSet | None = None,
        config: OptimizerConfig | None = None,
        registry: ModelRegistry | None = None,
        client: CloudWarehouseClient | None = None,
    ):
        self.account = account
        self.warehouse = warehouse
        # An injected client (e.g. a FaultingWarehouseClient) is shared by
        # every KWO component — monitor, actuator, smart model, cost model —
        # so a single fault plan covers the whole control loop.
        self.client = (
            client if client is not None else CloudWarehouseClient(account, actor="keebo")
        )
        self.params = slider_params(slider)
        self.constraints = constraints or ConstraintSet()
        self.config = config or OptimizerConfig()
        self.registry = registry
        self.onboarded = False
        self.paused = False
        self.safe_mode = False
        self.safe_mode_entries = 0
        self._warmup_until = -1e18
        self.decisions: list[Decision] = []
        self.training_reports: list[TrainingReport] = []
        self.ledger = SavingsLedger(warehouse)
        #: Decision audit trail + savings attribution (docs/OBSERVABILITY.md).
        self.provenance = ProvenanceLog(warehouse, self.config.decision_interval)
        self._last_retrain = -1e18
        self._last_report = -1e18
        self._decisions_at_last_report = 0
        self._controller = None
        # Populated at onboarding:
        self.cost_model: WarehouseCostModel | None = None
        self.smart_model: SmartModel | None = None
        self.actuator: Actuator | None = None
        self.monitor: Monitor | None = None
        self.agent: DQNAgent | None = None
        self.baseline: WorkloadBaseline | None = None
        self.action_space: ActionSpace | None = None
        self.policy_advisor = ScalingPolicyAdvisor(self.params)

    # ------------------------------------------------------------ onboarding
    def onboard(self) -> TrainingReport:
        """Fit models on recent telemetry and start the decision loop."""
        now = self.account.sim.now
        history = Window(max(0.0, now - self.config.training_window), now)
        records = self.client.query_history(self.warehouse, history)
        if not records:
            raise ConfigurationError(
                f"cannot onboard {self.warehouse!r}: no telemetry in the last "
                f"{self.config.training_window / DAY:.1f} days"
            )
        original = self.account.telemetry.original_config(self.warehouse, before=now)
        self.action_space = ActionSpace(
            original, max_size_headroom=self.params.max_upsize_steps
        )
        self.baseline = WorkloadBaseline.fit(records)
        self.cost_model = WarehouseCostModel(self.client, self.warehouse).fit(history)
        self.monitor = Monitor(self.client, self.warehouse, self.baseline)
        self.monitor.learn_templates({r.template_hash for r in records})
        self.monitor.set_expected_config(self.client.current_config(self.warehouse))
        self.actuator = Actuator(
            self.client,
            self.warehouse,
            self.monitor,
            # One retry-jitter stream per optimized warehouse (names are
            # unique per account, so these streams cannot collide).
            rng=self.account.rngs.stream(f"keebo.actuator.{self.warehouse}"),  # repro-lint: disable=R003
        )
        self.agent = DQNAgent(
            FEATURE_DIM,
            len(self.action_space),
            self.config.agent,
            # One exploration stream per optimized warehouse (warehouse names
            # are unique per account, so these streams cannot collide).
            self.account.rngs.stream(f"keebo.agent.{self.warehouse}"),  # repro-lint: disable=R003
        )
        features = FeatureExtractor(self.baseline, original)
        self.smart_model = SmartModel(
            self.client,
            self.warehouse,
            self.agent,
            self.action_space,
            features,
            self.cost_model,
            self.constraints,
            self.params,
            self.config.decision_interval,
        )
        if self.config.confidence_tau > 0:
            self.smart_model.set_confidence_ramp(now, self.config.confidence_tau)
        restored = self._try_restore_checkpoint()
        episodes = (
            self.config.retrain_episodes if restored else self.config.onboarding_episodes
        )
        with obs.span(
            "optimizer.onboard",
            now,
            warehouse=self.warehouse,
            restored=restored,
            records=len(records),
        ):
            # A checkpointed model resumes where it left off: a quick
            # fine-tune instead of a full onboarding run.
            report = self._train(records, history, episodes)
        self._save_checkpoint()
        self.training_reports.append(report)
        self._last_retrain = now
        self._controller = self.account.sim.add_controller(
            self.config.decision_interval,
            self._tick,
            start=now + self.config.decision_interval,
            name=f"optimizer[{self.warehouse}]",
        )
        self.onboarded = True
        self._last_report = now
        self.account.telemetry.record_event(
            WarehouseEvent(now, self.warehouse, "keebo_onboarded", "keebo", {})
        )
        return report

    def _try_restore_checkpoint(self) -> bool:
        """Load a previously saved smart model, if one is compatible."""
        if self.registry is None:
            return False
        if self.registry.info(self.account.name, self.warehouse) is None:
            return False
        try:
            self.registry.load_into(self.account.name, self.warehouse, self.agent)
        except ConfigurationError:
            return False  # incompatible shapes: train fresh
        return True

    def _save_checkpoint(self) -> None:
        if self.registry is not None:
            self.registry.save(
                self.account.name,
                self.warehouse,
                self.agent,
                slider_position=int(self.params.position),
                saved_at=self.account.sim.now,
            )

    def _train(self, records, history: Window, episodes: int) -> TrainingReport:
        """Offline DRL training on the telemetry-reconstructed workload."""
        if episodes <= 0:
            return TrainingReport()
        requests = reconstruct_workload(records, self.cost_model.latency_model)
        span = obs.span(
            "optimizer.train",
            history.end,
            warehouse=self.warehouse,
            episodes=episodes,
            requests=len(requests),
        )
        original = self.action_space.original
        # Train on the most recent episode-length slice; each episode
        # re-simulates it under a different seed.
        episode_start = max(history.start, history.end - self.config.episode_length)
        env = WarehouseEnv(
            requests,
            original,
            self.baseline,
            self.action_space,
            self.params.reward_config(),
            Window(episode_start, history.end),
            decision_interval=self.config.decision_interval,
            # Full confidence during offline training: the ramp gates live
            # rollout only (see SmartModel._admissible_mask).
            mask_fn=lambda t, cfg: self.smart_model._admissible_mask(
                t, cfg, confidence=1.0
            ),
            seed=self.account.rngs.spawn_seed(f"keebo.env.{self.warehouse}"),
        )
        with span as sp:
            report = OfflineTrainer(self.agent, env).run(episodes)
            sp.set(episodes_run=len(report.episodes))
        return report

    # ------------------------------------------------------------------ loop
    def _tick(self, now: float) -> None:
        if not self.onboarded:
            return
        if self.paused:
            return
        with obs.span("optimizer.tick", now, warehouse=self.warehouse) as sp:
            # Seal every earlier decision's provenance record with the
            # realized outcome of the interval it governed.
            self._seal_provenance(now)
            if not self.safe_mode:
                if now - self._last_retrain >= self.config.retrain_interval:
                    self._retrain(now)
                if now - self._last_report >= self.config.report_interval:
                    self._report_savings(now)
            feedback = self.monitor.snapshot(now)
            degraded = self._degraded_reason(now, feedback)
            if degraded:
                decision = self._safe_mode_tick(now, degraded)
                self.decisions.append(decision)
                sp.set(decision=decision.kind.value)
                obs.counter(
                    f"repro.optimizer.decisions.{decision.kind.value}"
                ).inc(time=now)
                self._record_provenance(now, feedback, decision)
                last = self.actuator.last_applied
                if last is not None and last.time == now:
                    self.provenance.note_apply(last.succeeded, last.error)
                return
            if self.safe_mode:
                self._exit_safe_mode(now)
            if not feedback.telemetry_ok or now < self._warmup_until:
                # Dark telemetry below the SAFE_MODE threshold, or the
                # warm-up tick right after leaving SAFE_MODE: hold position
                # rather than decide on stale features.
                if feedback.telemetry_ok:
                    reason, code = "safe-mode warm-up", "hold.warmup"
                else:
                    reason, code = "telemetry unavailable", "hold.telemetry_dark"
                decision = Decision(
                    DecisionKind.HOLD, self._held_config(), reason, reason_code=code
                )
                context = None
            else:
                try:
                    decision = self.smart_model.next_action(now, feedback)
                    context = self.smart_model.last_context
                except (TelemetryError, WarehouseError) as exc:
                    decision = self._decision_error_fallback(now, exc)
                    context = None
            self.decisions.append(decision)
            sp.set(decision=decision.kind.value)
            obs.counter(f"repro.optimizer.decisions.{decision.kind.value}").inc(time=now)
            self._record_provenance(now, feedback, decision, context=context)
            self._record_alerts(now, feedback, decision)
            if decision.kind == DecisionKind.BACKOFF:
                obs.emit(
                    "optimizer.backoff",
                    now,
                    warehouse=self.warehouse,
                    reason=decision.reason,
                )
            if decision.kind == DecisionKind.EXTERNAL_CONFLICT:
                self._handle_external_conflict(now)
                return
            if decision.kind == DecisionKind.HOLD and not feedback.telemetry_ok:
                return
            try:
                current = self.client.current_config(self.warehouse)
            except WarehouseError as exc:
                obs.emit(
                    "optimizer.config_read_error",
                    now,
                    warehouse=self.warehouse,
                    error=str(exc),
                )
                return
            if decision.target != current:
                applied = self.actuator.apply(
                    decision.target, reason=f"{decision.kind.value}: {decision.reason}"
                )
                self.provenance.note_apply(applied.succeeded, applied.error)
                sp.set(applied=decision.target.describe())
            self._advise_scaling_policy(now, feedback)

    # ------------------------------------------------------------ provenance
    def _decision_error_fallback(self, now: float, exc: Exception) -> Decision:
        """A decision-path failure becomes a typed, counted HOLD.

        The exception type survives as a reason code and a per-type counter,
        and the ``__cause__`` chain is recorded — "decision error: <msg>"
        alone made vendor flakiness indistinguishable from telemetry rot.
        """
        exc_type = type(exc).__name__
        cause = exc.__cause__
        # Metric names are dotted lowercase; CamelCase class names become
        # snake_case segments (TelemetryError -> telemetry_error).
        segment = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", exc_type).lower()
        obs.counter(f"repro.optimizer.decision_errors.{segment}").inc(time=now)
        obs.emit(
            "optimizer.decision_error",
            now,
            warehouse=self.warehouse,
            error=str(exc),
            error_type=exc_type,
            cause_type=type(cause).__name__ if cause is not None else "",
            cause=str(cause) if cause is not None else "",
        )
        return Decision(
            DecisionKind.HOLD,
            self._held_config(),
            f"decision error: {exc}",
            reason_code=f"decision_error.{exc_type}",
        )

    def _record_provenance(
        self, now: float, feedback, decision: Decision, context=None
    ) -> None:
        breaker = self.actuator.breaker
        self.provenance.record(
            now,
            kind=decision.kind.value,
            reason=decision.reason,
            reason_code=decision.typed_reason,
            target=decision.target.describe(),
            feedback=feedback,
            context=context if context is not None else DecisionContext(),
            action_index=decision.action_index,
            q_value=decision.q_value,
            safe_mode=self.safe_mode,
            breaker_state=breaker.state.value,
            breaker_consecutive_failures=breaker.consecutive_failures,
            retries_scheduled=self.actuator.retries_scheduled,
        )

    def _seal_provenance(self, now: float) -> None:
        self.provenance.seal_until(now, self._realized_outcome)

    def _realized_outcome(self, window: Window) -> DecisionOutcome:
        """Ground truth for sealing: account-side billing + telemetry.

        Deliberately *not* read through ``self.client`` — extra vendor-client
        calls would be metered as KWO overhead and would consume fault-plan
        randomness, so sealing through the client would change the very run
        it observes.
        """
        meter = self.account.warehouse(self.warehouse).meter
        records = self.account.telemetry.query_history(self.warehouse, window)
        latencies = [r.total_seconds for r in records]
        return DecisionOutcome(
            credits=meter.credits_in_window(window),
            p99_latency=percentile(latencies, 99),
            n_queries=len(records),
        )

    # ---------------------------------------------------------- degraded mode
    def _held_config(self) -> WarehouseConfig:
        """Best known configuration when holding without a fresh read."""
        last = self.actuator.last_applied
        return last.to_config if last is not None else self.action_space.original

    def _degraded_reason(self, now: float, feedback) -> str:
        """Non-empty when the loop must run in SAFE_MODE this tick."""
        if (
            not feedback.telemetry_ok
            and feedback.telemetry_age_seconds >= self.config.telemetry_staleness_threshold
        ):
            return (
                f"telemetry stale for {feedback.telemetry_age_seconds:.0f}s "
                f"(threshold {self.config.telemetry_staleness_threshold:.0f}s)"
            )
        if self.actuator.breaker.blocking(now):
            return "actuation circuit breaker open"
        return ""

    def _safe_mode_tick(self, now: float, reason: str) -> Decision:
        """Degraded operation: freeze at the customer's original config."""
        original = self.action_space.original
        if not self.safe_mode:
            self.safe_mode = True
            self.safe_mode_entries += 1
            obs.counter("repro.optimizer.safe_mode_entries").inc(time=now)
            obs.emit(
                "optimizer.safe_mode.enter", now, warehouse=self.warehouse, reason=reason
            )
            obs.alerts().fire(
                f"optimizer.safe_mode.{self.warehouse.lower()}",
                now,
                severity="critical",
                warehouse=self.warehouse,
                reason=reason,
            )
            self.account.telemetry.record_event(
                WarehouseEvent(
                    now, self.warehouse, "keebo_safe_mode", "keebo", {"cause": reason}
                )
            )
            # Best-effort revert to the configuration the customer chose;
            # the actuator absorbs any further vendor failures (and its
            # half-open probes double as breaker recovery checks).
            if not self.actuator.breaker.blocking(now):
                self.actuator.apply(original, reason=f"safe mode: {reason}")
        elif not self.actuator.breaker.blocking(now):
            last = self.actuator.last_applied
            if last is None or not last.succeeded or last.to_config != original:
                self.actuator.apply(original, reason=f"safe mode: {reason}")
        return Decision(
            DecisionKind.SAFE_MODE, original, reason, reason_code="safe_mode.frozen"
        )

    def _exit_safe_mode(self, now: float) -> None:
        self.safe_mode = False
        self._warmup_until = now + self.config.decision_interval
        obs.emit("optimizer.safe_mode.exit", now, warehouse=self.warehouse)
        obs.alerts().resolve(f"optimizer.safe_mode.{self.warehouse.lower()}", now)
        try:
            # Accept the live configuration so the exit itself cannot trip
            # the external-change detector.
            self.monitor.set_expected_config(self.client.current_config(self.warehouse))
        except WarehouseError as exc:
            obs.emit(
                "optimizer.config_read_error",
                now,
                warehouse=self.warehouse,
                error=str(exc),
            )

    def _record_alerts(self, now: float, feedback, decision: Decision) -> None:
        """Track self-corrections as first-class fire/resolve alert events.

        Level-triggered on each decision tick: a backoff (or spike) alert
        stays open while consecutive ticks keep deciding it, and resolves
        on the first tick that does not — so one degradation episode is one
        fire/resolve pair in the trace, however many ticks it spanned.
        """
        alerts = obs.alerts()
        wh = self.warehouse.lower()
        if decision.kind == DecisionKind.BACKOFF:
            alerts.fire(
                f"optimizer.backoff.{wh}",
                now,
                severity="warning",
                warehouse=self.warehouse,
                reason=decision.reason,
            )
        else:
            alerts.resolve(f"optimizer.backoff.{wh}", now)
        alerts.set_state(
            f"optimizer.spike.{wh}",
            feedback.spike_detected(self.params),
            now,
            severity="info",
            warehouse=self.warehouse,
        )

    def _advise_scaling_policy(self, now: float, feedback) -> None:
        """Tune the categorical STANDARD/ECONOMY knob (outside the DQN's
        numeric action lattice; see repro.core.policy_advisor)."""
        try:
            config = self.client.current_config(self.warehouse)
        except WarehouseError:
            return  # skip the advisory pass this tick; nothing to undo
        policy = self.policy_advisor.recommend(now, config, feedback)
        if policy is None or policy == config.scaling_policy:
            return
        target = config.with_changes(scaling_policy=policy)
        if self.constraints.permits(now, config, target):
            self.actuator.apply(target, reason=f"policy advisor: {policy.value}")

    def _retrain(self, now: float) -> None:
        """Periodic refresh (Algorithm 1 lines 13-16)."""
        obs.counter("repro.optimizer.retrains").inc(time=now)
        history = Window(max(0.0, now - self.config.training_window), now)
        try:
            with obs.span("optimizer.retrain", now, warehouse=self.warehouse):
                self._refit(history)
        except (TelemetryError, WarehouseError) as exc:
            # The vendor view is dark: keep _last_retrain so the refresh is
            # retried next tick instead of slipping a whole interval.
            obs.emit(
                "optimizer.retrain_error", now, warehouse=self.warehouse, error=str(exc)
            )
            return
        self._last_retrain = now

    def _refit(self, history: Window) -> None:
        self.cost_model.fit(history)
        records = self.client.query_history(self.warehouse, history)
        if records:
            self.baseline = WorkloadBaseline.fit(records)
            self.monitor.baseline = self.baseline
            self.monitor.learn_templates({r.template_hash for r in records})
            self.smart_model.features.baseline = self.baseline
            if self.config.retrain_episodes > 0:
                self.training_reports.append(
                    self._train(records, history, self.config.retrain_episodes)
                )
                self._save_checkpoint()

    def _report_savings(self, now: float) -> None:
        """Algorithm 1 lines 18-19: estimate and report period savings."""
        period = Window(max(0.0, self._last_report), now)
        if period.duration <= 0:
            self._last_report = now
            return
        try:
            estimate = self.cost_model.estimate_savings(period)
        except (TelemetryError, WarehouseError) as exc:
            obs.emit(
                "optimizer.report_error", now, warehouse=self.warehouse, error=str(exc)
            )
            return  # retried next tick; the period simply grows
        recent = self.decisions[self._decisions_at_last_report:]
        entry = self.ledger.report(
            estimate,
            n_actions=sum(1 for d in recent if d.kind == DecisionKind.LEARNED),
            n_backoffs=sum(1 for d in recent if d.kind == DecisionKind.BACKOFF),
        )
        self.provenance.attribution.attribute(
            entry.window, entry.savings_credits, self.provenance.records
        )
        self._decisions_at_last_report = len(self.decisions)
        self._last_report = now
        obs.emit(
            "optimizer.savings_report",
            now,
            warehouse=self.warehouse,
            savings_fraction=estimate.savings_fraction,
            savings_credits=entry.savings_credits,
            window_start=entry.window.start,
            window_end=entry.window.end,
        )
        obs.gauge(f"repro.optimizer.savings_fraction.{self.warehouse.lower()}").set(
            estimate.savings_fraction, time=now
        )

    def _handle_external_conflict(self, now: float) -> None:
        """§4.4: revert our own pending changes and pause until told."""
        try:
            live = self.client.current_config(self.warehouse)
        except WarehouseError as exc:
            # Cannot even read the live config: stay unpaused and let the
            # next tick re-detect the conflict once the vendor responds.
            obs.emit(
                "optimizer.config_read_error",
                now,
                warehouse=self.warehouse,
                error=str(exc),
            )
            return
        self.monitor.set_expected_config(live)  # accept the external state
        self.paused = True
        obs.counter("repro.optimizer.external_conflicts").inc(time=now)
        obs.alerts().fire(
            f"optimizer.external_conflict.{self.warehouse.lower()}",
            now,
            severity="critical",
            warehouse=self.warehouse,
        )
        obs.emit(
            "optimizer.external_conflict",
            now,
            warehouse=self.warehouse,
            live_config=live.describe(),
        )
        self.account.telemetry.record_event(
            WarehouseEvent(
                now, self.warehouse, "keebo_paused", "keebo", {"cause": "external change"}
            )
        )

    def resume_optimizations(self) -> None:
        """Admin explicitly re-enables optimization after a conflict."""
        self.paused = False
        self.monitor.set_expected_config(self.client.current_config(self.warehouse))
        now = self.account.sim.now
        wh = self.warehouse.lower()
        alerts = obs.alerts()
        alerts.resolve(f"optimizer.external_conflict.{wh}", now)
        alerts.resolve(f"monitor.external_change.{wh}", now)

    def shutdown(self) -> None:
        if self.provenance.records:
            # Seal trailing records so the provenance export never ends on an
            # interval with no realized outcome.
            self._seal_provenance(self.account.sim.now)
        if self._controller is not None:
            self._controller.stop()

    # ------------------------------------------------------------- reporting
    def set_slider(self, slider: SliderPosition) -> None:
        self.params = slider_params(slider)
        if self.smart_model is not None:
            self.smart_model.set_slider(self.params)
        self.policy_advisor.set_slider(self.params)

    def estimate_savings(self, window: Window) -> SavingsEstimate:
        if self.cost_model is None:
            raise ConfigurationError("optimizer not onboarded")
        return self.cost_model.estimate_savings(window)

    def decision_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for d in self.decisions:
            counts[d.kind.value] = counts.get(d.kind.value, 0) + 1
        return counts


class KeeboService:
    """The managed SaaS facade over one customer account."""

    def __init__(
        self,
        account: Account,
        fee_fraction: float = 0.3,
        registry: ModelRegistry | None = None,
        client_factory: Callable[[Account], CloudWarehouseClient] | None = None,
    ):
        self.account = account
        self.pricing = ValueBasedPricing(fee_fraction, account.price_per_credit)
        self.registry = registry
        #: Optional ``account -> CloudWarehouseClient`` hook; chaos runs use
        #: it to hand every optimizer a FaultingWarehouseClient.
        self.client_factory = client_factory
        self.optimizers: dict[str, WarehouseOptimizer] = {}

    def onboard_warehouse(
        self,
        warehouse: str,
        slider: SliderPosition = SliderPosition.BALANCED,
        constraints: ConstraintSet | None = None,
        config: OptimizerConfig | None = None,
    ) -> WarehouseOptimizer:
        """Attach KWO to one warehouse (a separate smart model per warehouse)."""
        if warehouse not in self.account.warehouses:
            raise UnknownWarehouseError(warehouse)
        if warehouse in self.optimizers:
            raise ConfigurationError(f"{warehouse!r} is already being optimized")
        client = self.client_factory(self.account) if self.client_factory else None
        optimizer = WarehouseOptimizer(
            self.account,
            warehouse,
            slider,
            constraints,
            config,
            registry=self.registry,
            client=client,
        )
        optimizer.onboard()
        self.optimizers[warehouse] = optimizer
        return optimizer

    def optimizer(self, warehouse: str) -> WarehouseOptimizer:
        try:
            return self.optimizers[warehouse]
        except KeyError:
            raise UnknownWarehouseError(warehouse) from None

    def set_slider(self, warehouse: str, slider: SliderPosition) -> None:
        self.optimizer(warehouse).set_slider(slider)

    def invoice(self, warehouse: str, window: Window) -> Invoice:
        estimate = self.optimizer(warehouse).estimate_savings(window)
        return self.pricing.invoice(warehouse, estimate)

    def invoices(self, window: Window) -> list[Invoice]:
        return [self.invoice(name, window) for name in sorted(self.optimizers)]

    def shutdown(self) -> None:
        for optimizer in self.optimizers.values():
            optimizer.shutdown()
