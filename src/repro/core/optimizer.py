"""The warehouse optimizer: Algorithm 1, end to end.

:class:`WarehouseOptimizer` is the per-warehouse control loop.  Onboarding
(§4.2, "data learning") reads the warehouse's recent telemetry, fits the
cost model, reconstructs a training environment and trains the DQN smart
model offline.  The optimizer then registers a periodic controller on the
account's event loop and, every ``decision_interval`` (the paper's
``T_realtime``), gathers real-time feedback, asks the smart model for the
next action and applies it through the actuator.  Every
``retrain_interval`` (the paper's ``T``) it re-fits the models on the
accumulated telemetry (Algorithm 1 lines 13-16).

:class:`KeeboService` is the managed-product facade: one smart model per
warehouse (never shared across warehouses or customers — C5/C6), slider
updates without retraining, constraint management, savings reporting and
value-based invoicing.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import (
    ConfigurationError,
    RecoveryError,
    TelemetryError,
    UnknownWarehouseError,
    WarehouseError,
)
from repro.common.simtime import DAY, HOUR, Window
from repro.common.stats import percentile
from repro.durability import CheckpointLoad, CheckpointStore
from repro.durability.codec import decode_config, decode_window, encode_config
from repro.faults.plan import PROCESS_OPERATION, FaultKind, FaultPlan, FaultSpec
from repro.obs import trace as obs
from repro.obs.provenance import (
    AttributionLedger,
    DecisionContext,
    DecisionOutcome,
    ProvenanceLog,
)
from repro.learning.actions import ActionSpace
from repro.core.actuator import Actuator
from repro.core.constraints import ConstraintSet
from repro.core.ledger import LiveLedger, SavingsLedger
from repro.core.monitoring import Monitor
from repro.core.policy_advisor import ScalingPolicyAdvisor
from repro.core.pricing import Invoice, ValueBasedPricing
from repro.core.registry import ModelRegistry
from repro.core.sliders import SliderPosition, slider_params
from repro.core.smart_model import Decision, DecisionKind, SmartModel
from repro.costmodel.model import SavingsEstimate, WarehouseCostModel
from repro.learning.agent import DQNAgent, DQNConfig
from repro.learning.env import WarehouseEnv, reconstruct_workload
from repro.learning.features import FEATURE_DIM, FeatureExtractor, WorkloadBaseline
from repro.learning.trainer import OfflineTrainer, TrainingReport
from repro.warehouse.account import Account
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.telemetry import WarehouseEvent


@dataclass
class OptimizerConfig:
    """Knobs of the optimization loop itself (not of the warehouse)."""

    #: Paper's ``T_realtime``: seconds between decisions.
    decision_interval: float = 600.0
    #: Paper's ``T``: seconds between model refreshes.
    retrain_interval: float = 24 * HOUR
    #: Telemetry history used for onboarding training.
    training_window: float = 3 * DAY
    #: Training episodes at onboarding.
    onboarding_episodes: int = 6
    #: Fine-tuning episodes per periodic retrain (0 = refit cost model only).
    retrain_episodes: int = 1
    #: Episode length for training (shorter slices -> more resets/episodes).
    episode_length: float = 1 * DAY
    #: Seconds between savings reports to the ledger (Algorithm 1 line 18).
    report_interval: float = 4 * HOUR
    #: Time constant (seconds) of the onboarding confidence ramp: the smart
    #: model's permitted aggressiveness grows as 1 - exp(-t/τ) after
    #: onboarding (0 disables).  The default reproduces the paper's observed
    #: 50/70/95%-of-eventual-savings at roughly 20/43/83 hours.
    confidence_tau: float = 30 * HOUR
    #: SAFE_MODE trigger: seconds of telemetry staleness before the
    #: optimizer freezes at the customer's original configuration
    #: (docs/ROBUSTNESS.md).  Also entered while the actuation circuit
    #: breaker is open.
    telemetry_staleness_threshold: float = 1800.0
    #: Stream the open report period through a :class:`LiveLedger` so the
    #: projected without-Keebo cost updates on every decision tick at
    #: O(delta) cost, and every period close reconciles the streamed
    #: projection against the full estimate (docs/OBSERVABILITY.md).  Off by
    #: default: the extra obs series would perturb golden traces.
    live_ledger: bool = False
    #: "exact" (aligned reconciliations are bit-identical) or "sketch"
    #: (bounded-error interval, the fleet-rollup mode).
    live_ledger_mode: str = "exact"
    agent: DQNConfig = field(default_factory=DQNConfig)

    def __post_init__(self):
        if self.decision_interval <= 0 or self.retrain_interval <= 0:
            raise ConfigurationError("intervals must be positive")
        if self.training_window < self.episode_length:
            raise ConfigurationError("training window shorter than one episode")


def encode_decision(decision: Decision) -> dict:
    """StateCodec shape for one decision-tick outcome."""
    return {
        "kind": decision.kind.value,
        "target": encode_config(decision.target),
        "reason": decision.reason,
        "action_index": decision.action_index,
        "q_value": decision.q_value,
        "reason_code": decision.reason_code,
    }


def decode_decision(state: dict) -> Decision:
    action_index = state["action_index"]
    q_value = state["q_value"]
    return Decision(
        kind=DecisionKind(state["kind"]),
        target=decode_config(state["target"]),
        reason=state["reason"],
        action_index=None if action_index is None else int(action_index),
        q_value=None if q_value is None else float(q_value),
        reason_code=state["reason_code"],
    )


class WarehouseOptimizer:
    """Algorithm 1 for one warehouse."""

    def __init__(
        self,
        account: Account,
        warehouse: str,
        slider: SliderPosition = SliderPosition.BALANCED,
        constraints: ConstraintSet | None = None,
        config: OptimizerConfig | None = None,
        registry: ModelRegistry | None = None,
        client: CloudWarehouseClient | None = None,
    ):
        self.account = account
        self.warehouse = warehouse
        # An injected client (e.g. a FaultingWarehouseClient) is shared by
        # every KWO component — monitor, actuator, smart model, cost model —
        # so a single fault plan covers the whole control loop.
        self.client = (
            client if client is not None else CloudWarehouseClient(account, actor="keebo")
        )
        self.params = slider_params(slider)
        self.constraints = constraints or ConstraintSet()
        self.config = config or OptimizerConfig()
        self.registry = registry
        self.onboarded = False
        self.paused = False
        self.safe_mode = False
        self.safe_mode_entries = 0
        self._warmup_until = -1e18
        self.decisions: list[Decision] = []
        self.training_reports: list[TrainingReport] = []
        self.ledger = SavingsLedger(warehouse)
        #: Streaming projection over the open report period (opt-in).
        self.live_ledger: LiveLedger | None = None
        #: Decision audit trail + savings attribution (docs/OBSERVABILITY.md).
        self.provenance = ProvenanceLog(warehouse, self.config.decision_interval)
        self._last_retrain = -1e18
        self._last_report = -1e18
        self._decisions_at_last_report = 0
        self._controller = None
        # Populated at onboarding:
        self.cost_model: WarehouseCostModel | None = None
        self.smart_model: SmartModel | None = None
        self.actuator: Actuator | None = None
        self.monitor: Monitor | None = None
        self.agent: DQNAgent | None = None
        self.baseline: WorkloadBaseline | None = None
        self.action_space: ActionSpace | None = None
        self.policy_advisor = ScalingPolicyAdvisor(self.params)

    # ------------------------------------------------------------ onboarding
    def onboard(self) -> TrainingReport:
        """Fit models on recent telemetry and start the decision loop."""
        now = self.account.sim.now
        history = Window(max(0.0, now - self.config.training_window), now)
        records = self.client.query_history(self.warehouse, history)
        if not records:
            raise ConfigurationError(
                f"cannot onboard {self.warehouse!r}: no telemetry in the last "
                f"{self.config.training_window / DAY:.1f} days"
            )
        original = self.account.telemetry.original_config(self.warehouse, before=now)
        self.action_space = ActionSpace(
            original, max_size_headroom=self.params.max_upsize_steps
        )
        self.baseline = WorkloadBaseline.fit(records)
        self.cost_model = WarehouseCostModel(self.client, self.warehouse).fit(history)
        self.monitor = Monitor(self.client, self.warehouse, self.baseline)
        self.monitor.learn_templates({r.template_hash for r in records})
        self.monitor.set_expected_config(self.client.current_config(self.warehouse))
        self.actuator = Actuator(
            self.client,
            self.warehouse,
            self.monitor,
            # One retry-jitter stream per optimized warehouse (names are
            # unique per account, so these streams cannot collide).
            rng=self.account.rngs.stream(f"keebo.actuator.{self.warehouse}"),  # repro-lint: disable=R003
        )
        self.agent = DQNAgent(
            FEATURE_DIM,
            len(self.action_space),
            self.config.agent,
            # One exploration stream per optimized warehouse (warehouse names
            # are unique per account, so these streams cannot collide).
            self.account.rngs.stream(f"keebo.agent.{self.warehouse}"),  # repro-lint: disable=R003
        )
        features = FeatureExtractor(self.baseline, original)
        self.smart_model = SmartModel(
            self.client,
            self.warehouse,
            self.agent,
            self.action_space,
            features,
            self.cost_model,
            self.constraints,
            self.params,
            self.config.decision_interval,
        )
        if self.config.confidence_tau > 0:
            self.smart_model.set_confidence_ramp(now, self.config.confidence_tau)
        restored = self._try_restore_checkpoint()
        episodes = (
            self.config.retrain_episodes if restored else self.config.onboarding_episodes
        )
        with obs.span(
            "optimizer.onboard",
            now,
            warehouse=self.warehouse,
            restored=restored,
            records=len(records),
        ):
            # A checkpointed model resumes where it left off: a quick
            # fine-tune instead of a full onboarding run.
            report = self._train(records, history, episodes)
        self._save_checkpoint()
        self.training_reports.append(report)
        self._last_retrain = now
        self._controller = self.account.sim.add_controller(
            self.config.decision_interval,
            self._tick,
            start=now + self.config.decision_interval,
            name=f"optimizer[{self.warehouse}]",
        )
        self.onboarded = True
        self._last_report = now
        if self.config.live_ledger:
            self._open_live_ledger(now)
        self.account.telemetry.record_event(
            WarehouseEvent(now, self.warehouse, "keebo_onboarded", "keebo", {})
        )
        return report

    def _open_live_ledger(self, start: float) -> None:
        self.live_ledger = LiveLedger(
            self.warehouse,
            self.cost_model.latency_model,
            self.cost_model.gap_model,
            self.cost_model.cluster_predictor,
            Window(start, start + self.config.report_interval),
            mode=self.config.live_ledger_mode,
        )

    def _try_restore_checkpoint(self) -> bool:
        """Load a previously saved smart model, if one is compatible."""
        if self.registry is None:
            return False
        if self.registry.info(self.account.name, self.warehouse) is None:
            return False
        try:
            self.registry.load_into(self.account.name, self.warehouse, self.agent)
        except ConfigurationError:
            return False  # incompatible shapes: train fresh
        return True

    def _save_checkpoint(self) -> None:
        if self.registry is not None:
            self.registry.save(
                self.account.name,
                self.warehouse,
                self.agent,
                slider_position=int(self.params.position),
                saved_at=self.account.sim.now,
            )

    def _train(self, records, history: Window, episodes: int) -> TrainingReport:
        """Offline DRL training on the telemetry-reconstructed workload."""
        if episodes <= 0:
            return TrainingReport()
        requests = reconstruct_workload(records, self.cost_model.latency_model)
        span = obs.span(
            "optimizer.train",
            history.end,
            warehouse=self.warehouse,
            episodes=episodes,
            requests=len(requests),
        )
        original = self.action_space.original
        # Train on the most recent episode-length slice; each episode
        # re-simulates it under a different seed.
        episode_start = max(history.start, history.end - self.config.episode_length)
        env = WarehouseEnv(
            requests,
            original,
            self.baseline,
            self.action_space,
            self.params.reward_config(),
            Window(episode_start, history.end),
            decision_interval=self.config.decision_interval,
            # Full confidence during offline training: the ramp gates live
            # rollout only (see SmartModel._admissible_mask).
            mask_fn=lambda t, cfg: self.smart_model._admissible_mask(
                t, cfg, confidence=1.0
            ),
            seed=self.account.rngs.spawn_seed(f"keebo.env.{self.warehouse}"),
        )
        with span as sp:
            report = OfflineTrainer(self.agent, env).run(episodes)
            sp.set(episodes_run=len(report.episodes))
        return report

    # ------------------------------------------------------------------ loop
    def _tick(self, now: float) -> None:
        if not self.onboarded:
            return
        if self.paused:
            return
        with obs.span("optimizer.tick", now, warehouse=self.warehouse) as sp:
            # Seal every earlier decision's provenance record with the
            # realized outcome of the interval it governed.
            self._seal_provenance(now)
            # Stream the period's freshly completed rows into the live
            # ledger before anything else reads its projection this tick.
            self._stream_live_ledger(now)
            if not self.safe_mode:
                if now - self._last_retrain >= self.config.retrain_interval:
                    self._retrain(now)
                if now - self._last_report >= self.config.report_interval:
                    self._report_savings(now)
            feedback = self.monitor.snapshot(now)
            degraded = self._degraded_reason(now, feedback)
            if degraded:
                decision = self._safe_mode_tick(now, degraded)
                self.decisions.append(decision)
                sp.set(decision=decision.kind.value)
                obs.counter(
                    f"repro.optimizer.decisions.{decision.kind.value}"
                ).inc(time=now)
                self._record_provenance(now, feedback, decision)
                last = self.actuator.last_applied
                if last is not None and last.time == now:
                    self.provenance.note_apply(last.succeeded, last.error)
                return
            if self.safe_mode:
                self._exit_safe_mode(now)
            if not feedback.telemetry_ok or now < self._warmup_until:
                # Dark telemetry below the SAFE_MODE threshold, or the
                # warm-up tick right after leaving SAFE_MODE: hold position
                # rather than decide on stale features.
                if feedback.telemetry_ok:
                    reason, code = "safe-mode warm-up", "hold.warmup"
                else:
                    reason, code = "telemetry unavailable", "hold.telemetry_dark"
                decision = Decision(
                    DecisionKind.HOLD, self._held_config(), reason, reason_code=code
                )
                context = None
            else:
                try:
                    decision = self.smart_model.next_action(now, feedback)
                    context = self.smart_model.last_context
                except (TelemetryError, WarehouseError) as exc:
                    decision = self._decision_error_fallback(now, exc)
                    context = None
            self.decisions.append(decision)
            sp.set(decision=decision.kind.value)
            obs.counter(f"repro.optimizer.decisions.{decision.kind.value}").inc(time=now)
            self._record_provenance(now, feedback, decision, context=context)
            self._record_alerts(now, feedback, decision)
            if decision.kind == DecisionKind.BACKOFF:
                obs.emit(
                    "optimizer.backoff",
                    now,
                    warehouse=self.warehouse,
                    reason=decision.reason,
                )
            if decision.kind == DecisionKind.EXTERNAL_CONFLICT:
                self._handle_external_conflict(now)
                return
            if decision.kind == DecisionKind.HOLD and not feedback.telemetry_ok:
                return
            try:
                current = self.client.current_config(self.warehouse)
            except WarehouseError as exc:
                obs.emit(
                    "optimizer.config_read_error",
                    now,
                    warehouse=self.warehouse,
                    error=str(exc),
                )
                return
            if decision.target != current:
                applied = self.actuator.apply(
                    decision.target, reason=f"{decision.kind.value}: {decision.reason}"
                )
                self.provenance.note_apply(applied.succeeded, applied.error)
                sp.set(applied=decision.target.describe())
            self._advise_scaling_policy(now, feedback)

    # ------------------------------------------------------------ provenance
    def _decision_error_fallback(self, now: float, exc: Exception) -> Decision:
        """A decision-path failure becomes a typed, counted HOLD.

        The exception type survives as a reason code and a per-type counter,
        and the ``__cause__`` chain is recorded — "decision error: <msg>"
        alone made vendor flakiness indistinguishable from telemetry rot.
        """
        exc_type = type(exc).__name__
        cause = exc.__cause__
        # Metric names are dotted lowercase; CamelCase class names become
        # snake_case segments (TelemetryError -> telemetry_error).
        segment = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", exc_type).lower()
        obs.counter(f"repro.optimizer.decision_errors.{segment}").inc(time=now)
        obs.emit(
            "optimizer.decision_error",
            now,
            warehouse=self.warehouse,
            error=str(exc),
            error_type=exc_type,
            cause_type=type(cause).__name__ if cause is not None else "",
            cause=str(cause) if cause is not None else "",
        )
        return Decision(
            DecisionKind.HOLD,
            self._held_config(),
            f"decision error: {exc}",
            reason_code=f"decision_error.{exc_type}",
        )

    def _record_provenance(
        self, now: float, feedback, decision: Decision, context=None
    ) -> None:
        breaker = self.actuator.breaker
        self.provenance.record(
            now,
            kind=decision.kind.value,
            reason=decision.reason,
            reason_code=decision.typed_reason,
            target=decision.target.describe(),
            feedback=feedback,
            context=context if context is not None else DecisionContext(),
            action_index=decision.action_index,
            q_value=decision.q_value,
            safe_mode=self.safe_mode,
            breaker_state=breaker.state.value,
            breaker_consecutive_failures=breaker.consecutive_failures,
            retries_scheduled=self.actuator.retries_scheduled,
        )

    def _seal_provenance(self, now: float) -> None:
        self.provenance.seal_until(now, self._realized_outcome)

    def _realized_outcome(self, window: Window) -> DecisionOutcome:
        """Ground truth for sealing: account-side billing + telemetry.

        Deliberately *not* read through ``self.client`` — extra vendor-client
        calls would be metered as KWO overhead and would consume fault-plan
        randomness, so sealing through the client would change the very run
        it observes.
        """
        meter = self.account.warehouse(self.warehouse).meter
        records = self.account.telemetry.query_history(self.warehouse, window)
        latencies = [r.total_seconds for r in records]
        return DecisionOutcome(
            credits=meter.credits_in_window(window),
            p99_latency=percentile(latencies, 99),
            n_queries=len(records),
        )

    # ---------------------------------------------------------- degraded mode
    def _held_config(self) -> WarehouseConfig:
        """Best known configuration when holding without a fresh read."""
        last = self.actuator.last_applied
        return last.to_config if last is not None else self.action_space.original

    def _degraded_reason(self, now: float, feedback) -> str:
        """Non-empty when the loop must run in SAFE_MODE this tick."""
        if (
            not feedback.telemetry_ok
            and feedback.telemetry_age_seconds >= self.config.telemetry_staleness_threshold
        ):
            return (
                f"telemetry stale for {feedback.telemetry_age_seconds:.0f}s "
                f"(threshold {self.config.telemetry_staleness_threshold:.0f}s)"
            )
        if self.actuator.breaker.blocking(now):
            return "actuation circuit breaker open"
        return ""

    def _safe_mode_tick(self, now: float, reason: str) -> Decision:
        """Degraded operation: freeze at the customer's original config."""
        original = self.action_space.original
        if not self.safe_mode:
            self.safe_mode = True
            self.safe_mode_entries += 1
            obs.counter("repro.optimizer.safe_mode_entries").inc(time=now)
            obs.emit(
                "optimizer.safe_mode.enter", now, warehouse=self.warehouse, reason=reason
            )
            obs.alerts().fire(
                f"optimizer.safe_mode.{self.warehouse.lower()}",
                now,
                severity="critical",
                warehouse=self.warehouse,
                reason=reason,
            )
            self.account.telemetry.record_event(
                WarehouseEvent(
                    now, self.warehouse, "keebo_safe_mode", "keebo", {"cause": reason}
                )
            )
            # Best-effort revert to the configuration the customer chose;
            # the actuator absorbs any further vendor failures (and its
            # half-open probes double as breaker recovery checks).
            if not self.actuator.breaker.blocking(now):
                self.actuator.apply(original, reason=f"safe mode: {reason}")
        elif not self.actuator.breaker.blocking(now):
            last = self.actuator.last_applied
            if last is None or not last.succeeded or last.to_config != original:
                self.actuator.apply(original, reason=f"safe mode: {reason}")
        return Decision(
            DecisionKind.SAFE_MODE, original, reason, reason_code="safe_mode.frozen"
        )

    def _exit_safe_mode(self, now: float) -> None:
        self.safe_mode = False
        self._warmup_until = now + self.config.decision_interval
        obs.emit("optimizer.safe_mode.exit", now, warehouse=self.warehouse)
        obs.alerts().resolve(f"optimizer.safe_mode.{self.warehouse.lower()}", now)
        try:
            # Accept the live configuration so the exit itself cannot trip
            # the external-change detector.
            self.monitor.set_expected_config(self.client.current_config(self.warehouse))
        except WarehouseError as exc:
            obs.emit(
                "optimizer.config_read_error",
                now,
                warehouse=self.warehouse,
                error=str(exc),
            )

    def _record_alerts(self, now: float, feedback, decision: Decision) -> None:
        """Track self-corrections as first-class fire/resolve alert events.

        Level-triggered on each decision tick: a backoff (or spike) alert
        stays open while consecutive ticks keep deciding it, and resolves
        on the first tick that does not — so one degradation episode is one
        fire/resolve pair in the trace, however many ticks it spanned.
        """
        alerts = obs.alerts()
        wh = self.warehouse.lower()
        if decision.kind == DecisionKind.BACKOFF:
            alerts.fire(
                f"optimizer.backoff.{wh}",
                now,
                severity="warning",
                warehouse=self.warehouse,
                reason=decision.reason,
            )
        else:
            alerts.resolve(f"optimizer.backoff.{wh}", now)
        alerts.set_state(
            f"optimizer.spike.{wh}",
            feedback.spike_detected(self.params),
            now,
            severity="info",
            warehouse=self.warehouse,
        )

    def _advise_scaling_policy(self, now: float, feedback) -> None:
        """Tune the categorical STANDARD/ECONOMY knob (outside the DQN's
        numeric action lattice; see repro.core.policy_advisor)."""
        try:
            config = self.client.current_config(self.warehouse)
        except WarehouseError:
            return  # skip the advisory pass this tick; nothing to undo
        policy = self.policy_advisor.recommend(now, config, feedback)
        if policy is None or policy == config.scaling_policy:
            return
        target = config.with_changes(scaling_policy=policy)
        if self.constraints.permits(now, config, target):
            self.actuator.apply(target, reason=f"policy advisor: {policy.value}")

    def _retrain(self, now: float) -> None:
        """Periodic refresh (Algorithm 1 lines 13-16)."""
        obs.counter("repro.optimizer.retrains").inc(time=now)
        history = Window(max(0.0, now - self.config.training_window), now)
        try:
            with obs.span("optimizer.retrain", now, warehouse=self.warehouse):
                self._refit(history)
        except (TelemetryError, WarehouseError) as exc:
            # The vendor view is dark: keep _last_retrain so the refresh is
            # retried next tick instead of slipping a whole interval.
            obs.emit(
                "optimizer.retrain_error", now, warehouse=self.warehouse, error=str(exc)
            )
            return
        self._last_retrain = now

    def _refit(self, history: Window) -> None:
        self.cost_model.fit(history)
        records = self.client.query_history(self.warehouse, history)
        if records:
            self.baseline = WorkloadBaseline.fit(records)
            self.monitor.baseline = self.baseline
            self.monitor.learn_templates({r.template_hash for r in records})
            self.smart_model.features.baseline = self.baseline
            if self.config.retrain_episodes > 0:
                self.training_reports.append(
                    self._train(records, history, self.config.retrain_episodes)
                )
                self._save_checkpoint()

    def _report_savings(self, now: float) -> None:
        """Algorithm 1 lines 18-19: estimate and report period savings."""
        period = Window(max(0.0, self._last_report), now)
        if period.duration <= 0:
            self._last_report = now
            return
        try:
            estimate = self.cost_model.estimate_savings(period)
        except (TelemetryError, WarehouseError) as exc:
            obs.emit(
                "optimizer.report_error", now, warehouse=self.warehouse, error=str(exc)
            )
            return  # retried next tick; the period simply grows
        recent = self.decisions[self._decisions_at_last_report:]
        entry = self.ledger.report(
            estimate,
            n_actions=sum(1 for d in recent if d.kind == DecisionKind.LEARNED),
            n_backoffs=sum(1 for d in recent if d.kind == DecisionKind.BACKOFF),
        )
        self.provenance.attribution.attribute(
            entry.window, entry.savings_credits, self.provenance.records
        )
        self._decisions_at_last_report = len(self.decisions)
        self._last_report = now
        obs.emit(
            "optimizer.savings_report",
            now,
            warehouse=self.warehouse,
            savings_fraction=estimate.savings_fraction,
            savings_credits=entry.savings_credits,
            window_start=entry.window.start,
            window_end=entry.window.end,
        )
        obs.gauge(f"repro.optimizer.savings_fraction.{self.warehouse.lower()}").set(
            estimate.savings_fraction, time=now
        )
        if self.live_ledger is not None:
            self._reconcile_live_ledger(now, estimate)

    # ----------------------------------------------------------- live ledger
    def _stream_live_ledger(self, now: float) -> None:
        """Feed freshly completed rows; O(delta) per tick, no vendor calls.

        Reads the account's telemetry directly (like provenance sealing):
        client reads would be metered as KWO overhead and consume
        fault-plan randomness, changing the run being observed.
        """
        ledger = self.live_ledger
        if ledger is None:
            return
        period = ledger.period
        horizon = Window(period.start, min(now, period.end))
        if horizon.duration <= 0:
            return
        rows = self.account.telemetry.query_history(self.warehouse, horizon)
        fresh = ledger.ingest(rows, now)
        original = self.action_space.original
        if ledger.mode == "sketch":
            projected = ledger.sketch_projection(original).credits
        else:
            projected = ledger.projection(original).credits
        wh = self.warehouse.lower()
        obs.gauge(f"repro.ledger.live_projected_credits.{wh}").set(projected, time=now)
        if fresh:
            obs.counter(f"repro.ledger.live_rows.{wh}").inc(fresh, time=now)

    def _reconcile_live_ledger(self, now: float, estimate: SavingsEstimate) -> None:
        """Close the streamed period against the authoritative estimate.

        In exact mode an aligned reconciliation must diverge by exactly
        0.0 — the incremental ledger is bit-identical to the full replay —
        so a non-zero divergence is alerted as an invariant break, not
        logged as noise.
        """
        ledger = self.live_ledger
        self._stream_live_ledger(now)  # final sync before closing the books
        original = self.account.telemetry.original_config(
            self.warehouse, before=estimate.window.end
        )
        entry = ledger.reconcile(estimate, original)
        wh = self.warehouse.lower()
        obs.emit(
            "ledger.live_reconcile",
            now,
            warehouse=self.warehouse,
            aligned=entry.aligned,
            projected_credits=entry.projected_credits,
            estimated_credits=entry.estimated_credits,
            divergence=entry.divergence,
            rows_streamed=entry.rows_streamed,
        )
        obs.gauge(f"repro.ledger.live_divergence.{wh}").set(entry.divergence, time=now)
        if entry.aligned and ledger.mode == "exact" and entry.divergence != 0.0:
            obs.alerts().fire(
                f"ledger.live_divergence.{wh}",
                now,
                severity="critical",
                warehouse=self.warehouse,
                divergence=entry.divergence,
            )
        ledger.roll(Window(now, now + self.config.report_interval))

    def _handle_external_conflict(self, now: float) -> None:
        """§4.4: revert our own pending changes and pause until told."""
        try:
            live = self.client.current_config(self.warehouse)
        except WarehouseError as exc:
            # Cannot even read the live config: stay unpaused and let the
            # next tick re-detect the conflict once the vendor responds.
            obs.emit(
                "optimizer.config_read_error",
                now,
                warehouse=self.warehouse,
                error=str(exc),
            )
            return
        self.monitor.set_expected_config(live)  # accept the external state
        self.paused = True
        obs.counter("repro.optimizer.external_conflicts").inc(time=now)
        obs.alerts().fire(
            f"optimizer.external_conflict.{self.warehouse.lower()}",
            now,
            severity="critical",
            warehouse=self.warehouse,
        )
        obs.emit(
            "optimizer.external_conflict",
            now,
            warehouse=self.warehouse,
            live_config=live.describe(),
        )
        self.account.telemetry.record_event(
            WarehouseEvent(
                now, self.warehouse, "keebo_paused", "keebo", {"cause": "external change"}
            )
        )

    def resume_optimizations(self) -> None:
        """Admin explicitly re-enables optimization after a conflict."""
        self.paused = False
        self.monitor.set_expected_config(self.client.current_config(self.warehouse))
        now = self.account.sim.now
        wh = self.warehouse.lower()
        alerts = obs.alerts()
        alerts.resolve(f"optimizer.external_conflict.{wh}", now)
        alerts.resolve(f"monitor.external_change.{wh}", now)

    def shutdown(self) -> None:
        if self.provenance.records:
            # Seal trailing records so the provenance export never ends on an
            # interval with no realized outcome.
            self._seal_provenance(self.account.sim.now)
        if self._controller is not None:
            self._controller.stop()

    # ------------------------------------------------------------ durability
    @property
    def model_version(self) -> tuple:
        """Changes exactly when heavyweight (array) state may have changed.

        Live decision ticks are greedy — no exploration draw, no buffer
        push — so the agent's arrays and the cost model's estimators only
        move at (re)training.  ``_last_retrain`` covers baseline refits and
        the fit generations cover a cost-model fit that succeeded even when
        the surrounding retrain aborted, so a delta journal entry is only
        ever written while every array captured by the last snapshot is
        still current.
        """
        return (
            self.agent.train_steps,
            self._last_retrain,
            self.cost_model.latency_model.fit_generation,
            self.cost_model.gap_model.fit_generation,
        )

    @property
    def controller_next_fire(self) -> float | None:
        """When the decision controller fires next (journaled for restore)."""
        if self._controller is None or self._controller._handle is None:
            return None
        return self._controller._handle.time

    def marks(self) -> dict:
        """Append-only high-water marks; the next journal delta starts here.

        Everything below a mark is immutable: ledger/attribution/log entries
        and decisions are append-only frozen values, and provenance records
        below ``unsealed_from`` are sealed (``seal_until`` and ``note_apply``
        only touch records at or above the live mark).
        """
        return {
            "ledger": len(self.ledger.entries),
            "attribution": len(self.provenance.attribution.entries),
            "log": len(self.actuator.log),
            "decisions": len(self.decisions),
            "provenance": self.provenance.unsealed_from,
        }

    def _scalar_state(self) -> dict:
        return {
            "paused": self.paused,
            "safe_mode": self.safe_mode,
            "safe_mode_entries": self.safe_mode_entries,
            "warmup_until": self._warmup_until,
            "last_retrain": self._last_retrain,
            "last_report": self._last_report,
            "decisions_at_last_report": self._decisions_at_last_report,
        }

    def _load_scalars(self, state: dict) -> None:
        self.paused = bool(state["paused"])
        self.safe_mode = bool(state["safe_mode"])
        self.safe_mode_entries = int(state["safe_mode_entries"])
        self._warmup_until = float(state["warmup_until"])
        self._last_retrain = float(state["last_retrain"])
        self._last_report = float(state["last_report"])
        self._decisions_at_last_report = int(state["decisions_at_last_report"])

    def _client_fault_state(self) -> dict | None:
        """Injection counters when the client is fault-injecting, else None.

        Duck-typed so this module needs no FaultingWarehouseClient import.
        """
        exporter = getattr(self.client, "fault_state_dict", None)
        return None if exporter is None else exporter()

    def state_dict(self) -> dict:
        """Full durable state (snapshot vocabulary).

        ``training_reports`` are deliberately not captured: they are
        onboarding diagnostics, never read by the decision loop or any
        export the crash-consistency invariant covers.
        """
        return {
            "warehouse": self.warehouse,
            "original_config": encode_config(self.action_space.original),
            "baseline": self.baseline.state_dict(),
            "cost_model": self.cost_model.state_dict(),
            "agent": self.agent.state_dict(),
            "monitor": self.monitor.state_dict(),
            "smart_model": self.smart_model.state_dict(),
            "policy_advisor": self.policy_advisor.state_dict(),
            "actuator": self.actuator.state_dict(),
            "ledger": self.ledger.state_dict(),
            "live_ledger": (
                None if self.live_ledger is None else self.live_ledger.state_dict()
            ),
            "provenance": self.provenance.state_dict(),
            "decisions": [encode_decision(d) for d in self.decisions],
            "scalars": self._scalar_state(),
            "pending_retries": self.actuator.pending_retry_state(),
            "controller_next_fire": self.controller_next_fire,
            "client_faults": self._client_fault_state(),
        }

    def delta_state(self, marks: dict) -> dict:
        """Journal-entry vocabulary: small full states + append-only tails.

        Arrays (agent networks, replay buffer, cost-model estimators, the
        baseline) are *not* here — :attr:`model_version` guarantees the
        service compacts to a full snapshot whenever they may have moved.
        """
        actuator = self.actuator.state_dict()
        log = actuator.pop("log")
        return {
            "monitor": self.monitor.state_dict(),
            "smart_model": self.smart_model.state_dict(),
            "policy_advisor": self.policy_advisor.state_dict(),
            "actuator": actuator,
            "log_from": marks["log"],
            "log": log[marks["log"]:],
            "ledger_from": marks["ledger"],
            "ledger": [
                SavingsLedger.encode_entry(e)
                for e in self.ledger.entries[marks["ledger"]:]
            ],
            "attribution_from": marks["attribution"],
            "attribution": [
                AttributionLedger.encode_entry(e)
                for e in self.provenance.attribution.entries[marks["attribution"]:]
            ],
            "decisions_from": marks["decisions"],
            "decisions": [
                encode_decision(d) for d in self.decisions[marks["decisions"]:]
            ],
            "provenance": {
                "from": marks["provenance"],
                "records": self.provenance.export_records(marks["provenance"]),
                "unsealed_from": self.provenance.unsealed_from,
            },
            # Small by construction (counts + checksums, never row data), so
            # it travels whole in every delta like the other compact states.
            "live_ledger": (
                None if self.live_ledger is None else self.live_ledger.state_dict()
            ),
            "scalars": self._scalar_state(),
            "pending_retries": self.actuator.pending_retry_state(),
            "controller_next_fire": self.controller_next_fire,
            "client_faults": self._client_fault_state(),
        }

    def load_durable_state(self, state: dict) -> None:
        """Rebuild every component from a checkpoint, without onboarding.

        The restore path never touches the vendor surface: no telemetry
        fetch, no training, no billed calls, no fault-plan draws.  Stream
        construction below draws initial network weights from the agent
        stream, but the service overwrites every ``keebo.*``/``faults.*``
        stream state from the journal immediately after all components
        exist, so those construction draws are discarded.
        """
        original = decode_config(state["original_config"])
        self.action_space = ActionSpace(
            original, max_size_headroom=self.params.max_upsize_steps
        )
        self.baseline = WorkloadBaseline.from_state(state["baseline"])
        self.cost_model = WarehouseCostModel(self.client, self.warehouse)
        self.cost_model.load_state_dict(state["cost_model"])
        self.monitor = Monitor(self.client, self.warehouse, self.baseline)
        self.monitor.load_state_dict(state["monitor"])
        self.actuator = Actuator(
            self.client,
            self.warehouse,
            self.monitor,
            rng=self.account.rngs.stream(f"keebo.actuator.{self.warehouse}"),  # repro-lint: disable=R003
        )
        self.actuator.load_state_dict(state["actuator"])
        self.agent = DQNAgent(
            FEATURE_DIM,
            len(self.action_space),
            self.config.agent,
            self.account.rngs.stream(f"keebo.agent.{self.warehouse}"),  # repro-lint: disable=R003
        )
        self.agent.load_state_dict(state["agent"])
        features = FeatureExtractor(self.baseline, original)
        self.smart_model = SmartModel(
            self.client,
            self.warehouse,
            self.agent,
            self.action_space,
            features,
            self.cost_model,
            self.constraints,
            self.params,
            self.config.decision_interval,
        )
        self.smart_model.load_state_dict(state["smart_model"])
        self.policy_advisor.load_state_dict(state["policy_advisor"])
        self.ledger.load_state_dict(state["ledger"])
        live_state = state["live_ledger"]
        if live_state is not None:
            period = decode_window(live_state["replay"]["window"])
            self.live_ledger = LiveLedger(
                self.warehouse,
                self.cost_model.latency_model,
                self.cost_model.gap_model,
                self.cost_model.cluster_predictor,
                period,
                mode=live_state["mode"],
            )
            # Re-feed from the account's telemetry (it survives a
            # control-plane crash); verify_restored inside checks the row
            # count and id-checksum against the captured state.
            self.live_ledger.load_state_dict(
                live_state,
                self.account.telemetry.query_history(self.warehouse, period),
            )
        self.provenance.load_state_dict(state["provenance"])
        self.decisions = [decode_decision(d) for d in state["decisions"]]
        self._load_scalars(state["scalars"])
        faults_state = state["client_faults"]
        if faults_state is not None:
            loader = getattr(self.client, "load_fault_state", None)
            if loader is None:
                raise RecoveryError(
                    f"checkpoint for {self.warehouse!r} carries fault-injection "
                    "counters but the restored client is not fault-injecting "
                    "(client_factory mismatch)"
                )
            loader(faults_state)
        self.onboarded = True

    # ------------------------------------------------------------- reporting
    def set_slider(self, slider: SliderPosition) -> None:
        self.params = slider_params(slider)
        if self.smart_model is not None:
            self.smart_model.set_slider(self.params)
        self.policy_advisor.set_slider(self.params)

    def estimate_savings(self, window: Window) -> SavingsEstimate:
        if self.cost_model is None:
            raise ConfigurationError("optimizer not onboarded")
        return self.cost_model.estimate_savings(window)

    def decision_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for d in self.decisions:
            counts[d.kind.value] = counts.get(d.kind.value, 0) + 1
        return counts


def merge_checkpoint_entries(state: dict, entries: list[dict]) -> dict:
    """Fold journal deltas onto a snapshot state, newest last.

    The journal vocabulary is owned here (the store is schema-agnostic):
    list-valued fields replay as truncate-to-mark + extend, everything else
    is a whole-value overwrite.  Mutates and returns ``state``.
    """
    for entry in entries:
        if entry.get("kind") != "delta":
            raise RecoveryError(f"unknown journal entry kind {entry.get('kind')!r}")
        deltas = entry["optimizers"]
        if set(deltas) != set(state["optimizers"]):
            raise RecoveryError(
                "journal entry warehouses do not match the snapshot"
            )
        for warehouse, delta in deltas.items():
            base = state["optimizers"][warehouse]
            for key in (
                "monitor",
                "smart_model",
                "policy_advisor",
                "live_ledger",
                "scalars",
                "pending_retries",
                "controller_next_fire",
                "client_faults",
            ):
                base[key] = delta[key]
            log = base["actuator"]["log"][: delta["log_from"]] + delta["log"]
            base["actuator"] = dict(delta["actuator"], log=log)
            base["ledger"]["entries"] = (
                base["ledger"]["entries"][: delta["ledger_from"]] + delta["ledger"]
            )
            provenance = base["provenance"]
            provenance["records"] = (
                provenance["records"][: delta["provenance"]["from"]]
                + delta["provenance"]["records"]
            )
            provenance["unsealed_from"] = delta["provenance"]["unsealed_from"]
            provenance["attribution"]["entries"] = (
                provenance["attribution"]["entries"][: delta["attribution_from"]]
                + delta["attribution"]
            )
            base["decisions"] = (
                base["decisions"][: delta["decisions_from"]] + delta["decisions"]
            )
        state["rng_states"] = entry["rng_states"]
        state["process_fired"] = entry["process_fired"]
    return state


class _DurabilityRuntime:
    """In-memory checkpoint bookkeeping — dies with the process.

    Everything here is recomputable from the durable artifacts at restore
    time; nothing may live *only* here that the crash-consistency invariant
    depends on.
    """

    def __init__(
        self,
        store: CheckpointStore,
        cadence_seconds: float,
        plan: FaultPlan | None,
        config_hash: str,
        compact_every: int,
    ):
        self.store = store
        self.cadence_seconds = cadence_seconds
        #: Fault plan whose process-level specs fire at checkpoint ticks.
        self.plan = plan
        self.config_hash = config_hash
        #: Delta entries tolerated before the next forced compaction.
        self.compact_every = compact_every
        self.controller = None
        self.seq = 0
        self.entries_since_snapshot = 0
        self.model_versions: dict[str, tuple] = {}
        self.marks: dict[str, dict] = {}
        #: Plan indices of process specs that already fired (one shot each).
        self.process_fired: set[int] = set()
        #: Fault kind value of a process fault that fired this tick; the
        #: harness consumes it between sim segments and performs the kill.
        self.pending_crash: str | None = None


class KeeboService:
    """The managed SaaS facade over one customer account."""

    def __init__(
        self,
        account: Account,
        fee_fraction: float = 0.3,
        registry: ModelRegistry | None = None,
        client_factory: Callable[[Account], CloudWarehouseClient] | None = None,
    ):
        self.account = account
        self.pricing = ValueBasedPricing(fee_fraction, account.price_per_credit)
        self.registry = registry
        #: Optional ``account -> CloudWarehouseClient`` hook; chaos runs use
        #: it to hand every optimizer a FaultingWarehouseClient.
        self.client_factory = client_factory
        self.optimizers: dict[str, WarehouseOptimizer] = {}
        self._durability: _DurabilityRuntime | None = None

    def onboard_warehouse(
        self,
        warehouse: str,
        slider: SliderPosition = SliderPosition.BALANCED,
        constraints: ConstraintSet | None = None,
        config: OptimizerConfig | None = None,
    ) -> WarehouseOptimizer:
        """Attach KWO to one warehouse (a separate smart model per warehouse)."""
        if warehouse not in self.account.warehouses:
            raise UnknownWarehouseError(warehouse)
        if warehouse in self.optimizers:
            raise ConfigurationError(f"{warehouse!r} is already being optimized")
        client = self.client_factory(self.account) if self.client_factory else None
        optimizer = WarehouseOptimizer(
            self.account,
            warehouse,
            slider,
            constraints,
            config,
            registry=self.registry,
            client=client,
        )
        optimizer.onboard()
        self.optimizers[warehouse] = optimizer
        return optimizer

    def optimizer(self, warehouse: str) -> WarehouseOptimizer:
        try:
            return self.optimizers[warehouse]
        except KeyError:
            raise UnknownWarehouseError(warehouse) from None

    def set_slider(self, warehouse: str, slider: SliderPosition) -> None:
        self.optimizer(warehouse).set_slider(slider)

    def invoice(self, warehouse: str, window: Window) -> Invoice:
        estimate = self.optimizer(warehouse).estimate_savings(window)
        return self.pricing.invoice(warehouse, estimate)

    def invoices(self, window: Window) -> list[Invoice]:
        return [self.invoice(name, window) for name in sorted(self.optimizers)]

    def shutdown(self) -> None:
        for optimizer in self.optimizers.values():
            optimizer.shutdown()

    # ------------------------------------------------------------ durability
    @property
    def checkpoints_enabled(self) -> bool:
        return self._durability is not None

    @property
    def pending_crash(self) -> str | None:
        """Fault kind value of an un-consumed process fault, if any."""
        return None if self._durability is None else self._durability.pending_crash

    def consume_pending_crash(self) -> str | None:
        """Clear and return the pending process fault (harness handshake).

        The reference (uninterrupted) run of the crash harness calls this
        too — it executes the *identical* checkpoint-tick code, RNG draws
        included, and simply declines to kill anything.
        """
        if self._durability is None:
            return None
        kind, self._durability.pending_crash = self._durability.pending_crash, None
        return kind

    def enable_checkpoints(
        self,
        directory: Path | str,
        cadence_seconds: float,
        *,
        config_hash: str = "",
        process_plan: FaultPlan | None = None,
        offset_seconds: float = 1.0,
        compact_every: int = 16,
    ) -> None:
        """Start journaling control-plane state to ``directory``.

        Writes an initial full snapshot synchronously, then checkpoints
        every ``cadence_seconds``.  The periodic controller is offset by
        ``offset_seconds`` past the cadence grid so a checkpoint always
        observes a *quiesced* post-tick state: decision controllers fire on
        round interval multiples, and two same-timestamp events dispatch in
        insertion order — a zero-offset checkpoint registered after
        onboarding would run *before* the optimizer ticks sharing its
        timestamp, silently excluding that tick from the durable state.

        ``process_plan`` arms process-level fault kinds (``crash_at_tick``
        and the corruption trio); each armed spec is evaluated at every
        checkpoint tick with draws from the ``faults.process`` registry
        stream and disarms permanently once fired.
        """
        if self._durability is not None:
            raise ConfigurationError("checkpoints are already enabled")
        if cadence_seconds <= 0:
            raise ConfigurationError("checkpoint cadence must be positive")
        store = CheckpointStore(directory)
        store.initialize(
            account=self.account.name,
            config_hash=config_hash,
            cadence_seconds=cadence_seconds,
        )
        self._durability = _DurabilityRuntime(
            store, cadence_seconds, process_plan, config_hash, compact_every
        )
        self.checkpoint(force_snapshot=True)
        self._durability.controller = self.account.sim.add_controller(
            cadence_seconds,
            self._checkpoint_tick,
            start=self.account.sim.now + cadence_seconds + offset_seconds,
            name=f"durability[{self.account.name}]",
        )

    def checkpoint(self, force_snapshot: bool = False) -> str:
        """Write one durable unit; returns ``"snapshot"`` or ``"delta"``.

        Compaction triggers when any optimizer's :attr:`model_version`
        moved (arrays may have changed — a delta cannot carry them) or the
        journal reached ``compact_every`` entries.
        """
        d = self._durability
        if d is None:
            raise ConfigurationError("checkpoints are not enabled")
        now = self.account.sim.now
        names = sorted(self.optimizers)
        versions = {wh: self.optimizers[wh].model_version for wh in names}
        if force_snapshot or versions != d.model_versions or (
            d.entries_since_snapshot >= d.compact_every
        ):
            d.store.write_snapshot(seq=d.seq, time=now, state=self._capture_state())
            d.entries_since_snapshot = 0
            d.model_versions = versions
            obs.counter("repro.durability.snapshots").inc(time=now)
            written = "snapshot"
        else:
            d.store.append(
                {
                    "seq": d.seq,
                    "kind": "delta",
                    "time": now,
                    "optimizers": {
                        wh: self.optimizers[wh].delta_state(d.marks[wh])
                        for wh in names
                    },
                    "rng_states": self.account.rngs.export_states(
                        ("keebo.", "faults.")
                    ),
                    "process_fired": sorted(d.process_fired),
                }
            )
            d.entries_since_snapshot += 1
            written = "delta"
        d.seq += 1
        d.marks = {wh: self.optimizers[wh].marks() for wh in names}
        obs.counter("repro.durability.checkpoints").inc(time=now)
        obs.gauge("repro.durability.journal_entries").set(
            d.entries_since_snapshot, time=now
        )
        return written

    def _capture_state(self) -> dict:
        d = self._durability
        return {
            "account": self.account.name,
            "compact_every": d.compact_every,
            "optimizers": {
                wh: self.optimizers[wh].state_dict()
                for wh in sorted(self.optimizers)
            },
            "rng_states": self.account.rngs.export_states(("keebo.", "faults.")),
            "process_fired": sorted(d.process_fired),
        }

    def _next_process_fault(self, now: float) -> FaultSpec | None:
        """First armed process spec that triggers this tick, if any.

        Mirrors the faulting client's contract: specs evaluate in plan
        order, evaluation stops at the first trigger, and only
        probabilistic specs consume randomness (from ``faults.process``).
        Each spec fires at most once per process lifetime.
        """
        d = self._durability
        if d.plan is None:
            return None
        rng = self.account.rngs.stream("faults.process")
        for index, spec in enumerate(d.plan.specs):
            if index in d.process_fired:
                continue
            if not (spec.targets(PROCESS_OPERATION) and spec.armed(now)):
                continue
            if spec.probability < 1.0 and not float(rng.random()) < spec.probability:
                continue
            d.process_fired.add(index)
            obs.emit(
                "fault.inject",
                now,
                operation=PROCESS_OPERATION,
                kind=spec.kind.value,
                detail=spec.detail,
            )
            obs.counter(f"repro.faults.injected.{spec.kind.value}").inc(time=now)
            return spec
        return None

    def _checkpoint_tick(self, now: float) -> None:
        """One durability controller fire: fault check, then the write.

        Ordering is load-bearing: the fired spec joins ``process_fired``
        (and its RNG draw lands) *before* the checkpoint is written, so the
        durable state already knows the fault fired — a restore can never
        re-fire it.  The corruption hooks run *after* the write: they model
        damage to this very checkpoint.
        """
        d = self._durability
        spec = self._next_process_fault(now)
        self.checkpoint()
        if spec is None:
            return
        if spec.kind is FaultKind.TORN_WRITE:
            d.store.inject_torn_write()
        elif spec.kind is FaultKind.TRUNCATED_JOURNAL:
            d.store.inject_truncated_journal()
        elif spec.kind is FaultKind.STALE_SNAPSHOT:
            d.store.inject_stale_snapshot()
        d.pending_crash = spec.kind.value

    def crash(self) -> None:
        """Simulate control-plane process death.

        The simulated *world* — account, warehouses, telemetry, billing,
        the event heap's workload arrivals — survives; only KWO-owned
        things die: controllers and pending retries are cancelled, the
        optimizer map is cleared, and every ``keebo.*``/``faults.*`` RNG
        stream is evicted so a later :meth:`restore` re-derives fresh
        generator objects and rewinds them from the journal.  Emits no
        observability: a dead process writes nothing.
        """
        for warehouse in sorted(self.optimizers):
            optimizer = self.optimizers[warehouse]
            if optimizer._controller is not None:
                optimizer._controller.stop()
            if optimizer.actuator is not None:
                optimizer.actuator.cancel_pending_retries()
        if self._durability is not None and self._durability.controller is not None:
            self._durability.controller.stop()
        self._durability = None
        self.optimizers = {}
        self.account.rngs.evict(("keebo.", "faults."))

    def restore(
        self,
        directory: Path | str,
        *,
        slider: SliderPosition = SliderPosition.BALANCED,
        constraints: ConstraintSet | None = None,
        optimizer_config: OptimizerConfig | None = None,
        config_hash: str | None = None,
        process_plan: FaultPlan | None = None,
        repair: bool = False,
    ) -> CheckpointLoad:
        """Rebuild the service from a checkpoint directory and resume.

        All-or-nothing: any corruption, schema mismatch, or malformed state
        raises :class:`RecoveryError` and leaves the service empty — never
        a silently partial restore.  ``repair=True`` additionally truncates
        a torn journal *tail* (the expected residue of a crash mid-append);
        corruption anywhere earlier stays fatal either way.

        The deployment inputs (``slider``, ``constraints``,
        ``optimizer_config``, ``process_plan``) are configuration, not
        state — the operator restarting the service supplies the same
        values the crashed process ran with, and ``config_hash`` guards
        against supplying different ones.  Restore performs no onboarding:
        no telemetry fetch, no training, no vendor calls, no RNG draws
        survive (construction draws are overwritten from the journal).
        Emits exactly one ``service.restore`` trace event and no metrics,
        so a recovered run's exports differ from an uninterrupted run's by
        that event alone.
        """
        if self.optimizers or self._durability is not None:
            raise ConfigurationError(
                "cannot restore into a live service; crash() or use a fresh service"
            )
        store = CheckpointStore(directory)
        load = store.load(expected_config_hash=config_hash, repair=repair)
        try:
            state = merge_checkpoint_entries(load.state, load.entries)
            self._rebuild(
                store, load, state, slider, constraints, optimizer_config, process_plan
            )
        except RecoveryError:
            self.optimizers = {}
            self._durability = None
            raise
        except (KeyError, TypeError, ValueError) as exc:
            self.optimizers = {}
            self._durability = None
            raise RecoveryError(f"malformed checkpoint state: {exc!r}") from exc
        return load

    def _rebuild(
        self,
        store: CheckpointStore,
        load: CheckpointLoad,
        state: dict,
        slider: SliderPosition,
        constraints: ConstraintSet | None,
        optimizer_config: OptimizerConfig | None,
        process_plan: FaultPlan | None,
    ) -> None:
        now = self.account.sim.now
        names = sorted(state["optimizers"])
        for warehouse in names:
            client = self.client_factory(self.account) if self.client_factory else None
            optimizer = WarehouseOptimizer(
                self.account,
                warehouse,
                slider,
                constraints,
                optimizer_config,
                registry=self.registry,
                client=client,
            )
            optimizer.load_durable_state(state["optimizers"][warehouse])
            self.optimizers[warehouse] = optimizer
        # After every component exists: construction draws (agent weight
        # init) are discarded by rewinding the streams to their journaled
        # states.  Order matters — restoring first would lose the rewind.
        self.account.rngs.restore_states(state["rng_states"])
        for warehouse in names:
            optimizer = self.optimizers[warehouse]
            optimizer._controller = self.account.sim.add_controller(
                optimizer.config.decision_interval,
                optimizer._tick,
                start=float(state["optimizers"][warehouse]["controller_next_fire"]),
                name=f"optimizer[{warehouse}]",
            )
        d = _DurabilityRuntime(
            store,
            float(load.manifest["cadence_seconds"]),
            process_plan,
            load.manifest["config_hash"],
            int(state["compact_every"]),
        )
        d.seq = int(load.snapshot["seq"]) + len(load.entries) + 1
        d.entries_since_snapshot = len(load.entries)
        d.model_versions = {wh: self.optimizers[wh].model_version for wh in names}
        d.marks = {wh: self.optimizers[wh].marks() for wh in names}
        d.process_fired = set(state["process_fired"])
        last_time = (
            float(load.entries[-1]["time"]) if load.entries
            else float(load.snapshot["time"])
        )
        d.controller = self.account.sim.add_controller(
            d.cadence_seconds,
            self._checkpoint_tick,
            start=last_time + d.cadence_seconds,
            name=f"durability[{self.account.name}]",
        )
        self._durability = d
        for warehouse in names:
            self.optimizers[warehouse].actuator.restore_pending_retries(
                state["optimizers"][warehouse]["pending_retries"]
            )
        obs.emit(
            "service.restore",
            now,
            account=self.account.name,
            snapshot_seq=load.snapshot["seq"],
            journal_entries=len(load.entries),
            repairs=len(load.repairs),
        )
