"""The cost/performance slider (§4.1 "Sliders", evaluated in §7.4).

One slider per warehouse with five positions from "Best Performance" to
"Lowest Cost".  The paper's salient point is that the single slider maps
internally to *all* the learning hyper-parameters at once, so the customer
never reasons about individual optimizations.  Our mapping controls:

* the reward's latency-penalty weight λ (dominant during DRL training);
* the guardrail ceiling on the cost model's predicted latency factor for a
  candidate action (how much predicted slowdown an action may cause);
* the floor on the auto-suspend interval (aggressive suspension is the
  first thing a performance-leaning customer wants disabled);
* how trigger-happy the monitor's back-off is (spike z-score threshold);
* extra size headroom kept above the learned choice.

Changing the slider re-calibrates decisions without retraining (§4.3): the
guardrails and penalties shift, the same Q-function is reused.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.learning.reward import RewardConfig


class SliderPosition(enum.IntEnum):
    """Five positions, ordered from cheapest to fastest."""

    LOWEST_COST = 1
    LOW_COST = 2
    BALANCED = 3
    GOOD_PERFORMANCE = 4
    BEST_PERFORMANCE = 5

    @property
    def label(self) -> str:
        return {
            SliderPosition.LOWEST_COST: "Lowest Cost",
            SliderPosition.LOW_COST: "Low Cost",
            SliderPosition.BALANCED: "Balanced",
            SliderPosition.GOOD_PERFORMANCE: "Good Performance",
            SliderPosition.BEST_PERFORMANCE: "Best Performance",
        }[self]


@dataclass(frozen=True)
class SliderParams:
    """Internal hyper-parameters one slider position expands into."""

    position: SliderPosition
    #: λ in the reward: weight of the latency penalty vs. the cost term.
    latency_weight: float
    #: Max cost-model-predicted latency factor an action may cause.
    max_latency_factor: float
    #: Auto-suspend floor (s); actions proposing shorter intervals are masked.
    min_auto_suspend: float
    #: p99/baseline z-threshold at which the monitor demands a back-off.
    backoff_latency_ratio: float
    #: Arrival-spike z-score triggering conservative behaviour.
    spike_zscore: float
    #: How many T-shirt steps below the customer's original size the model
    #: may go.  Performance-leaning positions keep headroom ("provisioning
    #: for sudden spikes", §4.1); BEST_PERFORMANCE never downsizes at all.
    max_downsize_steps: int
    #: Max predicted cost increase (as a fraction of current cost) an action
    #: may cause.  Cost-leaning positions never pay more; performance-leaning
    #: positions may buy latency with credits (§2 C4's trade-off, customer-
    #: authorized through the slider).
    cost_increase_tolerance: float
    #: T-shirt steps the optimizer may provision *above* the customer's
    #: original size.  Cost-leaning positions never exceed what the customer
    #: provisioned (their bill must not be able to grow structurally);
    #: performance-leaning positions may burst one size bigger.
    max_upsize_steps: int

    def reward_config(self) -> RewardConfig:
        return RewardConfig(
            latency_weight=self.latency_weight,
            queue_weight=self.latency_weight / 2.0,
            cold_weight=self.latency_weight / 16.0,
        )


_SLIDER_TABLE: dict[SliderPosition, SliderParams] = {
    SliderPosition.LOWEST_COST: SliderParams(
        position=SliderPosition.LOWEST_COST,
        latency_weight=0.5,
        max_latency_factor=1.8,
        min_auto_suspend=60.0,
        backoff_latency_ratio=3.0,
        spike_zscore=4.0,
        max_downsize_steps=9,
        cost_increase_tolerance=0.0,
        max_upsize_steps=0,
    ),
    SliderPosition.LOW_COST: SliderParams(
        position=SliderPosition.LOW_COST,
        latency_weight=1.5,
        max_latency_factor=1.4,
        min_auto_suspend=60.0,
        backoff_latency_ratio=2.2,
        spike_zscore=3.5,
        max_downsize_steps=9,
        cost_increase_tolerance=0.0,
        max_upsize_steps=0,
    ),
    SliderPosition.BALANCED: SliderParams(
        position=SliderPosition.BALANCED,
        latency_weight=4.0,
        max_latency_factor=1.15,
        min_auto_suspend=60.0,
        backoff_latency_ratio=1.6,
        spike_zscore=3.0,
        max_downsize_steps=9,
        cost_increase_tolerance=0.0,
        max_upsize_steps=0,
    ),
    SliderPosition.GOOD_PERFORMANCE: SliderParams(
        position=SliderPosition.GOOD_PERFORMANCE,
        latency_weight=10.0,
        max_latency_factor=1.05,
        min_auto_suspend=300.0,
        backoff_latency_ratio=1.3,
        spike_zscore=2.5,
        max_downsize_steps=2,
        cost_increase_tolerance=0.25,
        max_upsize_steps=1,
    ),
    SliderPosition.BEST_PERFORMANCE: SliderParams(
        position=SliderPosition.BEST_PERFORMANCE,
        latency_weight=25.0,
        max_latency_factor=1.0,
        min_auto_suspend=600.0,
        backoff_latency_ratio=1.15,
        spike_zscore=2.0,
        max_downsize_steps=0,
        cost_increase_tolerance=1.0,
        max_upsize_steps=1,
    ),
}


def slider_params(position: SliderPosition | int) -> SliderParams:
    """Expand a slider position into its internal hyper-parameters."""
    return _SLIDER_TABLE[SliderPosition(position)]
