"""Programmatic equivalent of Keebo's web portal (§4.1): KPI computation,
dashboard data assembly, and text rendering."""

from repro.portal.dashboards import (
    ActionsDashboard,
    AttributionDashboard,
    OverheadDashboard,
    SavingsDashboard,
    actions_dashboard,
    attribution_dashboard,
    overhead_dashboard,
    savings_dashboard,
)
from repro.portal.export import (
    actions_to_dict,
    attribution_to_dict,
    kpi_bucket_to_dict,
    optimizer_status_to_dict,
    overhead_to_dict,
    savings_to_dict,
    to_json,
)
from repro.portal.kpis import (
    KpiBucket,
    daily_credits,
    daily_p99_latency,
    kpi_series,
    total_spend,
)
from repro.portal.reports import (
    render_actions,
    render_attribution,
    render_overhead,
    render_savings,
)

__all__ = [
    "KpiBucket",
    "kpi_series",
    "total_spend",
    "daily_credits",
    "daily_p99_latency",
    "SavingsDashboard",
    "savings_dashboard",
    "OverheadDashboard",
    "overhead_dashboard",
    "ActionsDashboard",
    "actions_dashboard",
    "AttributionDashboard",
    "attribution_dashboard",
    "render_savings",
    "render_overhead",
    "render_actions",
    "render_attribution",
    "savings_to_dict",
    "overhead_to_dict",
    "actions_to_dict",
    "attribution_to_dict",
    "kpi_bucket_to_dict",
    "optimizer_status_to_dict",
    "to_json",
]
