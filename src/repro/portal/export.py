"""JSON export of portal dashboards.

The paper's product exposes "an API service for programmatic access" beside
the web portal (§4.1).  These functions serialize dashboard data to plain
JSON-compatible dictionaries, the shape an HTTP layer (or a notebook, or a
plotting script) would consume.
"""

from __future__ import annotations

import json

from repro.core.optimizer import WarehouseOptimizer
from repro.lint.output import dumps_json
from repro.portal.dashboards import (
    ActionsDashboard,
    AttributionDashboard,
    OverheadDashboard,
    SavingsDashboard,
)
from repro.portal.kpis import KpiBucket


def savings_to_dict(dashboard: SavingsDashboard) -> dict:
    return {
        "warehouse": dashboard.warehouse,
        "days": list(dashboard.days),
        "daily_credits": [round(c, 6) for c in dashboard.daily_credits],
        "daily_p99_seconds": [round(p, 6) for p in dashboard.daily_p99],
        "keebo_active": list(dashboard.keebo_active),
        "pre_keebo_daily_mean": round(dashboard.pre_keebo_daily_mean, 6),
        "with_keebo_daily_mean": round(dashboard.with_keebo_daily_mean, 6),
        "savings_fraction": round(dashboard.savings_fraction, 6),
    }


def overhead_to_dict(dashboard: OverheadDashboard) -> dict:
    return {
        "warehouse": dashboard.warehouse,
        "hours": list(dashboard.hours),
        "actual_credits": [round(c, 6) for c in dashboard.actual_credits],
        "overhead_credits": [round(c, 6) for c in dashboard.overhead_credits],
        "estimated_savings": [round(c, 6) for c in dashboard.estimated_savings],
        "overhead_fraction": round(dashboard.total_overhead_fraction, 6),
    }


def actions_to_dict(dashboard: ActionsDashboard) -> dict:
    return {
        "warehouse": dashboard.warehouse,
        "n_changes": dashboard.n_changes,
        "actions": [
            {
                "time": action.time,
                "from": action.from_config.describe(),
                "to": action.to_config.describe(),
                "reason": action.reason,
                "succeeded": action.succeeded,
            }
            for action in dashboard.actions
            if action.changed
        ],
    }


def kpi_bucket_to_dict(bucket: KpiBucket) -> dict:
    return {
        "start": bucket.window.start,
        "end": bucket.window.end,
        "credits": round(bucket.credits, 6),
        "n_queries": bucket.n_queries,
        "avg_latency": round(bucket.avg_latency, 6),
        "p99_latency": round(bucket.p99_latency, 6),
        "avg_queue_seconds": round(bucket.avg_queue_seconds, 6),
        "cost_per_query": round(bucket.cost_per_query, 6),
    }


def optimizer_status_to_dict(optimizer: WarehouseOptimizer) -> dict:
    """The status blob an admin console would poll."""
    return {
        "warehouse": optimizer.warehouse,
        "onboarded": optimizer.onboarded,
        "paused": optimizer.paused,
        "slider": optimizer.params.position.label,
        "decision_counts": optimizer.decision_counts(),
        "guardrail_vetoes": (
            optimizer.smart_model.guardrail_vetoes if optimizer.smart_model else 0
        ),
        "actuator_errors": optimizer.actuator.errors if optimizer.actuator else 0,
        "training_runs": len(optimizer.training_reports),
    }


def attribution_to_dict(dashboard: AttributionDashboard) -> dict:
    """The per-decision savings split plus the calibration report.

    Credits are exported un-rounded: the conservation invariant (shares
    sum bit-exactly to the ledger total) is part of the payload's meaning,
    and rounding would destroy it.
    """
    calibration = dashboard.calibration
    return {
        "warehouse": dashboard.warehouse,
        "n_decisions": dashboard.n_decisions,
        "n_sealed": dashboard.n_sealed,
        "n_entries": dashboard.n_entries,
        "attributed_credits": dashboard.attributed_credits,
        "ledger_credits": dashboard.ledger_credits,
        "conserved": dashboard.conserved,
        "per_decision": {
            str(seq): credits
            for seq, credits in sorted(dashboard.per_decision.items())
        },
        "calibration": {
            "n_sealed": calibration.n_sealed,
            "n_with_prediction": calibration.n_with_prediction,
            "mean_abs_error_credits": round(calibration.mean_abs_error_credits, 6),
            "mean_error_credits": round(calibration.mean_error_credits, 6),
            "total_predicted_credits": round(calibration.total_predicted_credits, 6),
            "total_realized_credits": round(calibration.total_realized_credits, 6),
        },
    }


def to_json(payload: dict, indent: int = 2) -> str:
    """Serialize an exported dict, validating it is JSON-clean.

    Delegates to the repo-wide byte-stable serializer
    (:func:`repro.lint.output.dumps_json`) at the default indent, so
    portal exports and lint/analysis artifacts share one formatting
    contract; a non-default ``indent`` keeps the local path.
    """
    if indent == 2:
        return dumps_json(payload)
    return json.dumps(payload, indent=indent, sort_keys=True) + "\n"
