"""KPI computation for the web-portal dashboards (§4.1 "Dashboards").

The paper's dashboards expose: CDW spend, savings brought by KWO, query
latency and queue times (average and 99th percentile), and cost per query,
filterable by time and warehouse and aggregable daily/weekly/monthly.
These functions compute exactly those series from telemetry + metering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, WEEK, Window
from repro.common.stats import percentile
from repro.warehouse.api import CloudWarehouseClient

#: Supported aggregation granularities (seconds per bucket).
GRANULARITIES = {"hourly": HOUR, "daily": DAY, "weekly": WEEK, "monthly": 28 * DAY}


@dataclass(frozen=True)
class KpiBucket:
    """One aggregation bucket of the KPI time series."""

    window: Window
    credits: float
    n_queries: int
    avg_latency: float
    p99_latency: float
    avg_queue_seconds: float
    p99_queue_seconds: float

    @property
    def cost_per_query(self) -> float:
        return self.credits / self.n_queries if self.n_queries else 0.0


def kpi_series(
    client: CloudWarehouseClient,
    warehouse: str,
    window: Window,
    granularity: str = "daily",
) -> list[KpiBucket]:
    """The KPI time series for one warehouse at a given granularity."""
    if granularity not in GRANULARITIES:
        raise ConfigurationError(
            f"granularity must be one of {sorted(GRANULARITIES)}, got {granularity!r}"
        )
    step = GRANULARITIES[granularity]
    buckets: list[KpiBucket] = []
    t = window.start
    while t < window.end:
        bucket_window = Window(t, min(t + step, window.end))
        records = client.query_history(warehouse, bucket_window)
        credits = client.credits_in_window(warehouse, bucket_window)
        latencies = [r.total_seconds for r in records]
        queues = [r.queued_seconds for r in records]
        buckets.append(
            KpiBucket(
                window=bucket_window,
                credits=credits,
                n_queries=len(records),
                avg_latency=float(np.mean(latencies)) if latencies else 0.0,
                p99_latency=percentile(latencies, 99),
                avg_queue_seconds=float(np.mean(queues)) if queues else 0.0,
                p99_queue_seconds=percentile(queues, 99),
            )
        )
        t = bucket_window.end
    return buckets


def total_spend(client: CloudWarehouseClient, warehouse: str, window: Window) -> float:
    """Total credits billed for a warehouse in ``window``."""
    return client.credits_in_window(warehouse, window)


def daily_credits(
    client: CloudWarehouseClient, warehouse: str, window: Window
) -> list[float]:
    """Per-day credit usage — the bar heights of the paper's Figure 4."""
    return [b.credits for b in kpi_series(client, warehouse, window, "daily")]


def daily_p99_latency(
    client: CloudWarehouseClient, warehouse: str, window: Window
) -> list[float]:
    """Per-day p99 latencies — the line of the paper's Figure 4."""
    return [b.p99_latency for b in kpi_series(client, warehouse, window, "daily")]
