"""Dashboard data assembly: the figures a customer sees in the portal.

Each function returns the plain data series behind one portal view (the
same series the paper plots in its evaluation figures); rendering to text
lives in :mod:`repro.portal.reports`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.simtime import HOUR, Window, hour_index
from repro.core.actuator import AppliedAction
from repro.core.optimizer import WarehouseOptimizer
from repro.obs.provenance import CalibrationReport
from repro.portal.kpis import kpi_series
from repro.warehouse.api import CloudWarehouseClient


@dataclass(frozen=True)
class SavingsDashboard:
    """Daily cost + latency with a with/without-Keebo split (Figure 4)."""

    warehouse: str
    days: list[int]
    daily_credits: list[float]
    daily_p99: list[float]
    keebo_active: list[bool]

    @property
    def pre_keebo_daily_mean(self) -> float:
        vals = [c for c, on in zip(self.daily_credits, self.keebo_active) if not on]
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def with_keebo_daily_mean(self) -> float:
        vals = [c for c, on in zip(self.daily_credits, self.keebo_active) if on]
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def savings_fraction(self) -> float:
        pre = self.pre_keebo_daily_mean
        return (pre - self.with_keebo_daily_mean) / pre if pre > 0 else 0.0


def savings_dashboard(
    client: CloudWarehouseClient,
    warehouse: str,
    window: Window,
    keebo_enabled_at: float,
) -> SavingsDashboard:
    buckets = kpi_series(client, warehouse, window, "daily")
    return SavingsDashboard(
        warehouse=warehouse,
        days=[int(b.window.start // (24 * HOUR)) for b in buckets],
        daily_credits=[b.credits for b in buckets],
        daily_p99=[b.p99_latency for b in buckets],
        keebo_active=[b.window.start >= keebo_enabled_at for b in buckets],
    )


@dataclass(frozen=True)
class OverheadDashboard:
    """Hourly actual usage vs KWO overhead vs estimated savings (Figure 6)."""

    warehouse: str
    hours: list[int]
    actual_credits: list[float]
    overhead_credits: list[float]
    estimated_savings: list[float]

    @property
    def total_overhead_fraction(self) -> float:
        actual = sum(self.actual_credits)
        return sum(self.overhead_credits) / actual if actual > 0 else 0.0


def overhead_dashboard(
    optimizer: WarehouseOptimizer, window: Window
) -> OverheadDashboard:
    """Figure 6's three hourly series for an optimized warehouse."""
    client = optimizer.client
    warehouse = optimizer.warehouse
    metering = client.metering_history(warehouse, window)
    overhead = optimizer.account.overhead.hourly_rollup(window)
    without = optimizer.cost_model.estimate_without_keebo(window)
    hours = sorted(range(hour_index(window.start), hour_index(window.end - 1e-9) + 1))
    actual = [metering.get(h, 0.0) for h in hours]
    est_without = [without.hourly_credits.get(h, 0.0) for h in hours]
    savings = [max(w - a, 0.0) for w, a in zip(est_without, actual)]
    return OverheadDashboard(
        warehouse=warehouse,
        hours=hours,
        actual_credits=actual,
        overhead_credits=[overhead.get(h, 0.0) for h in hours],
        estimated_savings=savings,
    )


@dataclass(frozen=True)
class ActionsDashboard:
    """Real-time visibility into the actions taken (§4.1 "full visibility")."""

    warehouse: str
    actions: list[AppliedAction] = field(default_factory=list)

    @property
    def n_changes(self) -> int:
        return sum(1 for a in self.actions if a.changed)


def actions_dashboard(optimizer: WarehouseOptimizer, window: Window) -> ActionsDashboard:
    actions = [
        a
        for a in (optimizer.actuator.log if optimizer.actuator else [])
        if window.contains(a.time)
    ]
    return ActionsDashboard(warehouse=optimizer.warehouse, actions=actions)


@dataclass(frozen=True)
class AttributionDashboard:
    """Where the savings number comes from, decision by decision (§4.1).

    ``per_decision`` maps decision seq (or
    :data:`repro.obs.provenance.UNATTRIBUTED`) to attributed credits;
    ``calibration`` is the predicted-vs-realized report over the sealed
    decisions in the window.
    """

    warehouse: str
    n_decisions: int
    n_sealed: int
    n_entries: int
    attributed_credits: float
    ledger_credits: float
    conserved: bool
    per_decision: dict[int, float]
    calibration: CalibrationReport


def attribution_dashboard(
    optimizer: WarehouseOptimizer, window: Window
) -> AttributionDashboard:
    """The attribution + calibration view of one optimizer's window.

    Windowing filters the *decisions* shown; the conservation numbers are
    whole-run (conservation is a property of the full ledger, not a slice).
    """
    log = optimizer.provenance
    records = [r for r in log.records if window.contains(r.time)]
    ledger_credits = optimizer.ledger.total_savings_credits()
    attributed = log.attribution.total_attributed_credits()
    return AttributionDashboard(
        warehouse=optimizer.warehouse,
        n_decisions=len(records),
        n_sealed=sum(1 for r in records if r.sealed),
        n_entries=len(log.attribution.entries),
        attributed_credits=attributed,
        ledger_credits=ledger_credits,
        conserved=attributed == ledger_credits,
        per_decision=log.attribution.per_decision_credits(),
        calibration=CalibrationReport.from_records(records),
    )
