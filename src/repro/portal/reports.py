"""Plain-text rendering of portal dashboards (terminal-friendly).

Benchmarks and examples print these to show the same views the paper's
Figures 2, 4 and 6 screenshot; no plotting dependency is available offline.
"""

from __future__ import annotations

from repro.portal.dashboards import (
    ActionsDashboard,
    AttributionDashboard,
    OverheadDashboard,
    SavingsDashboard,
)

_BAR_WIDTH = 40


def _bar(value: float, maximum: float, fill: str) -> str:
    if maximum <= 0:
        return ""
    n = int(round(_BAR_WIDTH * value / maximum))
    return fill * max(0, min(n, _BAR_WIDTH))


def render_savings(dashboard: SavingsDashboard) -> str:
    """Figure-4-style daily bars: '#' pre-Keebo, '=' with Keebo."""
    lines = [
        f"Daily credit usage — warehouse {dashboard.warehouse}",
        f"{'day':>4} {'credits':>9} {'p99 (s)':>8}  usage",
    ]
    peak = max(dashboard.daily_credits, default=0.0)
    for day, credits, p99, active in zip(
        dashboard.days, dashboard.daily_credits, dashboard.daily_p99, dashboard.keebo_active
    ):
        fill = "=" if active else "#"
        tag = "keebo" if active else "pre"
        lines.append(
            f"{day:>4} {credits:>9.2f} {p99:>8.2f}  {_bar(credits, peak, fill):<40} {tag}"
        )
    lines.append(
        f"mean/day: pre={dashboard.pre_keebo_daily_mean:.2f} "
        f"with-keebo={dashboard.with_keebo_daily_mean:.2f} "
        f"savings={dashboard.savings_fraction:.1%}"
    )
    return "\n".join(lines)


def render_overhead(dashboard: OverheadDashboard) -> str:
    """Figure-6-style hourly table: actual vs overhead vs estimated savings."""
    lines = [
        f"Hourly usage — warehouse {dashboard.warehouse}",
        f"{'hour':>5} {'actual':>9} {'overhead':>9} {'est.savings':>12} {'total(no keebo)':>16}",
    ]
    for h, actual, overhead, savings in zip(
        dashboard.hours,
        dashboard.actual_credits,
        dashboard.overhead_credits,
        dashboard.estimated_savings,
    ):
        lines.append(
            f"{h:>5} {actual:>9.3f} {overhead:>9.4f} {savings:>12.3f} {actual + savings:>16.3f}"
        )
    lines.append(f"overhead / actual usage: {dashboard.total_overhead_fraction:.4%}")
    return "\n".join(lines)


def render_run_report(
    records: list[dict],
    profile,
    critical: list[dict],
    slo_report=None,
    top: int = 15,
) -> str:
    """Markdown per-run report assembled from a trace's records.

    Sections: run manifest, savings over sim time (from
    ``optimizer.savings_report`` events), the alert fire/resolve timeline,
    decision provenance and what-if calibration (from the
    ``provenance.*`` events), SLO evaluation (when a series sidecar was
    available) and the span profile with its critical path.  Pure function
    of its inputs, so same-seed runs render byte-identical reports.

    ``profile``/``critical`` come from :mod:`repro.obs.profile`;
    ``slo_report`` is a :class:`repro.obs.slo.SLOReport` or ``None``.
    """
    lines: list[str] = []
    manifests = [r for r in records if r.get("type") == "manifest"]
    title = "run"
    if manifests:
        m = manifests[0]
        title = f"`{m.get('scenario', '?')}` (seed {m.get('seed', '?')})"
    lines += [f"# Run report — {title}", ""]
    for m in manifests:
        lines += [
            f"- scenario: `{m.get('scenario')}`  seed: `{m.get('seed')}`  "
            f"slider: `{m.get('slider')}`",
            f"- config hash: `{m.get('config_hash')}`  version: "
            f"`{m.get('version')}`  trace schema: `{m.get('schema')}`",
        ]
    n_spans = sum(1 for r in records if r.get("type") == "span")
    n_events = sum(1 for r in records if r.get("type") == "event")
    lines += [f"- records: {len(records)} ({n_spans} spans, {n_events} events)", ""]

    savings = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") == "optimizer.savings_report"
    ]
    lines += ["## Savings over time", ""]
    if savings:
        lines += ["| sim time | warehouse | savings |", "| --- | --- | --- |"]
        for event in savings:
            attrs = event.get("attrs", {})
            lines.append(
                f"| {event['time']:.0f}s | {attrs.get('warehouse', '?')} "
                f"| {attrs.get('savings_fraction', 0.0):+.1%} |"
            )
    else:
        lines.append("_No savings reports in this trace._")
    lines.append("")

    alert_rows = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") in ("alert.fire", "alert.resolve")
    ]
    lines += ["## Alert timeline", ""]
    if alert_rows:
        lines += [
            "| sim time | state | severity | alert | detail |",
            "| --- | --- | --- | --- | --- |",
        ]
        for row in alert_rows:
            attrs = row.get("attrs", {})
            state = "fire" if row["name"] == "alert.fire" else "resolve"
            if state == "resolve":
                detail = f"after {attrs.get('duration', 0.0):.0f}s"
                if attrs.get("refires"):
                    detail += f", {attrs['refires']} re-fires"
            else:
                detail = str(attrs.get("reason", ""))
            lines.append(
                f"| {row['time']:.0f}s | {state} | {attrs.get('severity', '?')} "
                f"| `{attrs.get('alert', '?')}` | {detail} |"
            )
    else:
        lines.append("_No alerts fired during this run._")
    lines.append("")

    lines += _provenance_section(records)
    lines += _live_ledger_section(records)

    if slo_report is not None:
        lines += ["## SLOs", ""]
        if slo_report.results:
            lines += [
                "| SLO | objective | buckets | bad | compliance | status |",
                "| --- | --- | --- | --- | --- | --- |",
            ]
            for result in sorted(slo_report.results, key=lambda r: r.spec.name):
                spec = result.spec
                status = "ok" if result.ok else f"{len(result.violations)} violation(s)"
                lines.append(
                    f"| `{spec.name}` | {spec.aggregate}(`{spec.metric}`) "
                    f"{spec.op} {spec.threshold:g} | {result.buckets_evaluated} "
                    f"| {result.bad_buckets} | {result.compliance:.1%} | {status} |"
                )
            violations = slo_report.violations
            if violations:
                lines += [
                    "",
                    "| violation | fired | resolved | peak burn |",
                    "| --- | --- | --- | --- |",
                ]
                for v in violations:
                    resolved = (
                        f"{v.resolved_at:.0f}s" if v.resolved_at is not None else "open"
                    )
                    lines.append(
                        f"| `{v.slo}` | {v.fired_at:.0f}s | {resolved} "
                        f"| {v.peak_burn:.0%} |"
                    )
        else:
            lines.append("_No SLO had a recorded series to evaluate._")
        lines.append("")

    lines += [f"## Span profile (top {top} by total sim-time)", ""]
    if profile.spans:
        lines += [
            "| span | count | total s | self s | min s | max s |",
            "| --- | --- | --- | --- | --- | --- |",
        ]
        for stats in profile.top(top):
            lines.append(
                f"| `{stats.name}` | {stats.count} | {stats.total_time:.3f} "
                f"| {stats.self_time:.3f} | {stats.min_time:.3f} "
                f"| {stats.max_time:.3f} |"
            )
        if critical:
            chain = " → ".join(f"`{row['name']}`" for row in critical)
            lines += ["", f"Critical path: {chain}"]
    else:
        lines.append("_No spans in this trace._")
    lines.append("")
    return "\n".join(lines)


def _provenance_section(records: list[dict]) -> list[str]:
    """The decision-provenance block of the run report (schema v3)."""
    decisions = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") == "provenance.decision"
    ]
    outcomes = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") == "provenance.outcome"
    ]
    lines = ["## Decision provenance & calibration", ""]
    if not decisions:
        lines += ["_No provenance events in this trace._", ""]
        return lines
    by_code: dict[str, int] = {}
    for row in decisions:
        code = str(row.get("attrs", {}).get("reason_code", "") or "?")
        by_code[code] = by_code.get(code, 0) + 1
    lines += [
        f"- decisions: {len(decisions)} ({len(outcomes)} sealed with a "
        f"realized outcome)",
        "",
        "| reason code | count |",
        "| --- | --- |",
    ]
    for code in sorted(by_code, key=lambda c: (-by_code[c], c)):
        lines.append(f"| `{code}` | {by_code[code]} |")
    errors = [
        r.get("attrs", {}).get("error_credits")
        for r in outcomes
        if r.get("attrs", {}).get("error_credits") is not None
    ]
    if errors:
        mean_abs = sum(abs(e) for e in errors) / len(errors)
        mean = sum(errors) / len(errors)
        lines += [
            "",
            f"What-if calibration over {len(errors)} predicted intervals: "
            f"mean |error| {mean_abs:.4f} credits, mean signed error "
            f"{mean:+.4f} credits (positive = realized cost more than "
            f"predicted).",
        ]
    lines.append("")
    return lines


def _live_ledger_section(records: list[dict]) -> list[str]:
    """Streamed-vs-full reconciliations (``ledger.live_reconcile`` events).

    Only rendered when the run enabled the live ledger: an aligned
    exact-mode reconciliation with non-zero divergence is flagged loudly —
    it means the O(delta) streaming ledger stopped being bit-identical to
    the full replay, an invariant break rather than estimation noise.
    """
    rows = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") == "ledger.live_reconcile"
    ]
    if not rows:
        return []
    lines = [
        "## Live ledger reconciliations",
        "",
        "| sim time | warehouse | rows | projected | estimated | divergence |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    broken = 0
    for row in rows:
        attrs = row.get("attrs", {})
        divergence = float(attrs.get("divergence", 0.0))
        aligned = bool(attrs.get("aligned", False))
        if aligned and divergence != 0.0:
            broken += 1
        note = f"{divergence:g}" if aligned else "(unaligned period)"
        lines.append(
            f"| {row['time']:.0f}s | {attrs.get('warehouse', '?')} "
            f"| {attrs.get('rows_streamed', 0)} "
            f"| {attrs.get('projected_credits', 0.0):.4f} "
            f"| {attrs.get('estimated_credits', 0.0):.4f} | {note} |"
        )
    if broken:
        lines += [
            "",
            f"**{broken} aligned reconciliation(s) diverged from the full "
            "replay — the incremental ledger invariant is broken.**",
        ]
    else:
        lines += [
            "",
            "Every aligned reconciliation matched the full replay bit for bit.",
        ]
    lines.append("")
    return lines


def render_attribution(dashboard: AttributionDashboard, limit: int = 10) -> str:
    """The savings-attribution view: who earned the credits."""
    status = "conserved" if dashboard.conserved else "CONSERVATION VIOLATED"
    lines = [
        f"Savings attribution — warehouse {dashboard.warehouse}",
        f"  {dashboard.n_entries} ledger entries split across "
        f"{dashboard.n_decisions} decisions ({dashboard.n_sealed} sealed)",
        f"  attributed={dashboard.attributed_credits:.6f}cr "
        f"ledger={dashboard.ledger_credits:.6f}cr  [{status}]",
    ]
    ranked = sorted(
        dashboard.per_decision.items(), key=lambda item: (-item[1], item[0])
    )[:limit]
    for seq, credits in ranked:
        label = f"decision {seq}" if seq >= 0 else "unattributed"
        lines.append(f"  {label:<16} {credits:>+12.6f}cr")
    if not ranked:
        lines.append("  (no savings attributed yet)")
    calibration = dashboard.calibration
    if calibration.n_with_prediction:
        lines.append(
            f"  calibration: mean |err|="
            f"{calibration.mean_abs_error_credits:.5f}cr over "
            f"{calibration.n_with_prediction} predictions"
        )
    return "\n".join(lines)


def render_actions(dashboard: ActionsDashboard, limit: int = 20) -> str:
    """The real-time action log view."""
    lines = [f"Actions on {dashboard.warehouse} ({dashboard.n_changes} changes)"]
    shown = [a for a in dashboard.actions if a.changed][-limit:]
    for a in shown:
        lines.append(
            f"  t={a.time:>10.0f}s  {a.from_config.describe()}  ->  "
            f"{a.to_config.describe()}  [{a.reason}]"
        )
    if not shown:
        lines.append("  (no configuration changes)")
    return "\n".join(lines)


def render_watchtower(report: dict) -> str:
    """Markdown rendering of a fleet watchtower report (obs.watchtower).

    Same information as the text rendering, shaped for the portal: a
    verdict line, a per-warehouse fact table, and one findings table.  A
    pure function of the report dict, so same-store reports render to
    identical bytes (CI archives this next to the JSON report).
    """
    store = report["store"]
    verdict = "OK" if report["ok"] else "REGRESSION"
    baseline = (
        "no baseline (absolute checks only)"
        if report["baseline_runs"] is None
        else f"baseline over {report['baseline_runs']} run(s)"
    )
    lines = [
        "# Fleet watchtower",
        "",
        f"**Verdict: {verdict}** — {len(store['runs'])} run(s), "
        f"{len(store['warehouses'])} warehouse(s), {store['rows']} store rows; "
        f"{baseline}.",
        "",
        "## Warehouses",
        "",
        "| warehouse | attributed (cr) | decisions | sealed | mean \\|err\\| (cr) |",
        "|---|---:|---:|---:|---:|",
    ]
    for name, facts in report["current"]["warehouses"].items():
        lines.append(
            f"| {name} | {facts['attributed_credits']:+.6f} "
            f"| {facts['n_decisions']} | {facts['n_sealed']} "
            f"| {facts['mean_abs_error_credits']:.5f} |"
        )
    lines += ["", "## Findings", ""]
    if report["findings"]:
        lines += [
            "| severity | kind | subject | detail |",
            "|---|---|---|---|",
        ]
        for finding in report["findings"]:
            lines.append(
                f"| {finding['severity']} | {finding['kind']} "
                f"| {finding['subject']} | {finding['message']} |"
            )
    else:
        lines.append("No findings: the fleet is where the baseline says it should be.")
    lines.append("")
    return "\n".join(lines)


def render_recovery(report: dict) -> str:
    """Markdown rendering of a crash-recovery report (durability smoke).

    A pure function of the report dict
    (:meth:`repro.experiments.crash.RecoveryRunResult.report`), so
    same-run reports render to identical bytes — CI archives this next
    to the JSON report.
    """
    verdict = "OK" if report["ok"] else "FAILED"
    lines = [
        "# Crash recovery",
        "",
        f"**Verdict: {verdict}** — scenario `{report['scenario']}` "
        f"(seed {report['seed']}), fault `{report['kind']}` at checkpoint "
        f"boundary {report['crash_boundary']} "
        f"(cadence {report['cadence_seconds']:g} s).",
        "",
        f"- crashes: {report['crashes']}",
        f"- recovered: {report['recovered']}",
        f"- journal repairs: {report['repairs']}",
        f"- `service.restore` events: {report['restore_events']}",
    ]
    if report["recovery_error"]:
        lines.append(f"- refusal: `{report['recovery_error']}`")
    lines += ["", "## Exports vs the uninterrupted run", ""]
    if report["recovered"]:
        lines += ["| export | byte-identical |", "|---|---|"]
        for name, same in report["identical"].items():
            lines.append(f"| {name} | {'yes' if same else 'DIVERGED'} |")
    else:
        lines.append(
            "_No exports were produced by the crashed twin: restore refused "
            "the damaged artifacts (the expected outcome for detection "
            "fault kinds)._"
        )
    return "\n".join(lines) + "\n"
