"""Plain-text rendering of portal dashboards (terminal-friendly).

Benchmarks and examples print these to show the same views the paper's
Figures 2, 4 and 6 screenshot; no plotting dependency is available offline.
"""

from __future__ import annotations

from repro.portal.dashboards import ActionsDashboard, OverheadDashboard, SavingsDashboard

_BAR_WIDTH = 40


def _bar(value: float, maximum: float, fill: str) -> str:
    if maximum <= 0:
        return ""
    n = int(round(_BAR_WIDTH * value / maximum))
    return fill * max(0, min(n, _BAR_WIDTH))


def render_savings(dashboard: SavingsDashboard) -> str:
    """Figure-4-style daily bars: '#' pre-Keebo, '=' with Keebo."""
    lines = [
        f"Daily credit usage — warehouse {dashboard.warehouse}",
        f"{'day':>4} {'credits':>9} {'p99 (s)':>8}  usage",
    ]
    peak = max(dashboard.daily_credits, default=0.0)
    for day, credits, p99, active in zip(
        dashboard.days, dashboard.daily_credits, dashboard.daily_p99, dashboard.keebo_active
    ):
        fill = "=" if active else "#"
        tag = "keebo" if active else "pre"
        lines.append(
            f"{day:>4} {credits:>9.2f} {p99:>8.2f}  {_bar(credits, peak, fill):<40} {tag}"
        )
    lines.append(
        f"mean/day: pre={dashboard.pre_keebo_daily_mean:.2f} "
        f"with-keebo={dashboard.with_keebo_daily_mean:.2f} "
        f"savings={dashboard.savings_fraction:.1%}"
    )
    return "\n".join(lines)


def render_overhead(dashboard: OverheadDashboard) -> str:
    """Figure-6-style hourly table: actual vs overhead vs estimated savings."""
    lines = [
        f"Hourly usage — warehouse {dashboard.warehouse}",
        f"{'hour':>5} {'actual':>9} {'overhead':>9} {'est.savings':>12} {'total(no keebo)':>16}",
    ]
    for h, actual, overhead, savings in zip(
        dashboard.hours,
        dashboard.actual_credits,
        dashboard.overhead_credits,
        dashboard.estimated_savings,
    ):
        lines.append(
            f"{h:>5} {actual:>9.3f} {overhead:>9.4f} {savings:>12.3f} {actual + savings:>16.3f}"
        )
    lines.append(f"overhead / actual usage: {dashboard.total_overhead_fraction:.4%}")
    return "\n".join(lines)


def render_actions(dashboard: ActionsDashboard, limit: int = 20) -> str:
    """The real-time action log view."""
    lines = [f"Actions on {dashboard.warehouse} ({dashboard.n_changes} changes)"]
    shown = [a for a in dashboard.actions if a.changed][-limit:]
    for a in shown:
        lines.append(
            f"  t={a.time:>10.0f}s  {a.from_config.describe()}  ->  "
            f"{a.to_config.describe()}  [{a.reason}]"
        )
    if not shown:
        lines.append("  (no configuration changes)")
    return "\n".join(lines)
