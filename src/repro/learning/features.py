"""State featurization for the smart model (§6.1's training data, §6's DRL).

The state the agent sees is built purely from telemetry metadata and the
live warehouse status — never from query text or customer data (C6).  It
captures the four inputs the paper says smart models consult: historical
patterns (time-of-day encodings, arrival EWMAs), the current configuration,
real-time feedback (queueing, latency vs. baseline) and workload pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.simtime import DAY, HOUR, Window, day_of_week, hour_of_day
from repro.common.stats import percentile
from repro.durability.codec import decode_array, encode_array, require_keys
from repro.warehouse.api import WarehouseInfo
from repro.warehouse.config import MAX_CLUSTER_COUNT, WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

#: Number of entries in the feature vector (kept explicit so agents can be
#: constructed before any telemetry exists).
FEATURE_DIM = 22


@dataclass
class WorkloadBaseline:
    """Per-warehouse baselines fitted on the pre-optimization history.

    Used to normalize features (and by the monitor to define "degraded").
    """

    p99_latency: float = 10.0
    avg_latency: float = 5.0
    arrivals_per_hour_by_hour: np.ndarray | None = None  # shape (24,)
    #: 99th percentile, over pre-optimization history, of the ratio between a
    #: 15-minute window's p99 and the global baseline p99.  This is what
    #: "normal p99 volatility" looks like *without* any optimizer — backoff
    #: thresholds below it would thrash on ordinary workload noise.
    window_p99_ratio_q99: float = 1.5

    @classmethod
    def fit(cls, records: list[QueryRecord], window_seconds: float = 900.0) -> "WorkloadBaseline":
        if not records:
            return cls()
        latencies = [r.total_seconds for r in records]
        p99 = max(percentile(latencies, 99), 1e-3)
        by_hour = np.zeros(24)
        start = min(r.arrival_time for r in records)
        end = max(r.arrival_time for r in records)
        for r in records:
            by_hour[int(hour_of_day(r.arrival_time))] += 1
        n_days = max(1.0, (end - start) / DAY)
        return cls(
            p99_latency=p99,
            avg_latency=max(float(np.mean(latencies)), 1e-3),
            arrivals_per_hour_by_hour=by_hour / n_days,
            window_p99_ratio_q99=cls._window_ratio_q99(records, p99, window_seconds),
        )

    @staticmethod
    def _window_ratio_q99(
        records: list[QueryRecord], global_p99: float, window_seconds: float
    ) -> float:
        """Distribution of short-window p99/global-p99 ratios in history."""
        start = min(r.arrival_time for r in records)
        end = max(r.arrival_time for r in records)
        ratios: list[float] = []
        t = start
        ordered = sorted(records, key=lambda r: r.arrival_time)
        i = 0
        while t < end:
            bucket = []
            while i < len(ordered) and ordered[i].arrival_time < t + window_seconds:
                bucket.append(ordered[i].total_seconds)
                i += 1
            if len(bucket) >= 5:
                ratios.append(percentile(bucket, 99) / global_p99)
            t += window_seconds
        if not ratios:
            return 1.5
        return max(percentile(ratios, 99), 1.0)

    def expected_arrivals_per_hour(self, t: float) -> float:
        if self.arrivals_per_hour_by_hour is None:
            return 0.0
        return float(self.arrivals_per_hour_by_hour[int(hour_of_day(t))])

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {
            "p99_latency": self.p99_latency,
            "avg_latency": self.avg_latency,
            "arrivals_per_hour_by_hour": (
                None
                if self.arrivals_per_hour_by_hour is None
                else encode_array(self.arrivals_per_hour_by_hour)
            ),
            "window_p99_ratio_q99": self.window_p99_ratio_q99,
        }

    @classmethod
    def from_state(cls, state: dict) -> "WorkloadBaseline":
        require_keys(
            state,
            ("p99_latency", "avg_latency", "arrivals_per_hour_by_hour", "window_p99_ratio_q99"),
            "WorkloadBaseline",
        )
        by_hour = state["arrivals_per_hour_by_hour"]
        return cls(
            p99_latency=float(state["p99_latency"]),
            avg_latency=float(state["avg_latency"]),
            arrivals_per_hour_by_hour=None if by_hour is None else decode_array(by_hour),
            window_p99_ratio_q99=float(state["window_p99_ratio_q99"]),
        )


class FeatureExtractor:
    """Builds the fixed-size state vector for one warehouse."""

    def __init__(self, baseline: WorkloadBaseline, original: WarehouseConfig):
        self.baseline = baseline
        self.original = original

    def extract(
        self,
        now: float,
        recent: list[QueryRecord],
        previous: list[QueryRecord],
        info: WarehouseInfo,
    ) -> np.ndarray:
        """State at ``now``.

        ``recent`` is the last decision interval's completed queries,
        ``previous`` the interval before (so the agent can see trends), and
        ``info`` the live warehouse status.
        """
        config = info.config
        h = hour_of_day(now) / 24.0
        d = day_of_week(now) / 7.0
        lat_recent = [r.total_seconds for r in recent]
        exec_recent = [r.execution_seconds for r in recent]
        queue_recent = [r.queued_seconds for r in recent]
        hits = [r.cache_hit_ratio for r in recent]
        expected_rate = self.baseline.expected_arrivals_per_hour(now)
        features = np.array(
            [
                np.sin(2 * np.pi * h),
                np.cos(2 * np.pi * h),
                np.sin(2 * np.pi * d),
                np.cos(2 * np.pi * d),
                np.log1p(len(recent)),
                np.log1p(len(previous)),
                np.log1p(expected_rate),
                np.log1p(float(np.mean(exec_recent)) if exec_recent else 0.0),
                np.log1p(percentile(lat_recent, 99)),
                np.log1p(float(np.mean(queue_recent)) if queue_recent else 0.0),
                # Performance relative to the pre-optimization baseline: the
                # key self-correction signal.
                min(percentile(lat_recent, 99) / self.baseline.p99_latency, 5.0)
                if lat_recent
                else 0.0,
                float(np.mean(hits)) if hits else 1.0,
                np.log1p(info.queue_length),
                np.log1p(info.running_queries),
                info.active_clusters / MAX_CLUSTER_COUNT,
                config.size.value / WarehouseSize.SIZE_6XL.value,
                (config.size.value - self.original.size.value) / 4.0,
                np.log1p(config.auto_suspend_seconds) / np.log1p(3600.0),
                config.max_clusters / MAX_CLUSTER_COUNT,
                (config.max_clusters - self.original.max_clusters)
                / MAX_CLUSTER_COUNT,
                1.0 if info.state.value == "suspended" else 0.0,
                min(len(recent) / max(expected_rate / (HOUR / 600.0), 1.0), 5.0),
            ],
            dtype=float,
        )
        assert features.shape == (FEATURE_DIM,)
        return features


def interval_windows(now: float, interval: float) -> tuple[Window, Window]:
    """The (recent, previous) telemetry windows for feature extraction."""
    recent = Window(max(0.0, now - interval), now)
    previous = Window(max(0.0, now - 2 * interval), max(0.0, now - interval))
    return recent, previous
