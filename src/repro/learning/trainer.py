"""Offline training loop (Algorithm 1, lines 13-16: periodic retraining).

The trainer runs the DQN against :class:`~repro.learning.env.WarehouseEnv`
episodes built from historical telemetry.  Each episode replays the same
history under a fresh simulator seed, so the agent experiences workload
noise without ever touching live customer infrastructure — the paper's key
advantage over online-RL query optimizers (§8: "our DRL model benefits from
having access to large historical telemetry data").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.learning.agent import DQNAgent
from repro.learning.buffer import Transition
from repro.learning.env import WarehouseEnv


@dataclass
class EpisodeStats:
    total_reward: float
    total_credits: float
    mean_loss: float
    steps: int


@dataclass
class TrainingReport:
    episodes: list[EpisodeStats] = field(default_factory=list)

    @property
    def final_reward(self) -> float:
        return self.episodes[-1].total_reward if self.episodes else 0.0

    @property
    def reward_curve(self) -> list[float]:
        return [e.total_reward for e in self.episodes]

    @property
    def credits_curve(self) -> list[float]:
        return [e.total_credits for e in self.episodes]


class OfflineTrainer:
    """Trains one per-warehouse agent on reconstructed history."""

    def __init__(self, agent: DQNAgent, env: WarehouseEnv):
        self.agent = agent
        self.env = env

    def run(self, episodes: int) -> TrainingReport:
        report = TrainingReport()
        for _ in range(episodes):
            report.episodes.append(self._run_episode())
        return report

    def _run_episode(self) -> EpisodeStats:
        state = self.env.reset()
        mask = self.env.current_mask()
        total_reward = 0.0
        total_credits = 0.0
        losses: list[float] = []
        steps = 0
        done = False
        while not done:
            action = self.agent.act(state, mask, explore=True)
            outcome = self.env.step(action)
            next_mask = self.env.current_mask()
            loss = self.agent.observe(
                Transition(
                    state=state,
                    action=action,
                    reward=outcome.reward,
                    next_state=outcome.state,
                    done=outcome.done,
                    next_mask=next_mask,
                )
            )
            if loss is not None:
                losses.append(loss)
            state = outcome.state
            mask = next_mask
            total_reward += outcome.reward
            total_credits += outcome.credits
            done = outcome.done
            steps += 1
        return EpisodeStats(
            total_reward=total_reward,
            total_credits=total_credits,
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            steps=steps,
        )
