"""DQN agent with action masking and a target network (§6's DRL framework).

A vanilla DQN (Mnih et al., cited by the paper) adapted for constrained
action spaces: both action selection and the TD target max are restricted to
admissible actions, so the agent never learns values through actions the
constraint engine would cancel anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import fallback_rng
from repro.durability.codec import require_keys
from repro.learning.buffer import ReplayBuffer, Transition
from repro.learning.network import MLP


@dataclass
class DQNConfig:
    """Agent hyper-parameters."""

    hidden: tuple[int, ...] = (64, 64)
    learning_rate: float = 1e-3
    discount: float = 0.97
    batch_size: int = 64
    buffer_capacity: int = 50000
    target_sync_every: int = 200
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 600
    #: Minimum buffered transitions before learning starts.
    warmup: int = 200
    #: Double DQN (van Hasselt): select the bootstrap action with the online
    #: network, evaluate it with the target network.  Reduces the max-
    #: operator's overestimation bias, which matters here because rewards
    #: are noisy (workload noise dwarfs many actions' true value gaps).
    double_dqn: bool = False


class DQNAgent:
    """Q-learning over the warehouse action space."""

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        config: DQNConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        if n_actions < 2:
            raise ConfigurationError("need at least two actions")
        self.config = config or DQNConfig()
        self.rng = rng or fallback_rng()
        self.n_actions = n_actions
        self.online = MLP(
            state_dim, n_actions, self.config.hidden, self.rng, self.config.learning_rate
        )
        self.target = MLP(
            state_dim, n_actions, self.config.hidden, self.rng, self.config.learning_rate
        )
        self.target.clone_weights_from(self.online)
        self.buffer = ReplayBuffer(self.config.buffer_capacity)
        self.train_steps = 0
        self.env_steps = 0

    # -------------------------------------------------------------- policies
    @property
    def epsilon(self) -> float:
        cfg = self.config
        frac = min(1.0, self.env_steps / max(cfg.epsilon_decay_steps, 1))
        return cfg.epsilon_start + frac * (cfg.epsilon_end - cfg.epsilon_start)

    def act(self, state: np.ndarray, mask: np.ndarray, explore: bool = True) -> int:
        """Pick an admissible action (epsilon-greedy during training)."""
        if not mask.any():
            raise ConfigurationError("action mask excludes every action")
        if explore:
            self.env_steps += 1
            if self.rng.random() < self.epsilon:
                allowed = np.flatnonzero(mask)
                return int(self.rng.choice(allowed))
        return self.greedy_action(state, mask)

    def greedy_action(self, state: np.ndarray, mask: np.ndarray) -> int:
        q = self.online.forward(state)
        q = np.where(mask, q, -np.inf)
        return int(np.argmax(q))

    def q_values(self, state: np.ndarray) -> np.ndarray:
        return self.online.forward(state)

    # -------------------------------------------------------------- learning
    def observe(self, transition: Transition) -> float | None:
        """Store a transition and (maybe) do one learning step."""
        self.buffer.add(transition)
        if len(self.buffer) < max(self.config.warmup, self.config.batch_size):
            return None
        return self.learn_step()

    def learn_step(self) -> float:
        batch = self.buffer.sample(self.config.batch_size, self.rng)
        states, actions, rewards, next_states, dones, next_masks = self.buffer.as_batches(
            batch
        )
        target_q = self.target.forward(next_states)
        if self.config.double_dqn:
            online_q = np.where(next_masks, self.online.forward(next_states), -np.inf)
            # Guard fully-masked rows before argmax (bootstrap handled below).
            selectable = np.isfinite(online_q).any(axis=1)
            choices = np.argmax(
                np.where(selectable[:, None], online_q, 0.0), axis=1
            )
            best_next = target_q[np.arange(len(choices)), choices]
            best_next = np.where(selectable, best_next, -np.inf)
        else:
            next_q = np.where(next_masks, target_q, -np.inf)
            best_next = next_q.max(axis=1)
        # Terminal states (or states with no admissible action) bootstrap 0.
        best_next = np.where(np.isfinite(best_next), best_next, 0.0)
        targets = rewards + np.where(dones, 0.0, self.config.discount * best_next)
        loss = self.online.train_step(states, actions, targets)
        self.train_steps += 1
        if self.train_steps % self.config.target_sync_every == 0:
            self.target.clone_weights_from(self.online)
        return loss

    # ----------------------------------------------------------- persistence
    def snapshot(self) -> list[np.ndarray]:
        """Weights for checkpointing (models are per-warehouse, never shared)."""
        return self.online.get_parameters()

    def restore(self, params: list[np.ndarray]) -> None:
        self.online.set_parameters(params)
        self.target.set_parameters(params)

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        """Everything mutable: both networks (with optimizer moments), the
        replay buffer, and the step counters (StateCodec).

        The exploration RNG is *not* captured here — it is a registry
        stream (``keebo.agent.<wh>``) restored by the service alongside
        every other stream.
        """
        return {
            "online": self.online.state_dict(),
            "target": self.target.state_dict(),
            "buffer": self.buffer.state_dict(),
            "train_steps": self.train_steps,
            "env_steps": self.env_steps,
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state, ("online", "target", "buffer", "train_steps", "env_steps"), "DQNAgent"
        )
        self.online.load_state_dict(state["online"])
        self.target.load_state_dict(state["target"])
        self.buffer.load_state_dict(state["buffer"])
        self.train_steps = int(state["train_steps"])
        self.env_steps = int(state["env_steps"])
