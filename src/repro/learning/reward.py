"""Reward shaping: the cost/performance trade-off the slider controls (§7.4).

Per decision interval the agent receives

``reward = -(credits spent) - λ · performance_penalty``

where λ comes from the slider position.  The performance penalty combines
queueing, p99 latency degradation versus the pre-optimization baseline, and
a small term for dropped caches (cold reads a user would notice).  Credits
are normalized by the original configuration's full-rate spend for the
interval so rewards live on a comparable scale across warehouse sizes —
without this, an XS warehouse's rewards would be invisible next to a 4XL's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.simtime import HOUR
from repro.common.stats import percentile
from repro.learning.features import WorkloadBaseline
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord


@dataclass(frozen=True)
class RewardConfig:
    """Weights of the reward; produced from the slider position."""

    latency_weight: float = 4.0
    queue_weight: float = 2.0
    cold_weight: float = 0.25
    #: p99/baseline ratios below this are not penalized at all (noise band).
    latency_tolerance: float = 1.1


def interval_reward(
    credits_spent: float,
    interval_seconds: float,
    records: list[QueryRecord],
    baseline: WorkloadBaseline,
    original: WarehouseConfig,
    weights: RewardConfig,
) -> float:
    """Reward for one decision interval."""
    # --- cost term, normalized by the original config's full-rate spend.
    reference = (
        original.size.credits_per_hour * original.max_clusters * interval_seconds / HOUR
    )
    cost_term = credits_spent / max(reference, 1e-9)

    # --- performance terms.
    if records:
        p99 = percentile([r.total_seconds for r in records], 99)
        latency_ratio = p99 / baseline.p99_latency
        latency_pen = max(0.0, latency_ratio - weights.latency_tolerance)
        queue_pen = float(np.mean([r.queued_seconds for r in records])) / max(
            baseline.avg_latency, 1.0
        )
        cold_pen = float(np.mean([1.0 - r.cache_hit_ratio for r in records]))
    else:
        latency_pen = queue_pen = cold_pen = 0.0

    penalty = (
        weights.latency_weight * latency_pen
        + weights.queue_weight * queue_pen
        + weights.cold_weight * cold_pen
    )
    return -cost_term - penalty
