"""Simulator-backed training environment built from telemetry (§6).

The paper's data learning trains smart models on historical telemetry; it
never replays customer SQL (C6).  We do the honest equivalent: the training
environment is reconstructed *only* from telemetry metadata — hashed
templates, arrival times, observed latencies, bytes scanned and cache-hit
ratios.  Ground-truth workload internals (the real
:class:`~repro.warehouse.queries.QueryTemplate` objects) are never touched:

* a template's XS-equivalent work is inferred from its *warm* observed
  latencies via the latency scaling model;
* its cache footprint is synthesized from bytes scanned (same template →
  same synthetic partitions, so warm/cold dynamics are preserved);
* its cold-read multiplier is estimated from the observed latency gap
  between cold and warm runs.

The agent then interacts with a fresh simulated warehouse replaying that
reconstructed workload: apply an action, advance one decision interval,
observe reward (credits + slider-weighted performance penalty).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.learning.actions import ActionSpace
from repro.learning.features import FeatureExtractor, WorkloadBaseline, interval_windows
from repro.learning.reward import RewardConfig, interval_reward
from repro.costmodel.latency import MIN_FIT_CACHE_HIT, LatencyScalingModel
from repro.warehouse.account import Account
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.cache import PARTITION_BYTES
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord, QueryRequest, QueryTemplate

#: Cap on synthetic partitions per template (keeps the LRU cheap).
MAX_SYNTHETIC_PARTITIONS = 64


def reconstruct_workload(
    records: list[QueryRecord], latency_model: LatencyScalingModel
) -> list[QueryRequest]:
    """Rebuild a replayable workload from telemetry metadata only."""
    by_template: dict[str, list[QueryRecord]] = defaultdict(list)
    for r in records:
        by_template[r.template_hash].append(r)
    templates: dict[str, QueryTemplate] = {}
    for tpl_hash, rs in by_template.items():
        gamma = latency_model.gamma(tpl_hash)
        warm = [r for r in rs if r.cache_hit_ratio >= MIN_FIT_CACHE_HIT]
        cold = [r for r in rs if r.cache_hit_ratio < MIN_FIT_CACHE_HIT]
        basis = warm or rs
        base_work = float(
            np.median(
                [r.execution_seconds * r.warehouse_size.speedup**gamma for r in basis]
            )
        )
        if warm and cold:
            warm_eq = np.median(
                [r.execution_seconds * r.warehouse_size.speedup**gamma for r in warm]
            )
            cold_eq = np.median(
                [r.execution_seconds * r.warehouse_size.speedup**gamma for r in cold]
            )
            cold_multiplier = float(np.clip(cold_eq / max(warm_eq, 1e-9), 1.0, 5.0))
        else:
            cold_multiplier = 1.5
        bytes_scanned = float(np.median([r.bytes_scanned for r in rs]))
        n_parts = int(np.clip(round(bytes_scanned / PARTITION_BYTES), 1, MAX_SYNTHETIC_PARTITIONS))
        templates[tpl_hash] = QueryTemplate(
            name=f"recon.{tpl_hash}",
            base_work_seconds=max(base_work, 1e-3),
            scale_exponent=float(np.clip(gamma, 0.0, 1.2)),
            bytes_scanned=bytes_scanned,
            partitions=tuple(f"recon.{tpl_hash}.p{i}" for i in range(n_parts)),
            cold_multiplier=cold_multiplier,
        )
    requests = [
        QueryRequest(
            template=templates[r.template_hash],
            arrival_time=r.arrival_time,
            instance_key=r.text_hash,
            chained=r.chained,
        )
        for r in records
    ]
    return sorted(requests, key=lambda q: q.arrival_time)


@dataclass
class EnvStep:
    """What the environment returns after one decision interval."""

    state: np.ndarray
    reward: float
    done: bool
    credits: float
    records: list[QueryRecord] = field(default_factory=list)


class WarehouseEnv:
    """RL environment over the reconstructed workload."""

    def __init__(
        self,
        requests: list[QueryRequest],
        original: WarehouseConfig,
        baseline: WorkloadBaseline,
        action_space: ActionSpace,
        reward_config: RewardConfig,
        window: Window,
        decision_interval: float = 600.0,
        mask_fn: Callable[[float, WarehouseConfig], np.ndarray] | None = None,
        seed: int = 0,
    ):
        if window.duration < decision_interval:
            raise ConfigurationError("episode window shorter than one decision interval")
        self.requests = [r for r in requests if window.contains(r.arrival_time)]
        self.original = original
        self.baseline = baseline
        self.action_space = action_space
        self.reward_config = reward_config
        self.window = window
        self.decision_interval = decision_interval
        self.mask_fn = mask_fn
        self.seed = seed
        self._episode = 0
        self.account: Account | None = None
        self.client: CloudWarehouseClient | None = None
        self.features = FeatureExtractor(baseline, original)

    # ---------------------------------------------------------------- control
    def reset(self) -> np.ndarray:
        """Fresh simulated account replaying the reconstructed workload."""
        self._episode += 1
        self.account = Account(
            name="training",
            seed=self.seed * 1009 + self._episode,
            start_time=self.window.start,
        )
        self.account.create_warehouse("WH", self.original)
        self.account.schedule_workload("WH", self.requests)
        self.client = CloudWarehouseClient(self.account, actor="keebo")
        self.now = self.window.start
        return self._state()

    def current_mask(self) -> np.ndarray:
        config = self.client.current_config("WH")
        if self.mask_fn is None:
            return self.action_space.effective_mask(config)
        return self.mask_fn(self.now, config)

    def step(self, action_index: int) -> EnvStep:
        if self.account is None:
            raise ConfigurationError("call reset() before step()")
        action = self.action_space.actions[action_index]
        config = self.client.current_config("WH")
        target = self.action_space.apply(config, action)
        if target != config:
            self.client.alter_warehouse(
                "WH",
                size=target.size,
                auto_suspend_seconds=target.auto_suspend_seconds,
                min_clusters=target.min_clusters,
                max_clusters=target.max_clusters,
            )
        interval = Window(self.now, min(self.now + self.decision_interval, self.window.end))
        self.account.run_until(interval.end)
        self.now = interval.end
        credits = self.client.credits_in_window("WH", interval)
        records = self.client.query_history("WH", interval)
        reward = interval_reward(
            credits,
            interval.duration,
            records,
            self.baseline,
            self.original,
            self.reward_config,
        )
        done = self.now >= self.window.end - 1e-9
        return EnvStep(self._state(), reward, done, credits, records)

    # ----------------------------------------------------------------- state
    def _state(self) -> np.ndarray:
        recent_w, previous_w = interval_windows(self.now, self.decision_interval)
        recent = self.client.query_history("WH", recent_w)
        previous = self.client.query_history("WH", previous_w)
        info = self.client.describe_warehouse("WH")
        return self.features.extract(self.now, recent, previous, info)

    @property
    def steps_per_episode(self) -> int:
        return int(self.window.duration // self.decision_interval)
