"""The discrete action space of the warehouse optimizer (§3's three levers).

This vocabulary is shared by the learning layer (env, baselines) and the
control loop above it (constraints, optimizer, smart model), so it lives
here at the learning layer — the lower of the two — and ``repro.core``
imports it downward (``repro.core.actions`` remains as a re-export shim).
Defining it any higher re-creates the learning -> core layering cycle the
analyzer rejects (R012, docs/ANALYSIS.md).

Each action jointly sets the three optimization surfaces the paper focuses
on — warehouse size (resize up/down/keep), the auto-suspend interval
(memory optimization), and the multi-cluster cap (parallelism).  The smart
model picks one action per decision interval; the actuator translates it to
ALTER WAREHOUSE calls.

The joint (rather than independent) action space matters: the paper notes
optimizations "interact and compete with one another in complex and
non-linear ways" (e.g. downsizing is only safe if the cluster cap is not
simultaneously slashed), so the learner must evaluate combinations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.common.errors import InvalidActionError
from repro.warehouse.config import MAX_CLUSTER_COUNT, WarehouseConfig
from repro.warehouse.types import WarehouseSize

#: Sentinel suspend value meaning "leave the current interval unchanged".
KEEP_SUSPEND = 0.0
#: Auto-suspend intervals (seconds) the optimizer may choose between; the
#: KEEP sentinel lets actions adjust size/clusters without touching the
#: customer's suspend setting (important early in onboarding, when the
#: confidence ramp has not yet unlocked aggressive suspension).
SUSPEND_CHOICES = (KEEP_SUSPEND, 60.0, 300.0, 600.0)
#: Relative size moves per decision: at most one T-shirt step per interval,
#: so a mistake is never more than one step from correction.
RESIZE_DELTAS = (-1, 0, 1)
#: Relative max-cluster moves per decision.
CLUSTER_DELTAS = (-1, 0, 1)


@dataclass(frozen=True)
class Action:
    """One joint optimization decision."""

    resize_delta: int
    suspend_seconds: float
    max_cluster_delta: int

    @property
    def is_noop_shape(self) -> bool:
        """True when the action changes neither size nor cluster cap.

        (It may still change the suspend interval.)
        """
        return self.resize_delta == 0 and self.max_cluster_delta == 0

    @property
    def keeps_suspend(self) -> bool:
        return self.suspend_seconds == KEEP_SUSPEND

    def describe(self) -> str:
        size = {-1: "downsize", 0: "keep size", 1: "upsize"}[self.resize_delta]
        cl = {-1: "clusters-1", 0: "clusters=", 1: "clusters+1"}[self.max_cluster_delta]
        suspend = "keep" if self.keeps_suspend else f"{self.suspend_seconds:.0f}s"
        return f"{size}, suspend={suspend}, {cl}"


class ActionSpace:
    """The fixed enumeration of joint actions plus apply/mask helpers.

    The space is anchored to the warehouse's *original* configuration: the
    optimizer may downsize below the original size but never grows beyond
    ``max_size_headroom`` steps above it (provisioning far beyond what the
    customer ever asked for is a business decision, not an optimization),
    and the cluster cap stays within [1, original max].
    """

    def __init__(
        self,
        original: WarehouseConfig,
        max_size_headroom: int = 1,
        min_size: WarehouseSize = WarehouseSize.XS,
    ):
        self.original = original
        self.min_size = min_size
        self.max_size = original.size.step(max_size_headroom)
        self.actions: list[Action] = [
            Action(resize, suspend, clusters)
            for resize, suspend, clusters in itertools.product(
                RESIZE_DELTAS, SUSPEND_CHOICES, CLUSTER_DELTAS
            )
        ]
        self._index = {a: i for i, a in enumerate(self.actions)}

    def __len__(self) -> int:
        return len(self.actions)

    def index(self, action: Action) -> int:
        try:
            return self._index[action]
        except KeyError:
            raise InvalidActionError(f"action {action} is not in this space") from None

    @property
    def noop_index(self) -> int:
        """The fully conservative action: change nothing at all."""
        return self.index(Action(0, KEEP_SUSPEND, 0))

    def apply(self, config: WarehouseConfig, action: Action) -> WarehouseConfig:
        """The configuration that results from taking ``action`` now."""
        new_size = config.size.step(action.resize_delta)
        new_size = WarehouseSize(
            int(np.clip(new_size.value, self.min_size.value, self.max_size.value))
        )
        new_max = int(
            np.clip(
                config.max_clusters + action.max_cluster_delta,
                1,
                min(self.original.max_clusters, MAX_CLUSTER_COUNT),
            )
        )
        new_min = min(config.min_clusters, new_max)
        suspend = (
            config.auto_suspend_seconds
            if action.keeps_suspend
            else float(action.suspend_seconds)
        )
        return config.with_changes(
            size=new_size,
            auto_suspend_seconds=suspend,
            max_clusters=new_max,
            min_clusters=new_min,
        )

    def effective_mask(self, config: WarehouseConfig) -> np.ndarray:
        """Actions that actually change something reachable from ``config``.

        Clamped actions that collapse onto an identical resulting config are
        still valid (they become no-ops); this mask is all-True and exists
        as the base the constraint engine and guardrails AND into.
        """
        return np.ones(len(self.actions), dtype=bool)

    def resulting_configs(self, config: WarehouseConfig) -> list[WarehouseConfig]:
        return [self.apply(config, a) for a in self.actions]
