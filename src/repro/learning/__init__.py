"""The data-learning stack (§6): featurization, numpy DQN, telemetry-
reconstructed training environments and baseline policies."""

from repro.learning.actions import (
    CLUSTER_DELTAS,
    KEEP_SUSPEND,
    RESIZE_DELTAS,
    SUSPEND_CHOICES,
    Action,
    ActionSpace,
)
from repro.learning.agent import DQNAgent, DQNConfig
from repro.learning.baselines import (
    GreedyDownsizerPolicy,
    RuleOfThumbPolicy,
    StaticPolicy,
)
from repro.learning.buffer import ReplayBuffer, Transition
from repro.learning.env import EnvStep, WarehouseEnv, reconstruct_workload
from repro.learning.features import (
    FEATURE_DIM,
    FeatureExtractor,
    WorkloadBaseline,
    interval_windows,
)
from repro.learning.network import MLP
from repro.learning.reward import RewardConfig, interval_reward
from repro.learning.trainer import EpisodeStats, OfflineTrainer, TrainingReport

__all__ = [
    "Action",
    "ActionSpace",
    "CLUSTER_DELTAS",
    "KEEP_SUSPEND",
    "RESIZE_DELTAS",
    "SUSPEND_CHOICES",
    "MLP",
    "ReplayBuffer",
    "Transition",
    "DQNAgent",
    "DQNConfig",
    "FeatureExtractor",
    "WorkloadBaseline",
    "FEATURE_DIM",
    "interval_windows",
    "RewardConfig",
    "interval_reward",
    "WarehouseEnv",
    "EnvStep",
    "reconstruct_workload",
    "OfflineTrainer",
    "TrainingReport",
    "EpisodeStats",
    "StaticPolicy",
    "RuleOfThumbPolicy",
    "GreedyDownsizerPolicy",
]
