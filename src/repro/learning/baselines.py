"""Baseline policies the paper's approach is compared against.

* :class:`StaticPolicy` — the without-Keebo world: never touch anything.
  This is the pre-Keebo baseline of Figure 4 (blue bars).
* :class:`RuleOfThumbPolicy` — the "10 best practices" blog-post wisdom §3
  cites: pin the auto-suspend interval to one minute and otherwise leave
  the warehouse alone.  No workload awareness, no self-correction.
* :class:`GreedyDownsizerPolicy` — a reactive heuristic: downsize whenever
  recent utilization is low, upsize when queueing appears.  Smarter than a
  static rule but memoryless and cache-blind.

All baselines implement the same ``decide(now, recent, info) -> Action``
protocol the smart model exposes, so the ablation bench can swap them in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.stats import percentile
from repro.learning.actions import KEEP_SUSPEND, Action
from repro.learning.features import WorkloadBaseline
from repro.warehouse.api import WarehouseInfo
from repro.warehouse.queries import QueryRecord


@dataclass
class StaticPolicy:
    """Keeps the customer's configuration untouched."""

    def decide(
        self, now: float, recent: list[QueryRecord], info: WarehouseInfo
    ) -> Action:
        return Action(0, KEEP_SUSPEND, 0)


@dataclass
class RuleOfThumbPolicy:
    """Fixed 60-second auto-suspend, everything else untouched."""

    def decide(
        self, now: float, recent: list[QueryRecord], info: WarehouseInfo
    ) -> Action:
        return Action(0, 60.0, 0)


@dataclass
class GreedyDownsizerPolicy:
    """Reactive utilization-threshold policy.

    Downsizes when the recent interval looks underutilized (few queries,
    no queueing), upsizes on queue pressure or high latency.  It has no
    workload model, so it oscillates on bursty workloads and pays cold-cache
    penalties it cannot anticipate.
    """

    baseline: WorkloadBaseline
    low_utilization_queries: int = 3
    queue_trigger_seconds: float = 2.0

    def decide(
        self, now: float, recent: list[QueryRecord], info: WarehouseInfo
    ) -> Action:
        queueing = (
            float(np.mean([r.queued_seconds for r in recent])) if recent else 0.0
        )
        p99 = percentile([r.total_seconds for r in recent], 99) if recent else 0.0
        if info.queue_length > 0 or queueing > self.queue_trigger_seconds:
            return Action(1, 600.0, 1)
        if p99 > 1.5 * self.baseline.p99_latency:
            return Action(1, 600.0, 0)
        if len(recent) <= self.low_utilization_queries:
            return Action(-1, 60.0, -1)
        return Action(0, 300.0, 0)
