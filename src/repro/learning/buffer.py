"""Experience replay buffer for the DQN.

Stores transitions ``(state, action, reward, next_state, done, next_mask)``.
The next-state action mask matters because customer constraints make the
admissible action set time-dependent: the TD target must max only over
actions that will actually be available (§4.3 "non-compliant actions are
cancelled").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.durability.codec import decode_array, encode_array, require_keys


@dataclass(frozen=True)
class Transition:
    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    next_mask: np.ndarray  # bool per action


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(self, capacity: int = 20000):
        if capacity < 1:
            raise ConfigurationError("buffer capacity must be positive")
        self.capacity = capacity
        self._storage: list[Transition] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._storage)

    def add(self, transition: Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        if not self._storage:
            raise ConfigurationError("cannot sample from an empty buffer")
        idx = rng.integers(0, len(self._storage), size=min(batch_size, len(self._storage)))
        return [self._storage[i] for i in idx]

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "cursor": self._cursor,
            "transitions": [
                {
                    "state": encode_array(t.state),
                    "action": t.action,
                    "reward": t.reward,
                    "next_state": encode_array(t.next_state),
                    "done": t.done,
                    "next_mask": encode_array(t.next_mask),
                }
                for t in self._storage
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(state, ("capacity", "cursor", "transitions"), "ReplayBuffer")
        self.capacity = int(state["capacity"])
        self._cursor = int(state["cursor"])
        self._storage = [
            Transition(
                state=decode_array(t["state"]),
                action=int(t["action"]),
                reward=float(t["reward"]),
                next_state=decode_array(t["next_state"]),
                done=bool(t["done"]),
                next_mask=decode_array(t["next_mask"]),
            )
            for t in state["transitions"]
        ]

    def as_batches(
        self, transitions: list[Transition]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stack a transition list into arrays for a vectorized update."""
        states = np.stack([t.state for t in transitions])
        actions = np.array([t.action for t in transitions], dtype=int)
        rewards = np.array([t.reward for t in transitions], dtype=float)
        next_states = np.stack([t.next_state for t in transitions])
        dones = np.array([t.done for t in transitions], dtype=bool)
        next_masks = np.stack([t.next_mask for t in transitions])
        return states, actions, rewards, next_states, dones, next_masks
