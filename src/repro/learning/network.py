"""A small numpy MLP with Adam — the function approximator behind the DQN.

No deep-learning framework is available offline, so the forward/backward
passes are hand-rolled.  The network maps a state feature vector to one
Q-value per discrete action; training minimizes squared TD error on the
actions actually taken (standard DQN semi-gradient update).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import fallback_rng
from repro.durability.codec import decode_array, encode_array, require_keys


class MLP:
    """Fully-connected ReLU network with a linear head."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        hidden: tuple[int, ...] = (64, 64),
        rng: np.random.Generator | None = None,
        learning_rate: float = 1e-3,
    ):
        if input_dim < 1 or output_dim < 1:
            raise ConfigurationError("network dims must be positive")
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.learning_rate = learning_rate
        rng = rng or fallback_rng()
        dims = [input_dim, *hidden, output_dim]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims, dims[1:]):
            # He initialization, appropriate for ReLU layers.
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        # Adam state.
        self._t = 0
        self._m = [np.zeros_like(w) for w in self.weights] + [
            np.zeros_like(b) for b in self.biases
        ]
        self._v = [np.zeros_like(w) for w in self.weights] + [
            np.zeros_like(b) for b in self.biases
        ]

    # ------------------------------------------------------------ inference
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Q-values for a batch (or single) state. Shape (..., output_dim)."""
        single = x.ndim == 1
        h = np.atleast_2d(x).astype(float)
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            h = np.maximum(h @ w + b, 0.0)
        out = h @ self.weights[-1] + self.biases[-1]
        return out[0] if single else out

    # ------------------------------------------------------------- training
    def train_step(
        self, states: np.ndarray, actions: np.ndarray, targets: np.ndarray
    ) -> float:
        """One Adam step on ``0.5 * (Q(s,a) - target)^2``; returns the loss."""
        batch = states.shape[0]
        activations = [states.astype(float)]
        h = activations[0]
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            h = np.maximum(h @ w + b, 0.0)
            activations.append(h)
        q = h @ self.weights[-1] + self.biases[-1]
        idx = np.arange(batch)
        td_error = q[idx, actions] - targets
        loss = float(0.5 * np.mean(td_error**2))

        # Backward pass: gradient flows only through the taken actions.
        grad_q = np.zeros_like(q)
        grad_q[idx, actions] = td_error / batch
        grads_w: list[np.ndarray] = [None] * len(self.weights)
        grads_b: list[np.ndarray] = [None] * len(self.biases)
        delta = grad_q
        for layer in range(len(self.weights) - 1, -1, -1):
            grads_w[layer] = activations[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * (activations[layer] > 0)
        self._adam_update(grads_w, grads_b)
        return loss

    def _adam_update(
        self,
        grads_w: list[np.ndarray],
        grads_b: list[np.ndarray],
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self._t += 1
        params = self.weights + self.biases
        grads = grads_w + grads_b
        for i, (p, g) in enumerate(zip(params, grads)):
            self._m[i] = beta1 * self._m[i] + (1 - beta1) * g
            self._v[i] = beta2 * self._v[i] + (1 - beta2) * g**2
            m_hat = self._m[i] / (1 - beta1**self._t)
            v_hat = self._v[i] / (1 - beta2**self._t)
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    # --------------------------------------------------------------- weights
    def get_parameters(self) -> list[np.ndarray]:
        return [w.copy() for w in self.weights] + [b.copy() for b in self.biases]

    def set_parameters(self, params: list[np.ndarray]) -> None:
        n = len(self.weights)
        if len(params) != n + len(self.biases):
            raise ConfigurationError("parameter list has wrong length")
        for i in range(n):
            if params[i].shape != self.weights[i].shape:
                raise ConfigurationError("parameter shape mismatch")
            self.weights[i] = params[i].copy()
        for i in range(len(self.biases)):
            if params[n + i].shape != self.biases[i].shape:
                raise ConfigurationError("parameter shape mismatch")
            self.biases[i] = params[n + i].copy()

    def clone_weights_from(self, other: "MLP") -> None:
        """Hard target-network sync."""
        self.set_parameters(other.get_parameters())

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        """Full mutable state, including the Adam moments (StateCodec)."""
        return {
            "weights": [encode_array(w) for w in self.weights],
            "biases": [encode_array(b) for b in self.biases],
            "adam_t": self._t,
            "adam_m": [encode_array(m) for m in self._m],
            "adam_v": [encode_array(v) for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(state, ("weights", "biases", "adam_t", "adam_m", "adam_v"), "MLP")
        self.set_parameters(
            [decode_array(s) for s in state["weights"]]
            + [decode_array(s) for s in state["biases"]]
        )
        self._t = int(state["adam_t"])
        self._m = [decode_array(s) for s in state["adam_m"]]
        self._v = [decode_array(s) for s in state["adam_v"]]
