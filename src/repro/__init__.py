"""repro — a full reproduction of "Making Data Clouds Smarter at Keebo:
Automated Warehouse Optimization using Data Learning" (SIGMOD-Companion '23).

The package layers four subsystems (see DESIGN.md):

* :mod:`repro.warehouse` — a discrete-event Snowflake-like CDW simulator
  (the proprietary substrate, rebuilt);
* :mod:`repro.workloads` — synthetic ETL / BI / ad-hoc workload generators
  (the production traces, substituted);
* :mod:`repro.costmodel` — the §5 warehouse cost model (query replay +
  learned parameter estimation);
* :mod:`repro.learning` + :mod:`repro.core` — the §6 data-learning stack
  and the KWO product itself (smart models, constraints, sliders,
  monitoring, actuator, value-based pricing, Algorithm 1).

Quickstart::

    from repro import Account, KeeboService, WarehouseConfig

    account = Account(seed=7)
    account.create_warehouse("ANALYTICS_WH", WarehouseConfig())
    ...  # drive a workload, then:
    service = KeeboService(account)
    service.onboard_warehouse("ANALYTICS_WH")
"""

from repro.core import (
    ConstraintRule,
    ConstraintSet,
    KeeboService,
    OptimizerConfig,
    SliderPosition,
    WarehouseOptimizer,
)
from repro.costmodel import WarehouseCostModel
from repro.warehouse import (
    Account,
    CloudWarehouseClient,
    ScalingPolicy,
    WarehouseConfig,
    WarehouseSize,
)

__version__ = "0.1.0"

__all__ = [
    "Account",
    "CloudWarehouseClient",
    "WarehouseConfig",
    "WarehouseSize",
    "ScalingPolicy",
    "WarehouseCostModel",
    "KeeboService",
    "WarehouseOptimizer",
    "OptimizerConfig",
    "SliderPosition",
    "ConstraintRule",
    "ConstraintSet",
]
