"""repro.lint — AST-based determinism & invariant linter.

Machine-checks the conventions the reproduction's bit-reproducibility
rests on (named RNG streams, simulated time, no swallowed failures, unit
annotations at package boundaries).  See ``docs/INVARIANTS.md`` for the
rule catalogue and the suppression syntax.

Programmatic use::

    from repro.lint import lint_paths, lint_source
    result = lint_paths(["src"])        # LintResult
    findings = lint_source(snippet)     # list[Finding]
"""

from repro.lint.context import FileContext
from repro.lint.engine import LintResult, lint_paths, lint_source
from repro.lint.findings import SEVERITIES, Finding
from repro.lint.rules import Rule, all_rules, get_rules, register

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "get_rules",
    "lint_paths",
    "lint_source",
    "register",
]
