"""Determinism rules: the invariants that keep replay bit-reproducible.

The cost model's savings estimates (§5) and the smart model's audit trail
are only trustworthy because a run is a pure function of ``(scenario,
seed)``.  These rules reject the constructs that silently break that:
wall-clock reads, unregistered randomness, colliding RNG stream names,
float-equality on simulated time, and iteration order leaking out of sets.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register


def _walk_source_order(tree: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` is breadth-first; sort by position so 'first occurrence'
    semantics (R003) and output order match the file's reading order."""
    nodes = [n for n in ast.walk(tree) if hasattr(n, "lineno")]
    nodes.sort(key=lambda n: (n.lineno, n.col_offset))
    return iter(nodes)


@register
class WallClockRule(Rule):
    """R001: no wall-clock time.

    All simulation time is float seconds from ``repro.common.simtime``; a
    single ``time.time()`` makes two replays of the same scenario diverge.
    """

    rule_id = "R001"
    name = "no-wall-clock"
    severity = "error"
    summary = (
        "wall-clock reads (time.time, time.monotonic, datetime.now/utcnow, ...) "
        "are forbidden; use simulation time from repro.common.simtime"
    )

    FORBIDDEN = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.localtime",
            "time.gmtime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualified(node.func)
            if qualified in self.FORBIDDEN:
                yield ctx.finding(
                    self,
                    node,
                    f"call to {qualified}() reads the wall clock; simulated "
                    "components must take time as a parameter "
                    "(repro.common.simtime float seconds)",
                )


@register
class RngSourceRule(Rule):
    """R002: all randomness flows through ``RngRegistry`` named streams.

    A module-level ``random``/``np.random`` draw consumes hidden global
    state: adding one draw anywhere reshuffles every later draw, which is
    exactly the cross-component coupling named streams exist to prevent.
    ``repro/common/rng.py`` is the one legitimate construction site.
    """

    rule_id = "R002"
    name = "rng-via-registry"
    severity = "error"
    summary = (
        "no `import random`, np.random.default_rng/seed/RandomState, or other "
        "ambient entropy (uuid4, os.urandom) outside repro/common/rng.py; "
        "draw from RngRegistry.stream(name)"
    )

    EXEMPT_SUFFIXES = ("repro/common/rng.py",)
    FORBIDDEN_CALLS = frozenset({"uuid.uuid1", "uuid.uuid4", "os.urandom"})

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.path.endswith(self.EXEMPT_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.partition(".")[0] in ("random", "secrets"):
                        yield ctx.finding(
                            self,
                            node,
                            f"`import {alias.name}` pulls ambient global randomness; "
                            "use RngRegistry.stream(name) from repro.common.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").partition(".")[0] in (
                    "random",
                    "secrets",
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"`from {node.module} import ...` pulls ambient global "
                        "randomness; use RngRegistry.stream(name)",
                    )
            elif isinstance(node, ast.Call):
                qualified = ctx.qualified(node.func)
                if qualified is None:
                    continue
                if qualified.startswith("numpy.random.") or qualified in self.FORBIDDEN_CALLS:
                    yield ctx.finding(
                        self,
                        node,
                        f"direct call to {qualified}() bypasses the seed registry; "
                        "obtain a generator via RngRegistry.stream(name) "
                        "(constructed only in repro/common/rng.py)",
                    )


@register
class StreamNameRule(Rule):
    """R003: RNG stream names are string literals, unique per file.

    ``stream("workload.bi")`` copy-pasted under a second component silently
    *correlates* two supposedly independent streams — the draws interleave
    on one generator.  Dynamic names hide that collision from review, so
    names must be literals, and a literal may appear at only one call-site
    per file (deliberate per-entity f-strings carry a suppression).
    """

    rule_id = "R003"
    name = "stream-name-literal-unique"
    severity = "error"
    summary = (
        "RngRegistry.stream(...) names must be string literals and appear at "
        "only one call-site per file (collisions correlate streams)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        first_site: dict[str, int] = {}
        for node in _walk_source_order(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "stream"):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
                if name in first_site and first_site[name] != node.lineno:
                    yield ctx.finding(
                        self,
                        node,
                        f"stream name {name!r} already used on line "
                        f"{first_site[name]}; reusing a name correlates the "
                        "two call-sites' draws — pick a distinct name",
                    )
                else:
                    first_site.setdefault(name, node.lineno)
            else:
                kind = "f-string" if isinstance(arg, ast.JoinedStr) else "non-literal"
                yield ctx.finding(
                    self,
                    node,
                    f"stream name is a {kind} expression; names must be string "
                    "literals so collisions are visible in review (suppress "
                    "deliberate per-entity names with a justification)",
                )


@register
class SimtimeEqualityRule(Rule):
    """R004: no ``==``/``!=`` between simulated-time floats.

    Simulated timestamps are sums of float durations; equality comparisons
    are representation-dependent and break replay the moment an arithmetic
    reordering changes the last ulp.  Compare with an explicit tolerance
    (``abs(a - b) <= eps``, ``math.isclose``) or use ordering operators.
    """

    rule_id = "R004"
    name = "no-simtime-float-equality"
    severity = "warning"
    summary = (
        "==/!= on simulated-time floats (*_time names, simtime MINUTE/HOUR/"
        "DAY/WEEK/MONTH constants) is ulp-fragile; compare with a tolerance"
    )

    _CONSTANTS = frozenset(
        f"repro.common.simtime.{name}" for name in ("MINUTE", "HOUR", "DAY", "WEEK", "MONTH")
    )

    def _is_timelike(self, ctx: FileContext, expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            terminal: str | None = None
            if isinstance(node, ast.Name):
                terminal = node.id
            elif isinstance(node, ast.Attribute):
                terminal = node.attr
            if terminal is not None and terminal.endswith("_time"):
                return True
            if isinstance(node, (ast.Name, ast.Attribute)):
                if ctx.qualified(node) in self._CONSTANTS:
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x == None`-style sentinel checks are not float equality.
                if any(
                    isinstance(side, ast.Constant) and not isinstance(side.value, (int, float))
                    for side in (left, right)
                ):
                    continue
                if self._is_timelike(ctx, left) or self._is_timelike(ctx, right):
                    yield ctx.finding(
                        self,
                        node,
                        "equality comparison on a simulated-time value; use "
                        "`abs(a - b) <= tol`, math.isclose, or ordering "
                        "comparisons instead",
                    )
                    break  # one finding per Compare node


@register
class SetIterationRule(Rule):
    """R008: set iteration order must not feed ordered outputs.

    ``for x in set(...)`` order depends on hash seeding and insertion
    history; any telemetry row, ledger line, or report built from it is
    nondeterministic across runs.  Wrap in ``sorted(...)`` before iterating.
    """

    rule_id = "R008"
    name = "no-unordered-set-iteration"
    severity = "error"
    summary = (
        "iterating a set (for/comprehension/list()/tuple()/join) leaks hash "
        "order into outputs; wrap in sorted(...) first"
    )

    _MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter"})

    def _is_set_expr(self, ctx: FileContext, node: ast.AST, set_vars: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and node.id in set_vars:
            return True
        if isinstance(node, ast.Call):
            qualified = ctx.qualified(node.func)
            if qualified in ("set", "frozenset"):
                return True
            # set.union / intersection / difference chains
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_expr(ctx, node.func.value, set_vars)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(ctx, node.left, set_vars) or self._is_set_expr(
                ctx, node.right, set_vars
            )
        return False

    def _scope_set_vars(self, ctx: FileContext, body: list[ast.stmt]) -> set[str]:
        """Names assigned a set-valued expression anywhere in this scope."""
        names: set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node in body:
                    continue  # nested scopes are visited separately
                if isinstance(node, ast.Assign) and self._is_set_expr(ctx, node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if self._is_set_expr(ctx, node.value, names) and isinstance(
                        node.target, ast.Name
                    ):
                        names.add(node.target.id)
        return names

    def _check_scope(self, ctx: FileContext, body: list[ast.stmt]) -> Iterator[Finding]:
        set_vars = self._scope_set_vars(ctx, body)

        def flag(node: ast.AST, what: str) -> Finding:
            return ctx.finding(
                self,
                node,
                f"{what} iterates a set in hash order — nondeterministic "
                "across runs; wrap the set in sorted(...)",
            )

        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.For) and self._is_set_expr(ctx, node.iter, set_vars):
                    yield flag(node, "for-loop")
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                    for gen in node.generators:
                        if isinstance(node, ast.SetComp) or isinstance(node, ast.DictComp):
                            continue  # building another unordered container is fine
                        if self._is_set_expr(ctx, gen.iter, set_vars):
                            yield flag(node, "comprehension")
                elif isinstance(node, ast.Call):
                    qualified = ctx.qualified(node.func)
                    is_join = isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                    if (qualified in self._MATERIALIZERS or is_join) and node.args:
                        if self._is_set_expr(ctx, node.args[0], set_vars):
                            what = "str.join" if is_join else f"{qualified}()"
                            yield flag(node, what)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # Each function body is its own tracking scope; module level too.
        scopes: list[list[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        seen: set[tuple[int, int, str]] = set()
        for scope in scopes:
            for finding in self._check_scope(ctx, scope):
                key = (finding.line, finding.col, finding.message)
                if key not in seen:  # nested scopes overlap via ast.walk
                    seen.add(key)
                    yield finding


@register
class ResourceQuarantineRule(Rule):
    """R018: process-resource reads live only in the quarantine module.

    ``ResourceProbe`` (``repro/obs/stream.py``) is the one sanctioned place
    that reads wall-clock stage costs, ``getrusage`` peaks, or allocator
    state, and its report lands exclusively in a ``.resources.json``
    sidecar.  A ``tracemalloc``/``getrusage`` read anywhere else in the
    library is one refactor away from leaking a machine-dependent number
    into the byte-identity surface (trace/metrics/series/store exports) —
    the same taint R014 chases, caught at the read site instead of the
    flow.  Benchmarks and tests are out of scope: measuring memory there
    is the point.
    """

    rule_id = "R018"
    name = "resource-quarantine"
    severity = "error"
    summary = (
        "process-resource reads (resource.getrusage, tracemalloc.*, os.times, "
        "os.getloadavg) are allowed only in repro/obs/stream.py (ResourceProbe); "
        "their output belongs in the .resources.json sidecar, never in exports"
    )

    EXEMPT_SUFFIXES = ("repro/obs/stream.py",)
    FORBIDDEN_CALLS = frozenset(
        {
            "resource.getrusage",
            "os.times",
            "os.getloadavg",
            "sys.getallocatedblocks",
        }
    )
    FORBIDDEN_PREFIXES = ("tracemalloc.", "psutil.")

    def _applies(self, path: str) -> bool:
        return "repro/" in path and not path.endswith(self.EXEMPT_SUFFIXES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self._applies(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualified(node.func)
            if qualified is None:
                continue
            if qualified in self.FORBIDDEN_CALLS or qualified.startswith(
                self.FORBIDDEN_PREFIXES
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"call to {qualified}() reads process-resource state "
                    "outside the quarantine; route it through ResourceProbe "
                    "(repro/obs/stream.py) so it stays in the "
                    ".resources.json sidecar",
                )


@register
class DurableWriteDisciplineRule(Rule):
    """R019: durable control-plane artifacts go through the atomic helpers.

    The crash-consistency contract (docs/ROBUSTNESS.md §v2) holds because
    every durable write is tmp-file + ``os.replace`` or framed-append —
    both provided by ``repro/durability/io.py`` and nothing else.  A bare
    ``open(path, "w")``/``write_text``/``np.savez`` in the durability or
    core layers is a torn-file window: a crash mid-write leaves bytes no
    restore can trust, and the corruption corpus tests cannot anticipate
    an unframed writer.  The rule scopes to ``repro/durability/`` and
    ``repro/core/`` — the layers that own durable state; everything else
    (obs sidecars, portal reports, CLI output files) is export surface,
    rewritten from scratch every run, where atomicity buys nothing.
    """

    rule_id = "R019"
    name = "durable-write-discipline"
    severity = "error"
    summary = (
        "durable artifacts in repro/durability/ and repro/core/ must be "
        "written via the atomic helpers in repro/durability/io.py "
        "(atomic_write_text/bytes, atomic_savez, append_journal_entry), "
        "never bare open(..., 'w'), write_text/write_bytes, or np.savez"
    )

    SCOPED_SEGMENTS = ("repro/durability/", "repro/core/")
    EXEMPT_SUFFIXES = ("repro/durability/io.py",)
    WRITE_ATTRS = frozenset({"write_text", "write_bytes"})
    SAVEZ_CALLS = frozenset({"numpy.savez", "numpy.savez_compressed"})

    def _applies(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        if normalized.endswith(self.EXEMPT_SUFFIXES):
            return False
        return any(segment in normalized for segment in self.SCOPED_SEGMENTS)

    @staticmethod
    def _open_write_mode(node: ast.Call) -> str | None:
        """The mode literal when this is ``open(...)`` with a write mode."""
        mode: ast.AST | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return None  # default "r": a read, not a write
        if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
            return "<dynamic>"  # can't prove it's a read; flag it
        return mode.value if set(mode.value) & set("wax+") else None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self._applies(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualified(node.func)
            if qualified == "open" or qualified == "io.open":
                mode = self._open_write_mode(node)
                if mode is not None:
                    yield ctx.finding(
                        self,
                        node,
                        f"open(..., {mode!r}) writes a durable artifact "
                        "directly; a crash mid-write tears the file — use "
                        "the atomic helpers in repro.durability.io",
                    )
                continue
            if qualified in self.SAVEZ_CALLS:
                yield ctx.finding(
                    self,
                    node,
                    f"{qualified}() writes an archive non-atomically; use "
                    "atomic_savez from repro.durability.io",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.WRITE_ATTRS
            ):
                yield ctx.finding(
                    self,
                    node,
                    f".{node.func.attr}() writes a durable artifact "
                    "directly; a crash mid-write tears the file — use "
                    "atomic_write_text/atomic_write_bytes from "
                    "repro.durability.io",
                )
