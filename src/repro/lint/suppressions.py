"""``# repro-lint: disable=...`` suppression comments.

A violation is suppressed by putting the directive on the *reported* line::

    self.rngs.stream(f"warehouse.{name}")  # repro-lint: disable=R003

Multiple ids are comma-separated (``disable=R003,R004``); ``disable=all``
suppresses every rule on that line.  Comments are located with ``tokenize``
so directive-looking text inside string literals is never misparsed.
Malformed directives (unknown syntax after ``repro-lint:``) are reported as
R000 findings rather than silently ignored — a typo in a suppression must
not reopen a hole.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

_DIRECTIVE = re.compile(r"#\s*repro-lint\s*:\s*(?P<body>.*)$")
_DISABLE = re.compile(r"^disable\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)$")


@dataclass
class SuppressionTable:
    """Per-line sets of suppressed rule ids; ``{'all'}`` disables every rule."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    malformed: list[Finding] = field(default_factory=list)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.by_line.get(line)
        return bool(ids) and ("all" in ids or rule_id in ids)


def scan_suppressions(source: str, path: str) -> SuppressionTable:
    """Collect suppression directives from every comment in ``source``."""
    table = SuppressionTable()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table  # the parse error is reported by the engine
    for tok in comments:
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        body = match.group("body").strip()
        disable = _DISABLE.match(body)
        if disable is None:
            table.malformed.append(
                Finding(
                    file=path,
                    line=line,
                    col=tok.start[1],
                    rule_id="R000",
                    severity="error",
                    message=(
                        f"malformed repro-lint directive {body!r}; "
                        "expected '# repro-lint: disable=R0xx[,R0yy]' or 'disable=all'"
                    ),
                )
            )
            continue
        ids = {part.strip() for part in disable.group("ids").split(",") if part.strip()}
        table.by_line.setdefault(line, set()).update(ids)
    return table
