"""``# repro-lint: disable=...`` suppression comments.

A violation is suppressed by putting the directive on the *reported* line::

    self.rngs.stream(f"warehouse.{name}")  # repro-lint: disable=R003

Multiple ids are comma-separated (``disable=R003,R004``); ``disable=all``
suppresses every rule on that line.  Comments are located with ``tokenize``
so directive-looking text inside string literals is never misparsed.
Malformed directives (unknown syntax after ``repro-lint:``) are reported as
R000 findings rather than silently ignored — a typo in a suppression must
not reopen a hole.

Suppressions are also *use-tracked*: a directive whose rule never fires on
that line is itself an R000 finding ("unused suppression").  Stale
suppressions are holes waiting to reopen — the rule they silence can start
firing again behind them without anyone noticing — so the count is only
allowed to go down.  Unused detection is scoped to the rules that actually
ran (``--select R003`` must not flag an R001 directive as unused).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

_DIRECTIVE = re.compile(r"#\s*repro-lint\s*:\s*(?P<body>.*)$")
_DISABLE = re.compile(r"^disable\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)$")


@dataclass
class SuppressionTable:
    """Per-line sets of suppressed rule ids; ``{'all'}`` disables every rule."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    malformed: list[Finding] = field(default_factory=list)
    #: Directive location per line (col of the comment), for unused reports.
    directive_cols: dict[int, int] = field(default_factory=dict)
    #: ``(line, rule_id)`` pairs that actually suppressed a finding.
    used: set = field(default_factory=set)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.by_line.get(line)
        if not ids or ("all" not in ids and rule_id not in ids):
            return False
        self.used.add((line, rule_id))
        return True

    def unused_findings(self, path: str, ran_rule_ids: set, full_run: bool) -> list[Finding]:
        """R000 findings for directives that silenced nothing.

        A specific id is unused when its rule ran on this pass and no finding
        on that line matched it.  ``disable=all`` is only judged on a full
        run (``full_run``), since a partial ``--select`` pass cannot prove it
        idle.  Unused findings are unsuppressible by construction (they carry
        rule id R000 and R000 is never consulted against the table).
        """
        out: list[Finding] = []
        for line in sorted(self.by_line):
            ids = self.by_line[line]
            used_here = {rid for (ln, rid) in self.used if ln == line}
            stale: list[str] = []
            for rule_id in sorted(ids):
                if rule_id == "all":
                    if full_run and not used_here:
                        stale.append("all")
                elif rule_id in ran_rule_ids and rule_id not in used_here:
                    stale.append(rule_id)
            if stale:
                out.append(
                    Finding(
                        file=path,
                        line=line,
                        col=self.directive_cols.get(line, 0),
                        rule_id="R000",
                        severity="error",
                        message=(
                            f"unused suppression for {', '.join(stale)}: "
                            "no such finding on this line; remove the directive"
                        ),
                    )
                )
        return out


def scan_suppressions(source: str, path: str) -> SuppressionTable:
    """Collect suppression directives from every comment in ``source``."""
    table = SuppressionTable()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table  # the parse error is reported by the engine
    for tok in comments:
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        body = match.group("body").strip()
        disable = _DISABLE.match(body)
        if disable is None:
            table.malformed.append(
                Finding(
                    file=path,
                    line=line,
                    col=tok.start[1],
                    rule_id="R000",
                    severity="error",
                    message=(
                        f"malformed repro-lint directive {body!r}; "
                        "expected '# repro-lint: disable=R0xx[,R0yy]' or 'disable=all'"
                    ),
                )
            )
            continue
        ids = {part.strip() for part in disable.group("ids").split(",") if part.strip()}
        table.by_line.setdefault(line, set()).update(ids)
        table.directive_cols.setdefault(line, tok.start[1])
    return table
