"""Shared output machinery for the lint and analysis CLIs.

Both ``repro.cli lint`` and ``repro.cli analyze`` render the same
:class:`~repro.lint.findings.Finding` model, so the serializers live here
once: byte-stable JSON (sorted keys, sorted findings, trailing newline) and
SARIF 2.1.0 for code-scanning UIs.  Byte stability is a hard contract —
two runs over an unchanged tree must produce identical bytes, which is what
lets CI diff artifacts and the baseline ratchet stay meaningful.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from repro.lint.findings import Finding

#: SARIF spec version emitted by :func:`findings_to_sarif`.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Map repro severities onto SARIF result levels.
_SARIF_LEVEL = {"warning": "warning", "error": "error"}


def dumps_json(payload: dict) -> str:
    """The byte-stable JSON text: sorted keys, 2-space indent, trailing LF.

    The single serializer behind every JSON artifact the repo diffs in CI
    (lint/analyze output, portal exports, attribution reports) — one place
    to define "stable", so artifacts from different subsystems never drift
    in formatting.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def dump_json(payload: dict, out: IO[str]) -> None:
    """Serialize ``payload`` byte-stably onto ``out`` (see :func:`dumps_json`)."""
    out.write(dumps_json(payload))


def findings_to_sarif(
    findings: Sequence[Finding],
    errors: Sequence[str] = (),
    *,
    tool_name: str,
    rule_docs: Iterable[tuple[str, str, str, str]] = (),
    information_uri: str = "docs/INVARIANTS.md",
) -> dict:
    """Render findings as a SARIF 2.1.0 log (one run, one tool).

    ``rule_docs`` rows are ``(rule_id, name, severity, summary)`` as yielded
    by the rule registries; only rules that appear there get a ``rules``
    catalogue entry (SARIF consumers resolve results by ``ruleId`` alone, so
    uncatalogued rules still render).  File-level errors (unparseable files)
    become ``toolExecutionNotifications`` so they are not silently dropped.
    """
    rules = [
        {
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": _SARIF_LEVEL.get(severity, "warning")},
        }
        for rule_id, name, severity, summary in sorted(rule_docs)
    ]
    results = [
        {
            "ruleId": f.rule_id,
            "level": _SARIF_LEVEL.get(f.severity, "warning"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.file},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,  # SARIF columns are 1-based
                        },
                    }
                }
            ],
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    notifications = [
        {"level": "error", "message": {"text": error}} for error in sorted(errors)
    ]
    run: dict = {
        "tool": {
            "driver": {
                "name": tool_name,
                "informationUri": information_uri,
                "rules": rules,
            }
        },
        "results": results,
    }
    if notifications:
        run["invocations"] = [
            {
                "executionSuccessful": False,
                "toolExecutionNotifications": notifications,
            }
        ]
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": [run]}


def render_sarif(
    findings: Sequence[Finding],
    errors: Sequence[str],
    out: IO[str],
    *,
    tool_name: str,
    rule_docs: Iterable[tuple[str, str, str, str]] = (),
) -> None:
    """Serialize findings as byte-stable SARIF onto ``out``."""
    dump_json(
        findings_to_sarif(findings, errors, tool_name=tool_name, rule_docs=rule_docs),
        out,
    )
