"""Rule plugin base class and registry.

A rule is a class with a stable ``rule_id`` (``R0xx``), a one-line
``summary``, and a ``check(ctx)`` generator yielding :class:`Finding`
objects for one file.  Rules that need cross-file state (the whole-project
pass) additionally implement ``finalize()``, called once after every file
has been checked.

New rules self-register via the :func:`register` decorator; the engine
instantiates one fresh object per rule per run, so instance attributes are
safe for accumulating state across files.
"""

from __future__ import annotations

from typing import ClassVar, Iterable, Iterator, Type

from repro.lint.context import FileContext
from repro.lint.findings import Finding


class Rule:
    """Base class for all lint rules."""

    rule_id: ClassVar[str]
    name: ClassVar[str]
    summary: ClassVar[str]
    severity: ClassVar[str] = "error"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Per-file pass: yield findings for ``ctx``."""
        raise NotImplementedError

    def finalize(self) -> Iterable[Finding]:
        """Whole-project pass: yield findings after all files were checked."""
        return ()


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rid = cls.rule_id
    if rid in _REGISTRY and _REGISTRY[rid] is not cls:
        raise ValueError(f"duplicate rule id {rid!r} ({cls.__name__} vs {_REGISTRY[rid].__name__})")
    _REGISTRY[rid] = cls
    return cls


def all_rules() -> list[Type[Rule]]:
    """Registered rule classes, ordered by rule id (stable output order)."""
    _load_builtin()
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate rules, optionally restricted to ``select`` ids."""
    classes = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {cls.rule_id for cls in classes}
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        classes = [cls for cls in classes if cls.rule_id in wanted]
    return [cls() for cls in classes]


def iter_rule_docs() -> Iterator[tuple[str, str, str, str]]:
    """(rule_id, name, severity, summary) rows for ``--list-rules``."""
    for cls in all_rules():
        yield cls.rule_id, cls.name, cls.severity, cls.summary


def _load_builtin() -> None:
    # Imported lazily to avoid a circular import at module load time
    # (builtin rule modules import `register` from here).
    from repro.lint import determinism, hygiene  # noqa: F401
