"""Per-file analysis context shared by every rule.

A ``FileContext`` is built once per file (parse, import resolution,
suppression scan) and handed to each rule, so rules stay small: they walk
``ctx.tree`` and call ``ctx.finding(...)``.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

from repro.lint.findings import Finding


def dotted_name(node: ast.AST) -> str | None:
    """Render an attribute chain (``np.random.default_rng``) as a dotted
    string; ``None`` for anything that is not a plain Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_imports(tree: ast.Module) -> dict[str, str]:
    """Map local names to fully qualified import targets.

    ``import numpy as np``          -> {"np": "numpy"}
    ``from time import time``       -> {"time": "time.time"}
    ``from datetime import datetime as dt`` -> {"dt": "datetime.datetime"}
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.partition(".")[0]] = (
                    alias.name if alias.asname else alias.name.partition(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str  # as reported in findings (POSIX separators)
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str = "<snippet>") -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=pathlib.PurePath(path).as_posix(),
            source=source,
            tree=tree,
            imports=collect_imports(tree),
        )

    def qualified(self, node: ast.AST) -> str | None:
        """Dotted name of ``node`` with the leading alias resolved through
        this file's imports (``np.random.seed`` -> ``numpy.random.seed``)."""
        name = dotted_name(node)
        if name is None:
            return None
        head, dot, rest = name.partition(".")
        resolved = self.imports.get(head, head)
        return f"{resolved}{dot}{rest}" if dot else resolved

    def finding(
        self, rule: "object", node: ast.AST, message: str, severity: str | None = None
    ) -> Finding:
        return Finding(
            file=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule.rule_id,  # type: ignore[attr-defined]
            severity=severity or rule.severity,  # type: ignore[attr-defined]
            message=message,
        )
