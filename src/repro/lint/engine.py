"""Lint driver: file discovery, per-file rule runs, suppression filtering.

The engine is import-light and pure: ``lint_paths`` returns a
:class:`LintResult`; rendering and exit codes live in ``repro.lint.cli``.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.context import FileContext
from repro.lint.findings import SEVERITIES, Finding
from repro.lint.rules import Rule, get_rules
from repro.lint.suppressions import scan_suppressions

#: Directory names never descended into.
_SKIP_DIRS = frozenset({".git", "__pycache__", ".pytest_cache", ".venv", "node_modules", "results"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)  # unparseable files etc.
    files_scanned: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(sub.parts):
                    out.add(sub)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def lint_context(
    ctx: FileContext, rules: Sequence[Rule], full_run: bool = True
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one prepared file context.

    Returns (kept findings, suppressed count); malformed and *unused*
    suppression directives are reported as R000 findings and cannot be
    suppressed.  ``full_run`` says whether the complete rule catalogue ran,
    which is what lets ``disable=all`` directives be judged for staleness.
    """
    table = scan_suppressions(ctx.source, ctx.path)
    kept: list[Finding] = list(table.malformed)
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if table.is_suppressed(finding.line, finding.rule_id):
                suppressed += 1
            else:
                kept.append(finding)
    kept.extend(
        table.unused_findings(ctx.path, {rule.rule_id for rule in rules}, full_run)
    )
    return kept, suppressed


def lint_source(
    source: str,
    path: str = "<snippet>",
    select: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint a source string (the unit-test entry point).

    ``path`` participates in path-scoped rules (R002's rng.py exemption,
    R007's package scopes), so fixtures can opt in by naming themselves
    accordingly.
    """
    rule_objs = list(rules) if rules is not None else get_rules(select)
    ctx = FileContext.from_source(source, path)
    findings, _ = lint_context(ctx, rule_objs, full_run=select is None and rules is None)
    for rule in rule_objs:
        findings.extend(rule.finalize())
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: Sequence[str | pathlib.Path],
    select: Iterable[str] | None = None,
    min_severity: str = "warning",
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (the CLI entry point)."""
    rules = get_rules(select)
    result = LintResult()
    threshold = SEVERITIES.index(min_severity)
    for raw in paths:
        # A typo'd path must not produce a vacuous "0 findings" pass.
        if not pathlib.Path(raw).exists():
            result.errors.append(f"{pathlib.Path(raw).as_posix()}: no such file or directory")
    for path in iter_python_files(paths):
        result.files_scanned += 1
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext.from_source(source, path.as_posix())
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.errors.append(f"{path.as_posix()}: {exc}")
            continue
        findings, suppressed = lint_context(ctx, rules, full_run=select is None)
        result.findings.extend(findings)
        result.suppressed += suppressed
    for rule in rules:
        result.findings.extend(rule.finalize())
    result.findings = [
        f for f in result.findings if SEVERITIES.index(f.severity) >= threshold
    ]
    result.findings.sort(key=Finding.sort_key)
    return result
