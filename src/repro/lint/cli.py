"""Command-line front-end for the repro-lint invariant checker.

Invocations (all equivalent)::

    python -m repro.lint src/
    python -m repro.cli lint src/
    repro-lint src/                  # console script

Exit codes: 0 clean, 1 findings, 2 unparseable files or bad usage.
The ``--format=json`` schema is versioned and documented in
``docs/INVARIANTS.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from repro.lint.engine import LintResult, lint_paths
from repro.lint.findings import SEVERITIES
from repro.lint.output import dump_json, render_sarif
from repro.lint.rules import iter_rule_docs

#: Bumped whenever the JSON output shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach repro-lint's arguments (shared with ``repro.cli lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="R001,R002,...",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--min-severity",
        choices=SEVERITIES,
        default="warning",
        help="drop findings below this severity (default: warning, i.e. keep all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & invariant linter for the repro codebase.",
    )
    configure_parser(parser)
    return parser


def render_human(result: LintResult, out: IO[str]) -> None:
    for finding in result.findings:
        print(finding.render(), file=out)
    for error in result.errors:
        print(f"error: {error}", file=out)
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_scanned} file(s)"
        + (f", {result.suppressed} suppressed" if result.suppressed else "")
        + (f", {len(result.errors)} file error(s)" if result.errors else "")
    )
    print(summary, file=out)


def render_json(result: LintResult, out: IO[str]) -> None:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "findings": [f.to_dict() for f in result.findings],
        "errors": list(result.errors),
        "exit_code": result.exit_code(),
    }
    dump_json(payload, out)


def run(args: argparse.Namespace, out: IO[str] | None = None) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if args.list_rules:
        for rule_id, name, severity, summary in iter_rule_docs():
            print(f"{rule_id}  {name:<32} [{severity}] {summary}", file=out)
        return 0
    select = [s.strip() for s in args.select.split(",")] if args.select else None
    try:
        result = lint_paths(args.paths, select=select, min_severity=args.min_severity)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        render_json(result, out)
    elif args.format == "sarif":
        render_sarif(
            result.findings,
            result.errors,
            out,
            tool_name="repro-lint",
            rule_docs=iter_rule_docs(),
        )
    else:
        render_human(result, out)
    return result.exit_code()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
