"""The unit of linter output: one invariant violation at a source location."""

from __future__ import annotations

from dataclasses import dataclass

#: Severities, weakest first.  ``error`` findings gate CI; ``warning``
#: findings still fail the default run (the repo is kept warning-clean) but
#: can be filtered with ``--min-severity=error`` during triage.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """A single rule violation.

    ``file`` is a POSIX-style path as given to the linter (relative when the
    scanned root was relative), ``line``/``col`` are 1-based / 0-based like
    CPython tracebacks and every mainstream linter.
    """

    file: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.file, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict[str, object]:
        """Stable JSON form (documented in docs/INVARIANTS.md)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"
