"""Hygiene rules: failure-masking and interface-drift hazards.

These are not determinism bugs per se, but they are how determinism bugs
*hide*: a swallowed exception in the actuator's self-correction path turns
a hard failure into silent drift, a mutable default argument is shared
state across calls, and un-annotated public interfaces let unit confusion
(credits vs seconds vs dollars) creep across module boundaries.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register


@register
class MutableDefaultRule(Rule):
    """R005: no mutable default arguments.

    A ``def f(xs=[])`` default is created once and shared by every call —
    cross-run state that survives between scenario replays in one process.
    """

    rule_id = "R005"
    name = "no-mutable-defaults"
    severity = "error"
    summary = "mutable default arguments ([], {}, set(), list(), ...) are shared across calls; default to None"

    _MUTABLE_CALLS = frozenset(
        {
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.OrderedDict",
            "collections.deque",
            "collections.Counter",
        }
    )

    def _is_mutable(self, ctx: FileContext, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.qualified(node.func) in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(ctx, default):
                    label = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default argument in {label!r} is evaluated "
                        "once and shared by all calls; use None and "
                        "construct inside the body",
                    )


@register
class SilentExceptRule(Rule):
    """R006: no bare/blanket exception swallowing.

    The monitoring/actuator self-correction loop (§4.4) must *observe*
    failures to back off; ``except: pass`` converts a failed actuation into
    silent divergence between the believed and actual warehouse config.
    """

    rule_id = "R006"
    name = "no-silent-except"
    severity = "error"
    summary = (
        "bare `except:` and `except Exception: pass` swallow failures the "
        "self-correction loop must observe; catch specific errors or re-raise"
    )

    _BLANKET = ("Exception", "BaseException")

    def _is_blanket(self, ctx: FileContext, node: ast.expr | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_blanket(ctx, elt) for elt in node.elts)
        return ctx.qualified(node) in self._BLANKET

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            ):
                continue
            return False
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt; name the exception types",
                )
            elif self._is_blanket(ctx, node.type) and self._swallows(node.body):
                yield ctx.finding(
                    self,
                    node,
                    "`except Exception` whose body only passes swallows "
                    "failures silently; handle, log to the ledger, or re-raise",
                )


@register
class BoundedRetriesRule(Rule):
    """R010: retry loops must be bounded and failures must propagate.

    The robustness layer (docs/ROBUSTNESS.md) handles vendor flakiness with
    *bounded* retries, a circuit breaker, and typed errors.  Two patterns
    defeat it:

    * ``while True:`` with no ``break``/``return`` — an unbounded retry (or
      plain infinite) loop that turns a persistent vendor outage into a hang;
    * ``except Exception`` that neither re-raises nor is a trivial swallow
      (R006 covers those) — work done in a blanket handler hides the typed
      errors (TelemetryError, WarehouseTimeoutError, ...) consumers key off.
    """

    rule_id = "R010"
    name = "bounded-retries"
    severity = "error"
    summary = (
        "retry loops must be bounded (no escape-less `while True:`) and "
        "blanket `except Exception` handlers must re-raise; use RetryPolicy/"
        "CircuitBreaker and typed errors instead"
    )

    _BLANKET = ("Exception", "BaseException")

    @classmethod
    def _has_escape(cls, stmts: list[ast.stmt], in_nested_loop: bool) -> bool:
        """Can control leave the loop via ``break`` (bound here) or ``return``?"""
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # separate scope: its returns/breaks don't exit us
            if isinstance(stmt, ast.Return):
                return True
            if isinstance(stmt, ast.Break) and not in_nested_loop:
                return True
            if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                if cls._has_escape(stmt.body + stmt.orelse, True):
                    return True
            elif isinstance(stmt, ast.Try):
                blocks = stmt.body + stmt.orelse + stmt.finalbody
                for handler in stmt.handlers:
                    blocks = blocks + handler.body
                if cls._has_escape(blocks, in_nested_loop):
                    return True
            elif isinstance(stmt, ast.If):
                if cls._has_escape(stmt.body + stmt.orelse, in_nested_loop):
                    return True
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                if cls._has_escape(stmt.body, in_nested_loop):
                    return True
        return False

    @staticmethod
    def _reraises(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break  # don't credit raises from nested defs
                if isinstance(node, ast.Raise):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.While):
                test = node.test
                infinite = isinstance(test, ast.Constant) and bool(test.value)
                if infinite and not self._has_escape(node.body, False):
                    yield ctx.finding(
                        self,
                        node,
                        "`while True:` with no break/return is an unbounded "
                        "retry loop; bound the attempts (see "
                        "repro.core.actuator.RetryPolicy) or add an escape",
                    )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    continue  # bare except: R006's finding already
                blanket = SilentExceptRule._is_blanket(
                    SilentExceptRule(), ctx, node.type
                )
                if not blanket:
                    continue
                if SilentExceptRule._swallows(node.body):
                    continue  # trivial swallow: R006's finding already
                if not self._reraises(node.body):
                    yield ctx.finding(
                        self,
                        node,
                        "`except Exception` that does work but never "
                        "re-raises hides typed failures (TelemetryError, "
                        "WarehouseTimeoutError, ...) from their consumers; "
                        "catch the specific errors or re-raise",
                    )


@register
class NoPrintInLibraryRule(Rule):
    """R009: no ``print()`` in library code.

    Library modules report through return values and the observability layer
    (``repro.obs``); writing to stdout from deep inside a simulation bypasses
    both, interleaves nondeterministically with CLI output, and cannot be
    asserted on in tests.  The CLI front-ends (``cli.py``, ``__main__.py``)
    and the linter's own reporting are the sanctioned places to print.
    """

    rule_id = "R009"
    name = "no-print-in-library"
    severity = "error"
    summary = (
        "library modules must not call print(); report via return values or "
        "repro.obs — only cli.py/__main__.py and repro/lint may print"
    )

    def _applies(self, path: str) -> bool:
        if "repro/" not in path or "repro/lint/" in path:
            return False
        return pathlib.PurePosixPath(path).name not in ("cli.py", "__main__.py")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self._applies(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    self,
                    node,
                    "print() in library code writes to stdout behind the "
                    "CLI's back; return the value or emit it through "
                    "repro.obs instead",
                )


@register
class ProcessPoolConfinementRule(Rule):
    """R011: process parallelism lives only in ``repro/parallel/``.

    Spawning processes anywhere else breaks the determinism story that
    makes ``workers=N`` safe: ``repro.parallel`` is the one place that
    ships scenarios as :class:`ScenarioSpec` recipes, isolates observation
    sessions per job, and merges payloads in submission order
    (docs/PERFORMANCE.md).  An ad-hoc ``multiprocessing.Pool`` elsewhere
    would fork live simulation state and record into the parent's session
    from several processes at once.
    """

    rule_id = "R011"
    name = "process-pool-confinement"
    severity = "error"
    summary = (
        "multiprocessing / concurrent.futures imports are confined to "
        "repro/parallel — route parallel work through repro.parallel.run_jobs"
    )

    _FORBIDDEN = ("multiprocessing", "concurrent")

    def _applies(self, path: str) -> bool:
        return "repro/" in path and "repro/parallel/" not in path

    @classmethod
    def _forbidden(cls, module: str | None) -> bool:
        if not module:
            return False
        top = module.split(".", 1)[0]
        return top in cls._FORBIDDEN

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self._applies(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names if self._forbidden(a.name)]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module] if self._forbidden(node.module) else []
            else:
                continue
            for name in names:
                yield ctx.finding(
                    self,
                    node,
                    f"import of {name!r} outside repro/parallel: spawn "
                    "worker processes through repro.parallel.run_jobs so "
                    "results stay byte-identical to a serial run",
                )


@register
class PublicAnnotationsRule(Rule):
    """R007: complete type annotations on public functions in the unit-critical
    packages (``core/``, ``costmodel/``, ``warehouse/``).

    These packages pass credits, seconds, and dollars across module
    boundaries; annotations are the only machine-checked record of which
    unit a float is.
    """

    rule_id = "R007"
    name = "public-annotations"
    severity = "error"
    summary = (
        "public functions in repro/core, repro/costmodel, repro/warehouse "
        "must annotate every parameter and the return type"
    )

    SCOPES = ("repro/core/", "repro/costmodel/", "repro/warehouse/")

    def _applies(self, path: str) -> bool:
        return any(scope in path for scope in self.SCOPES)

    @staticmethod
    def _public_functions(
        tree: ast.Module,
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
        """Top-level functions and methods of top-level classes, with an
        is-method flag.  Nested helpers are private by construction."""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, False
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield item, True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self._applies(ctx.path):
            return
        for func, is_method in self._public_functions(ctx.tree):
            name = func.name
            if name.startswith("_") and name != "__init__":
                continue  # private helpers and non-init dunders
            missing: list[str] = []
            params = [*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs]
            if is_method and params and params[0].arg in ("self", "cls"):
                params = params[1:]
            for param in params:
                if param.annotation is None:
                    missing.append(param.arg)
            if func.returns is None and name != "__init__":
                missing.append("return")
            if missing:
                yield ctx.finding(
                    self,
                    func,
                    f"public function {name!r} is missing annotations for: "
                    f"{', '.join(missing)} (units must be explicit at "
                    "package boundaries)",
                )
