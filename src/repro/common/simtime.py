"""Simulation time conventions.

Time is a float number of seconds since the simulation epoch.  The epoch is
anchored at **Monday 00:00** so calendar-aware logic (business hours,
weekday constraints, month-end load) is trivially derivable without real
datetimes.  A simulated "month" is exactly 4 weeks (28 days); workload
generators that model month-end load use ``day_index(t) % 28``.
"""

from __future__ import annotations

from dataclasses import dataclass

MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
MONTH = 28 * DAY

_WEEKDAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def hour_of_day(t: float) -> float:
    """Fractional hour within the day, in [0, 24)."""
    return (t % DAY) / HOUR


def minute_of_day(t: float) -> float:
    """Fractional minute within the day, in [0, 1440)."""
    return (t % DAY) / MINUTE


def day_of_week(t: float) -> int:
    """Weekday index: 0 = Monday ... 6 = Sunday."""
    return int(t // DAY) % 7


def day_index(t: float) -> int:
    """Whole days elapsed since the epoch (day 0 = first Monday)."""
    return int(t // DAY)


def hour_index(t: float) -> int:
    """Whole hours elapsed since the epoch (used for hourly billing rollup)."""
    return int(t // HOUR)


def format_time(t: float) -> str:
    """Human-readable timestamp, e.g. ``'day 3 (Thu) 14:05:09'``."""
    d = day_index(t)
    rem = t - d * DAY
    h = int(rem // HOUR)
    m = int((rem % HOUR) // MINUTE)
    s = int(rem % MINUTE)
    return f"day {d} ({_WEEKDAYS[d % 7]}) {h:02d}:{m:02d}:{s:02d}"


@dataclass(frozen=True)
class Window:
    """A half-open time interval ``[start, end)`` in simulation seconds."""

    start: float
    end: float

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"window end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end

    def overlap(self, other: "Window") -> float:
        """Length of the intersection with ``other`` (0.0 if disjoint)."""
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))

    def clamp(self, t: float) -> float:
        """Clamp a timestamp into the window."""
        return min(max(t, self.start), self.end)

    def split_hours(self) -> list["Window"]:
        """Split the window at hour boundaries (for hourly billing rollups)."""
        pieces: list[Window] = []
        t = self.start
        while t < self.end:
            boundary = (hour_index(t) + 1) * HOUR
            nxt = min(boundary, self.end)
            pieces.append(Window(t, nxt))
            t = nxt
        return pieces
