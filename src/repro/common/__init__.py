"""Shared infrastructure: errors, seeded RNG streams, sim-time helpers, stats.

Everything in :mod:`repro` builds on these primitives.  They are deliberately
small and dependency-free (numpy only) so that the simulator, the cost model
and the learning stack agree on time conventions and randomness.
"""

from repro.common.errors import (
    ConfigurationError,
    ConstraintViolationError,
    InvalidActionError,
    ReproError,
    TelemetryError,
    UnknownWarehouseError,
    WarehouseError,
)
from repro.common.rng import RngRegistry
from repro.common.simtime import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    Window,
    day_index,
    day_of_week,
    format_time,
    hour_index,
    hour_of_day,
    minute_of_day,
)
from repro.common.stats import StreamingStats, ewma, percentile, summarize

__all__ = [
    "ReproError",
    "ConfigurationError",
    "WarehouseError",
    "UnknownWarehouseError",
    "InvalidActionError",
    "ConstraintViolationError",
    "TelemetryError",
    "RngRegistry",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "Window",
    "hour_of_day",
    "minute_of_day",
    "day_of_week",
    "day_index",
    "hour_index",
    "format_time",
    "percentile",
    "ewma",
    "StreamingStats",
    "summarize",
]
