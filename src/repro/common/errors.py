"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  The simulator raises :class:`WarehouseError` subclasses for
vendor-API-style failures (mirroring how a real CDW client surfaces SQL
errors); the optimizer raises :class:`ConstraintViolationError` /
:class:`InvalidActionError` for programming errors in action handling.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class WarehouseError(ReproError):
    """Base class for vendor-API style failures from the CDW simulator."""


class UnknownWarehouseError(WarehouseError):
    """An operation referenced a warehouse name that does not exist."""

    def __init__(self, name: str):
        super().__init__(f"warehouse {name!r} does not exist")
        self.name = name


class WarehouseTimeoutError(WarehouseError):
    """A vendor API call timed out; the write may or may not have landed.

    Callers must read the configuration back to learn what actually
    happened (the actuator's post-apply verification does exactly this).
    """


class ConfigRejectedError(WarehouseError):
    """The service rejected a configuration write (quota, validation, ...)."""


class InjectedFaultError(WarehouseError):
    """A transient vendor failure injected by :mod:`repro.faults`.

    Deliberately a :class:`WarehouseError` subclass: consumers must survive
    it through the same paths that handle real vendor flakiness.
    """


class InvalidActionError(ReproError):
    """An action is malformed or not applicable to the target warehouse."""


class ConstraintViolationError(ReproError):
    """An action would violate a customer constraint that is in force."""


class TelemetryError(ReproError):
    """Telemetry was requested for an invalid window or missing warehouse."""


class RecoveryError(ReproError):
    """A durable artifact failed validation during checkpoint restore.

    Raised for torn journal tails, checksum/framing mismatches, sequence
    gaps, empty or stale snapshots, and ``config_hash`` mismatches.  The
    contract is all-or-nothing: a restore either reconstructs the exact
    pre-crash control-plane state or raises this error — never a silent
    partial restore.
    """
