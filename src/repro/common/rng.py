"""Deterministic named random streams.

Every stochastic component in the library (workload generators, resume-delay
jitter, DQN exploration, ...) draws from its own named child stream of a
single root seed.  This keeps runs bit-reproducible while letting components
consume randomness independently: adding a draw in one component does not
perturb any other component's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """A factory of independent, deterministic numpy Generators.

    Child streams are derived from ``(root_seed, name)`` via SHA-256, so the
    same registry seed always yields the same stream for the same name,
    regardless of creation order.

    Example
    -------
    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("workload.bi").random()
    >>> b = RngRegistry(seed=7).stream("workload.bi").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``.

        Repeated calls with the same name return the *same* generator object,
        so draws advance a single per-name stream.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a whole child registry (e.g. one per simulated customer)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))

    def spawn_seed(self, name: str) -> int:
        """Return a derived integer seed (for components that self-seed)."""
        digest = hashlib.sha256(f"{self.seed}:seed:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"


def fallback_rng(seed: int = 0) -> np.random.Generator:
    """A fixed-seed generator for components constructed without an explicit
    stream (direct unit-test construction, tiny examples).

    Centralised here so generator construction stays confined to this module
    (lint rule R002): components default to ``rng or fallback_rng()`` instead
    of calling ``np.random.default_rng`` themselves.  Bit-identical to
    ``np.random.default_rng(seed)``.
    """
    return np.random.default_rng(seed)
