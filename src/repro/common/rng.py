"""Deterministic named random streams.

Every stochastic component in the library (workload generators, resume-delay
jitter, DQN exploration, ...) draws from its own named child stream of a
single root seed.  This keeps runs bit-reproducible while letting components
consume randomness independently: adding a draw in one component does not
perturb any other component's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """A factory of independent, deterministic numpy Generators.

    Child streams are derived from ``(root_seed, name)`` via SHA-256, so the
    same registry seed always yields the same stream for the same name,
    regardless of creation order.

    Example
    -------
    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("workload.bi").random()
    >>> b = RngRegistry(seed=7).stream("workload.bi").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``.

        Repeated calls with the same name return the *same* generator object,
        so draws advance a single per-name stream.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a whole child registry (e.g. one per simulated customer)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))

    def spawn_seed(self, name: str) -> int:
        """Return a derived integer seed (for components that self-seed)."""
        digest = hashlib.sha256(f"{self.seed}:seed:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def export_states(self, prefixes: tuple[str, ...]) -> dict[str, dict]:
        """Capture bit-generator states for every cached stream under
        ``prefixes``.

        Only *instantiated* streams are exported: a stream that was never
        drawn from will be re-derived identically from ``(seed, name)`` on
        the other side, so omitting it is lossless.  The returned dict is
        JSON-serialisable (PCG64 state is a nest of ints/strings).
        """
        states: dict[str, dict] = {}
        for name in sorted(self._streams):
            if name.startswith(prefixes):
                states[name] = self._streams[name].bit_generator.state
        return states

    def restore_states(self, states: dict[str, dict]) -> None:
        """Overwrite (or create) streams so their bit-generator state matches
        a prior :meth:`export_states` capture exactly.

        ``stream()`` hands out cached generator *objects*, so restoring in
        place also rewinds every component that already holds a reference.
        """
        for name in sorted(states):
            # Name comes from the export capture being rewound, not a new
            # stream identity.
            self.stream(name).bit_generator.state = states[name]  # repro-lint: disable=R003

    def evict(self, prefixes: tuple[str, ...]) -> None:
        """Drop cached streams under ``prefixes``.

        Used by the crash harness: a process death discards the in-memory
        generators, so the next ``stream()`` call re-derives a fresh one
        (which restore then rewinds from the journal).
        """
        for name in [n for n in self._streams if n.startswith(prefixes)]:
            del self._streams[name]

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"


def fallback_rng(seed: int = 0) -> np.random.Generator:
    """A fixed-seed generator for components constructed without an explicit
    stream (direct unit-test construction, tiny examples).

    Centralised here so generator construction stays confined to this module
    (lint rule R002): components default to ``rng or fallback_rng()`` instead
    of calling ``np.random.default_rng`` themselves.  Bit-identical to
    ``np.random.default_rng(seed)``.
    """
    return np.random.default_rng(seed)
