"""Small statistics helpers shared by telemetry, monitoring and dashboards."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile of ``values`` with linear interpolation.

    Returns 0.0 for an empty sequence — KPI code treats "no queries" as a
    zero latency rather than an error, matching dashboard behaviour.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if isinstance(values, np.ndarray):
        arr = np.asarray(values, dtype=float)
    else:
        arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def ewma(values: Iterable[float], alpha: float) -> float:
    """Exponentially-weighted moving average of a value sequence.

    Returns 0.0 for an empty sequence.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out = None
    for v in values:
        out = v if out is None else alpha * v + (1.0 - alpha) * out
    return 0.0 if out is None else float(out)


@dataclass
class StreamingStats:
    """Welford-style streaming mean/variance with min/max tracking."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def zscore(self, value: float) -> float:
        """Z-score of ``value`` against the accumulated distribution.

        A zero-variance stream yields 0.0 (no evidence of anomaly) so spike
        detectors do not fire on constant histories.
        """
        if self.count < 2 or self.std == 0.0:
            return 0.0
        return (value - self.mean) / self.std


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Summary dict (count/mean/p50/p95/p99/max) used by dashboards."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }
