"""Workload generator framework.

A workload is a deterministic (seeded) generator of
:class:`~repro.warehouse.queries.QueryRequest` arrivals over a time window.
Archetypes mirror the workload families the paper keeps contrasting (§2 C5,
§3, §7): recurring ETL, cache-sensitive BI dashboards, and unpredictable
ad-hoc analytics with spikes and month-end load.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import fallback_rng
from repro.common.simtime import DAY, Window
from repro.warehouse.queries import QueryRequest, QueryTemplate


class Workload(abc.ABC):
    """Base class for deterministic workload generators."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    @abc.abstractmethod
    def generate(self, window: Window) -> list[QueryRequest]:
        """Emit all query arrivals inside ``window`` (sorted by time)."""

    @staticmethod
    def _sorted(requests: list[QueryRequest]) -> list[QueryRequest]:
        return sorted(requests, key=lambda r: r.arrival_time)


class CompositeWorkload(Workload):
    """Union of several workloads driving the same warehouse."""

    def __init__(self, parts: Sequence[Workload]):
        if not parts:
            raise ConfigurationError("composite workload needs at least one part")
        # No rng of its own: parts carry their own streams.
        super().__init__(fallback_rng())
        self.parts = list(parts)

    def generate(self, window: Window) -> list[QueryRequest]:
        requests: list[QueryRequest] = []
        for part in self.parts:
            requests.extend(part.generate(window))
        return self._sorted(requests)


def poisson_arrivals(
    rng: np.random.Generator, window: Window, rate_per_hour_fn
) -> list[float]:
    """Sample a non-homogeneous Poisson process by thinning.

    ``rate_per_hour_fn(t)`` gives the instantaneous intensity (queries/hour)
    at simulation time ``t``.  The envelope rate is probed hourly across the
    window, so intensity functions should be piecewise-smooth at sub-hour
    scale.
    """
    probes = np.arange(window.start, window.end + 1, 1800.0)
    lambda_max = max(float(rate_per_hour_fn(t)) for t in probes)
    if lambda_max <= 0:
        return []
    arrivals = []
    t = window.start
    while True:
        t += rng.exponential(3600.0 / lambda_max)
        if t >= window.end:
            break
        if rng.random() < rate_per_hour_fn(t) / lambda_max:
            arrivals.append(t)
    return arrivals


def business_hours_profile(
    t: float, base: float, peak: float, open_hour: float = 8.0, close_hour: float = 18.0
) -> float:
    """Weekday intensity profile: ``base`` off-hours, humped ``peak`` during
    business hours with morning and afternoon maxima; weekends at ``base``."""
    from repro.common.simtime import day_of_week, hour_of_day

    if day_of_week(t) >= 5:
        return base
    h = hour_of_day(t)
    if not open_hour <= h < close_hour:
        return base
    # Two-hump shape: peaks at ~10:30 and ~15:00.
    span = close_hour - open_hour
    x = (h - open_hour) / span
    hump = 0.6 + 0.4 * (np.sin(np.pi * x) ** 2 + 0.5 * np.sin(2 * np.pi * x + 0.4) ** 2) / 1.5
    return base + (peak - base) * float(hump)


def month_end_multiplier(t: float, boost: float = 2.0, days: int = 3) -> float:
    """Load multiplier near the end of the simulated 28-day month."""
    day_in_month = int(t // DAY) % 28
    return boost if day_in_month >= 28 - days else 1.0


def make_partition_universe(prefix: str, n_tables: int, partitions_per_table: int) -> list[tuple[str, ...]]:
    """Per-table partition tuples, the cacheable footprint of each table."""
    return [
        tuple(f"{prefix}.t{table}.p{p}" for p in range(partitions_per_table))
        for table in range(n_tables)
    ]


def sample_table_subset(
    rng: np.random.Generator, universe: list[tuple[str, ...]], n_tables: int, fraction: float
) -> tuple[str, ...]:
    """Pick ``n_tables`` tables and a fraction of each table's partitions."""
    chosen = rng.choice(len(universe), size=min(n_tables, len(universe)), replace=False)
    parts: list[str] = []
    for idx in chosen:
        table = universe[int(idx)]
        k = max(1, int(round(fraction * len(table))))
        start = int(rng.integers(0, max(1, len(table) - k + 1)))
        parts.extend(table[start : start + k])
    return tuple(parts)


def template_bytes(partitions: tuple[str, ...]) -> float:
    """Bytes scanned implied by a partition footprint."""
    from repro.warehouse.cache import PARTITION_BYTES

    return float(len(partitions) * PARTITION_BYTES)


__all__ = [
    "Workload",
    "CompositeWorkload",
    "poisson_arrivals",
    "business_hours_profile",
    "month_end_multiplier",
    "make_partition_universe",
    "sample_table_subset",
    "template_bytes",
    "QueryRequest",
    "QueryTemplate",
]
