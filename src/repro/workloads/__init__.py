"""Synthetic workload generators (the paper's production traces substitute).

Archetypes: recurring ETL pipelines, cache-sensitive BI dashboards, and
unpredictable ad-hoc analytics; plus mixed presets matching the regimes of
the paper's evaluation (§7).
"""

from repro.workloads.adhoc import AdhocWorkload
from repro.workloads.base import (
    CompositeWorkload,
    Workload,
    business_hours_profile,
    make_partition_universe,
    month_end_multiplier,
    poisson_arrivals,
    sample_table_subset,
    template_bytes,
)
from repro.workloads.bi import BiWorkload, DashboardSpec
from repro.workloads.etl import EtlWorkload, PipelineSpec
from repro.workloads.reporting import ReportingWorkload
from repro.workloads.mixed import (
    make_bi_workload,
    make_predictable_workload,
    make_static_etl_workload,
    make_unpredictable_workload,
)

__all__ = [
    "Workload",
    "CompositeWorkload",
    "poisson_arrivals",
    "business_hours_profile",
    "month_end_multiplier",
    "make_partition_universe",
    "sample_table_subset",
    "template_bytes",
    "EtlWorkload",
    "PipelineSpec",
    "BiWorkload",
    "DashboardSpec",
    "AdhocWorkload",
    "ReportingWorkload",
    "make_predictable_workload",
    "make_unpredictable_workload",
    "make_static_etl_workload",
    "make_bi_workload",
]
