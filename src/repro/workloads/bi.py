"""BI dashboard workloads: bursty, business-hours, cache-sensitive.

§3 calls BI out explicitly: "queries in BI workloads tend to access similar
data and therefore are more cache-sensitive".  Each dashboard is a fixed
panel of light queries over a shared set of tables; a *refresh* (user
opening the dashboard, or an auto-refresh) submits the whole panel within a
few seconds.  Refresh arrivals follow a business-hours intensity profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.warehouse.queries import QueryRequest, QueryTemplate
from repro.workloads.base import (
    Workload,
    business_hours_profile,
    make_partition_universe,
    poisson_arrivals,
    sample_table_subset,
    template_bytes,
)


@dataclass
class DashboardSpec:
    """One dashboard: a panel of templates refreshed together."""

    name: str
    panel: list[QueryTemplate]
    refreshes_per_hour_peak: float
    refreshes_per_hour_base: float = 0.2
    #: Spread of panel query submissions within one refresh (seconds).
    panel_spread_seconds: float = 4.0


class BiWorkload(Workload):
    """A set of dashboards sharing a table universe (hence a shared cache
    footprint — exactly what makes suspend decisions delicate for BI)."""

    def __init__(self, rng: np.random.Generator, dashboards: list[DashboardSpec]):
        super().__init__(rng)
        if not dashboards:
            raise ConfigurationError("BI workload needs at least one dashboard")
        self.dashboards = dashboards

    @classmethod
    def synthesize(
        cls,
        rng: np.random.Generator,
        n_dashboards: int = 6,
        panels_per_dashboard: int = 8,
        peak_refreshes_per_hour: float = 6.0,
        base_work_range: tuple[float, float] = (2.0, 30.0),
        name_prefix: str = "bi",
    ) -> "BiWorkload":
        """Seeded random BI workload over a shared 12-table universe."""
        universe = make_partition_universe(name_prefix, n_tables=12, partitions_per_table=16)
        dashboards = []
        for d in range(n_dashboards):
            panel = []
            for q in range(panels_per_dashboard):
                parts = sample_table_subset(rng, universe, n_tables=2, fraction=0.6)
                panel.append(
                    QueryTemplate(
                        name=f"{name_prefix}.d{d}.q{q}",
                        base_work_seconds=float(rng.uniform(*base_work_range)),
                        scale_exponent=float(rng.uniform(0.5, 0.85)),
                        bytes_scanned=template_bytes(parts),
                        partitions=parts,
                        cold_multiplier=float(rng.uniform(2.0, 4.0)),
                    )
                )
            dashboards.append(
                DashboardSpec(
                    name=f"{name_prefix}.d{d}",
                    panel=panel,
                    refreshes_per_hour_peak=float(
                        rng.uniform(0.5, 1.0) * peak_refreshes_per_hour
                    ),
                )
            )
        return cls(rng, dashboards)

    def generate(self, window: Window) -> list[QueryRequest]:
        requests: list[QueryRequest] = []
        for dashboard in self.dashboards:
            refresh_times = poisson_arrivals(
                self.rng,
                window,
                lambda t, d=dashboard: business_hours_profile(
                    t, d.refreshes_per_hour_base, d.refreshes_per_hour_peak
                ),
            )
            for refresh_idx, refresh_at in enumerate(refresh_times):
                for template in dashboard.panel:
                    offset = float(self.rng.uniform(0.0, dashboard.panel_spread_seconds))
                    t = refresh_at + offset
                    if not window.contains(t):
                        continue
                    requests.append(
                        QueryRequest(
                            template=template,
                            arrival_time=t,
                            # Dashboards re-issue the *same* SQL text every
                            # refresh: identical text hashes over time, which
                            # the latency model exploits (footnote 4).
                            instance_key=dashboard.name,
                        )
                    )
        return self._sorted(requests)
