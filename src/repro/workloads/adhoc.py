"""Ad-hoc analytics workloads: unpredictable load with spikes and month-end
pressure.

This is the "significantly larger load near the month end" analyst
archetype of §2 C5 and the fluctuating warehouse of Figure 4a.  Arrivals are
a non-homogeneous Poisson process whose intensity combines a business-hours
profile, random *spike days* (e.g. an incident investigation), and a
month-end multiplier.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.common.simtime import DAY, Window, day_index
from repro.warehouse.queries import QueryRequest, QueryTemplate
from repro.workloads.base import (
    Workload,
    business_hours_profile,
    make_partition_universe,
    month_end_multiplier,
    poisson_arrivals,
    sample_table_subset,
    template_bytes,
)


class AdhocWorkload(Workload):
    """Unpredictable analyst queries."""

    def __init__(
        self,
        rng: np.random.Generator,
        templates: list[QueryTemplate],
        peak_rate_per_hour: float = 20.0,
        base_rate_per_hour: float = 0.5,
        spike_probability_per_day: float = 0.15,
        spike_multiplier: float = 4.0,
        month_end_boost: float = 2.0,
        #: Zipf-ish skew: analysts re-run a few favourite query shapes a lot.
        template_skew: float = 1.3,
    ):
        super().__init__(rng)
        self.templates = templates
        self.peak_rate_per_hour = peak_rate_per_hour
        self.base_rate_per_hour = base_rate_per_hour
        self.spike_probability_per_day = spike_probability_per_day
        self.spike_multiplier = spike_multiplier
        self.month_end_boost = month_end_boost
        weights = 1.0 / np.arange(1, len(templates) + 1) ** template_skew
        self._weights = weights / weights.sum()
        # Stable key for day-level spike draws (consumed once, deterministic).
        self._spike_seed = int(self.rng.integers(0, 2**31))

    @classmethod
    def synthesize(
        cls,
        rng: np.random.Generator,
        n_templates: int = 40,
        name_prefix: str = "adhoc",
        **kwargs,
    ) -> "AdhocWorkload":
        """Seeded random ad-hoc workload with very heterogeneous templates."""
        universe = make_partition_universe(name_prefix, n_tables=30, partitions_per_table=20)
        templates = []
        for i in range(n_templates):
            parts = sample_table_subset(
                rng, universe, n_tables=int(rng.integers(1, 5)), fraction=float(rng.uniform(0.2, 0.8))
            )
            templates.append(
                QueryTemplate(
                    name=f"{name_prefix}.q{i}",
                    # Lognormal work: most queries light, a heavy tail of big scans.
                    base_work_seconds=float(np.clip(rng.lognormal(2.5, 1.1), 1.0, 600.0)),
                    scale_exponent=float(rng.uniform(0.3, 1.0)),
                    bytes_scanned=template_bytes(parts),
                    partitions=parts,
                    cold_multiplier=float(rng.uniform(1.4, 2.6)),
                )
            )
        return cls(rng, templates, **kwargs)

    def _spike_days(self, window: Window) -> set[int]:
        """Deterministically sample which days in the window spike.

        Day-level draws use a child generator keyed only by the day index so
        the same day spikes (or not) regardless of the queried window.
        """
        days = set()
        for day in range(day_index(window.start), day_index(window.end - 1e-9) + 1):
            digest = hashlib.sha256(f"spike:{self._spike_seed}:{day}".encode()).digest()
            draw = int.from_bytes(digest[:8], "little") / 2**64
            if draw < self.spike_probability_per_day:
                days.add(day)
        return days

    def generate(self, window: Window) -> list[QueryRequest]:
        spikes = self._spike_days(window)

        def intensity(t: float) -> float:
            rate = business_hours_profile(t, self.base_rate_per_hour, self.peak_rate_per_hour)
            if day_index(t) in spikes:
                rate *= self.spike_multiplier
            rate *= month_end_multiplier(t, self.month_end_boost)
            return rate

        arrivals = poisson_arrivals(self.rng, window, intensity)
        requests = []
        for i, t in enumerate(arrivals):
            template = self.templates[
                int(self.rng.choice(len(self.templates), p=self._weights))
            ]
            requests.append(
                QueryRequest(
                    template=template,
                    arrival_time=t,
                    # Ad-hoc queries vary their constants: unique text hash
                    # per submission, but a stable template hash.
                    instance_key=f"run{day_index(t)}:{i}",
                )
            )
        return self._sorted(requests)
