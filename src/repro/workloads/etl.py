"""Recurring ETL workloads: scheduled pipelines of chained steps.

ETL is the "highly-recurring query pattern" archetype of §2 C5 and the
static workload of Figure 6: the same pipelines run at the same times every
day, each pipeline being a chain of dependent steps (step *i+1* is submitted
when step *i* finishes).  Chained arrivals matter to the cost model's gap
analysis (§5.2): their inter-arrival gaps shift when latencies change, while
independent arrivals do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, day_index
from repro.common.simtime import Window
from repro.warehouse.queries import QueryRequest, QueryTemplate
from repro.workloads.base import (
    Workload,
    make_partition_universe,
    sample_table_subset,
    template_bytes,
)


@dataclass
class PipelineSpec:
    """One recurring pipeline: a chain of steps launched at fixed times."""

    name: str
    steps: list[QueryTemplate]
    #: Seconds-of-day at which the pipeline launches (may repeat daily).
    launch_times: list[float]
    #: Expected per-step duration used to space chained arrivals, plus slack.
    step_gap_slack: float = 5.0
    #: Which weekdays the pipeline runs on (default: every day).
    weekdays: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6)
    #: Reference size the expected durations are computed against.
    expected_speedup: float = field(default=4.0)  # ~Medium


class EtlWorkload(Workload):
    """A set of recurring pipelines."""

    def __init__(self, rng: np.random.Generator, pipelines: list[PipelineSpec]):
        super().__init__(rng)
        if not pipelines:
            raise ConfigurationError("ETL workload needs at least one pipeline")
        self.pipelines = pipelines

    @classmethod
    def synthesize(
        cls,
        rng: np.random.Generator,
        n_pipelines: int = 4,
        steps_per_pipeline: int = 5,
        launches_per_day: int = 2,
        base_work_range: tuple[float, float] = (120.0, 900.0),
        name_prefix: str = "etl",
        evenly_spaced: bool = False,
    ) -> "EtlWorkload":
        """Build a random-but-seeded ETL workload.

        Step templates are heavy, highly parallelizable (scale exponent near
        1) and only mildly cache sensitive — fresh data is read every run,
        so cold caches barely matter; this is exactly why aggressive suspend
        works well on ETL warehouses.
        """
        universe = make_partition_universe(name_prefix, n_tables=20, partitions_per_table=24)
        pipelines = []
        for p in range(n_pipelines):
            steps = []
            for s in range(steps_per_pipeline):
                base = float(rng.uniform(*base_work_range))
                steps.append(
                    QueryTemplate(
                        name=f"{name_prefix}.p{p}.s{s}",
                        base_work_seconds=base,
                        scale_exponent=float(rng.uniform(0.85, 1.0)),
                        bytes_scanned=template_bytes(
                            parts := sample_table_subset(rng, universe, 3, 0.5)
                        ),
                        partitions=parts,
                        cold_multiplier=float(rng.uniform(1.1, 1.4)),
                    )
                )
            if evenly_spaced:
                # Orchestrator-style cron schedule: evenly spread across the
                # day with a fixed per-pipeline phase (static hourly load,
                # the Figure 6 regime).
                phase = float(rng.uniform(0, 24 / launches_per_day)) * HOUR
                spacing = DAY / launches_per_day
                launch_times = [phase + k * spacing for k in range(launches_per_day)]
            else:
                launch_times = sorted(
                    float(rng.uniform(0, 24)) * HOUR for _ in range(launches_per_day)
                )
            pipelines.append(
                PipelineSpec(name=f"{name_prefix}.p{p}", steps=steps, launch_times=launch_times)
            )
        return cls(rng, pipelines)

    def generate(self, window: Window) -> list[QueryRequest]:
        requests: list[QueryRequest] = []
        first_day = day_index(window.start)
        last_day = day_index(max(window.start, window.end - 1e-9))
        for day in range(first_day, last_day + 1):
            for pipeline in self.pipelines:
                if day % 7 not in pipeline.weekdays:
                    continue
                for launch in pipeline.launch_times:
                    requests.extend(self._emit_chain(pipeline, day * DAY + launch, window, day))
        return self._sorted(requests)

    def _emit_chain(
        self, pipeline: PipelineSpec, launch_at: float, window: Window, day: int
    ) -> list[QueryRequest]:
        # Small launch jitter: orchestrators never fire at the exact second.
        t = launch_at + float(self.rng.normal(0.0, 20.0))
        out: list[QueryRequest] = []
        for i, step in enumerate(pipeline.steps):
            if window.contains(t):
                out.append(
                    QueryRequest(
                        template=step,
                        arrival_time=t,
                        instance_key=f"{pipeline.name}:{day}:{launch_at:.0f}",
                        chained=i > 0,
                    )
                )
            expected = step.base_work_seconds / (pipeline.expected_speedup**step.scale_exponent)
            t += expected + pipeline.step_gap_slack
        return out
