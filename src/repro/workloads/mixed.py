"""Convenience constructors for the mixed workloads used across experiments."""

from __future__ import annotations

from repro.common.rng import RngRegistry
from repro.workloads.adhoc import AdhocWorkload
from repro.workloads.base import CompositeWorkload, Workload
from repro.workloads.bi import BiWorkload
from repro.workloads.etl import EtlWorkload


def make_predictable_workload(rngs: RngRegistry, intensity: float = 1.0) -> Workload:
    """A steady, recurring mix (Figure 4b's "predictable" warehouse):
    dominated by scheduled ETL with a modest, regular BI overlay."""
    etl = EtlWorkload.synthesize(
        rngs.stream("workload.etl"),
        n_pipelines=max(1, int(round(5 * intensity))),
        steps_per_pipeline=6,
        launches_per_day=3,
    )
    bi = BiWorkload.synthesize(
        rngs.stream("workload.bi"),
        n_dashboards=3,
        peak_refreshes_per_hour=3.0 * intensity,
    )
    return CompositeWorkload([etl, bi])


def make_unpredictable_workload(rngs: RngRegistry, intensity: float = 1.0) -> Workload:
    """A fluctuating analyst mix (Figure 4a's "less predictable" warehouse):
    spiky ad-hoc load with a small BI component and no fixed schedule."""
    adhoc = AdhocWorkload.synthesize(
        rngs.stream("workload.adhoc"),
        peak_rate_per_hour=18.0 * intensity,
        spike_probability_per_day=0.25,
        spike_multiplier=4.0,
    )
    bi = BiWorkload.synthesize(
        # Same name as in make_predictable_workload: every caller passes a
        # builder-private RngRegistry, so the streams never share a registry.
        rngs.stream("workload.bi"),  # repro-lint: disable=R003
        n_dashboards=2,
        peak_refreshes_per_hour=2.0 * intensity,
    )
    return CompositeWorkload([adhoc, bi])


def make_static_etl_workload(rngs: RngRegistry, launches_per_day: int = 24) -> Workload:
    """Hourly ETL with near-constant load (Figure 6's warehouse)."""
    return EtlWorkload.synthesize(
        # Reuses the canonical ETL stream name under a caller-private registry
        # (see make_unpredictable_workload's note).
        rngs.stream("workload.etl"),  # repro-lint: disable=R003
        n_pipelines=3,
        steps_per_pipeline=4,
        launches_per_day=launches_per_day,
        base_work_range=(60.0, 240.0),
        evenly_spaced=True,
    )


def make_bi_workload(rngs: RngRegistry, intensity: float = 1.0) -> Workload:
    """Pure dashboard traffic (cache-sensitivity stress; slider experiments)."""
    return BiWorkload.synthesize(
        # Reuses the canonical BI stream name under a caller-private registry
        # (see make_unpredictable_workload's note).
        rngs.stream("workload.bi"),  # repro-lint: disable=R003
        n_dashboards=6,
        peak_refreshes_per_hour=6.0 * intensity,
    )
