"""Scheduled reporting workloads.

§2 C2 contrasts reporting applications against BI: "a reporting application
may be able to tolerate slightly longer query latencies".  Reports are
heavy, scheduled scans — daily operational reports at fixed times, plus
weekly executive rollups — with no interactive user staring at a spinner.
Their tolerance for latency (and their predictable schedule) makes them the
easiest workload to run cheaply: a cost-leaning slider can downsize the
warehouse without anyone noticing.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, Window, day_index
from repro.warehouse.queries import QueryRequest, QueryTemplate
from repro.workloads.base import (
    Workload,
    make_partition_universe,
    sample_table_subset,
    template_bytes,
)


class ReportingWorkload(Workload):
    """Daily and weekly scheduled reports."""

    def __init__(
        self,
        rng: np.random.Generator,
        daily_reports: list[QueryTemplate],
        weekly_reports: list[QueryTemplate],
        daily_at_hour: float = 6.0,
        weekly_weekday: int = 0,
        weekly_at_hour: float = 5.0,
        submit_spread_seconds: float = 120.0,
    ):
        super().__init__(rng)
        if not daily_reports and not weekly_reports:
            raise ConfigurationError("reporting workload needs at least one report")
        if not 0 <= weekly_weekday <= 6:
            raise ConfigurationError("weekly_weekday must be 0..6")
        self.daily_reports = daily_reports
        self.weekly_reports = weekly_reports
        self.daily_at_hour = daily_at_hour
        self.weekly_weekday = weekly_weekday
        self.weekly_at_hour = weekly_at_hour
        self.submit_spread_seconds = submit_spread_seconds

    @classmethod
    def synthesize(
        cls,
        rng: np.random.Generator,
        n_daily: int = 6,
        n_weekly: int = 3,
        base_work_range: tuple[float, float] = (60.0, 400.0),
        name_prefix: str = "report",
        **kwargs,
    ) -> "ReportingWorkload":
        """Seeded reporting suite over a shared fact-table universe.

        Reports scan wide (many partitions) but tolerate cold reads — they
        run before anyone is at their desk — so cold multipliers are low
        and scale exponents high (full scans parallelize well).
        """
        universe = make_partition_universe(name_prefix, n_tables=10, partitions_per_table=32)

        def make(name: str) -> QueryTemplate:
            parts = sample_table_subset(rng, universe, n_tables=3, fraction=0.8)
            return QueryTemplate(
                name=name,
                base_work_seconds=float(rng.uniform(*base_work_range)),
                scale_exponent=float(rng.uniform(0.85, 1.0)),
                bytes_scanned=template_bytes(parts),
                partitions=parts,
                cold_multiplier=float(rng.uniform(1.1, 1.3)),
            )

        return cls(
            rng,
            daily_reports=[make(f"{name_prefix}.daily{i}") for i in range(n_daily)],
            weekly_reports=[make(f"{name_prefix}.weekly{i}") for i in range(n_weekly)],
            **kwargs,
        )

    def generate(self, window: Window) -> list[QueryRequest]:
        requests: list[QueryRequest] = []
        first_day = day_index(window.start)
        last_day = day_index(max(window.start, window.end - 1e-9))
        for day in range(first_day, last_day + 1):
            day_start = day * DAY
            requests.extend(
                self._emit(self.daily_reports, day_start + self.daily_at_hour * HOUR, window, day)
            )
            if day % 7 == self.weekly_weekday:
                requests.extend(
                    self._emit(
                        self.weekly_reports, day_start + self.weekly_at_hour * HOUR, window, day
                    )
                )
        return self._sorted(requests)

    def _emit(
        self, reports: list[QueryTemplate], at: float, window: Window, day: int
    ) -> list[QueryRequest]:
        out = []
        for template in reports:
            t = at + float(self.rng.uniform(0.0, self.submit_spread_seconds))
            if window.contains(t):
                out.append(
                    QueryRequest(
                        template=template,
                        arrival_time=t,
                        # The same report re-runs the same SQL every schedule.
                        instance_key=f"day{day}",
                    )
                )
        return out
