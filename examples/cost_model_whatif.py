"""The warehouse cost model as a standalone what-if tool (paper §5).

Even without the optimizer, the cost model answers the question every data
team asks: *what would this warehouse cost under different settings?*  This
example fits the model on real (simulated) telemetry, then sweeps sizes and
auto-suspend intervals, printing predicted credits and average latency per
configuration — plus the model's accuracy against the actually billed
credits for the fitted configuration.

Run:  python examples/cost_model_whatif.py
"""

from repro import Account, WarehouseConfig, WarehouseCostModel, WarehouseSize
from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, Window
from repro.warehouse.api import CloudWarehouseClient
from repro.workloads import make_predictable_workload


def main() -> None:
    account = Account(name="whatif", seed=71)
    config = WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=600.0, max_clusters=2)
    account.create_warehouse("WH", config)
    workload = make_predictable_workload(RngRegistry(72), intensity=1.5)
    account.schedule_workload("WH", workload.generate(Window(0, 4 * DAY)))
    account.run_until(4 * DAY)

    client = CloudWarehouseClient(account, actor="keebo")
    window = Window(0, 4 * DAY)
    model = WarehouseCostModel(client, "WH").fit(window)

    actual = model.actual_credits(window)
    baseline = model.estimate_cost(window, config)
    print(f"actual billed credits:    {actual:8.1f}")
    print(f"replayed at same config:  {baseline.credits:8.1f} "
          f"(relative error {abs(baseline.credits - actual) / actual:.2%})")
    print()

    from repro.experiments import cheapest_within_latency, pareto_frontier, sweep_configs

    points = sweep_configs(
        model,
        window,
        config,
        sizes=[WarehouseSize.S, WarehouseSize.M, WarehouseSize.L, WarehouseSize.XL],
        suspends=[60.0, 300.0, 600.0],
    )
    print("what-if sweep (4 days of this workload):")
    print(f"{'size':>9} {'suspend':>8} {'credits':>9} {'vs actual':>10} {'avg lat':>8}")
    for p in points:
        delta = p.credits / actual - 1.0
        print(
            f"{p.config.size.label:>9} {p.config.auto_suspend_seconds:>7.0f}s "
            f"{p.credits:>9.1f} {delta:>+10.1%} {p.result.avg_latency:>7.2f}s"
        )
    print()

    best = cheapest_within_latency(points, max_latency_factor=1.2)
    print(
        f"cheapest configuration within 1.2x of today's latency: "
        f"{best.config.describe()} -> {best.credits:.1f} credits "
        f"({1 - best.credits / actual:.1%} cheaper)"
    )
    frontier = pareto_frontier(points)
    print(f"Pareto frontier ({len(frontier)} points, cheap->fast):")
    for p in frontier:
        print(
            f"  {p.config.describe():<48} {p.credits:>8.1f} credits, "
            f"latency x{p.latency_factor:.2f}"
        )

    # Bonus what-if: the same telemetry under scan-based (BigQuery-style)
    # on-demand pricing — the §5 extensibility point.
    from repro.costmodel import compare_engines

    records = client.query_history("WH", window)
    comparison = compare_engines(records, actual, window, account.price_per_credit)
    print()
    print("cross-engine what-if (same telemetry, different billing scheme):")
    print(f"  warehouse (time-billed):  ${comparison.warehouse_dollars:10.2f}")
    print(f"  on-demand (scan-billed):  ${comparison.ondemand_dollars:10.2f}")
    print(
        f"  cheaper engine for this workload: {comparison.cheaper_engine} "
        f"(saves {comparison.savings_fraction:.1%})"
    )
    print(
        "  (the synthetic templates are compute-heavy and scan-light, which"
        " flatters scan-based pricing; the point is the mechanism, not the gap)"
    )


if __name__ == "__main__":
    main()
