"""BI dashboards and the cost/performance slider (paper §4.1, §7.4).

Runs the same dashboard-heavy workload at three slider positions and prints
the trade-off a customer would see: the "Lowest Cost" position accepts
slower dashboards for a smaller bill; "Best Performance" keeps the
warehouse warm and sized for snappy refreshes.

Run:  python examples/bi_dashboards_slider.py
"""

import numpy as np

from repro import (
    Account,
    KeeboService,
    OptimizerConfig,
    SliderPosition,
    WarehouseConfig,
    WarehouseSize,
)
from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, Window
from repro.common.stats import percentile
from repro.warehouse.api import CloudWarehouseClient
from repro.workloads import make_bi_workload


def run_at(slider: SliderPosition) -> dict:
    account = Account(name=f"bi-{int(slider)}", seed=55)
    account.create_warehouse(
        "BI_WH",
        WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=3),
    )
    workload = make_bi_workload(RngRegistry(56), intensity=1.2)
    account.schedule_workload("BI_WH", workload.generate(Window(0, 7 * DAY)))
    account.run_until(3 * DAY)
    service = KeeboService(account)
    service.onboard_warehouse(
        "BI_WH",
        slider=slider,
        config=OptimizerConfig(onboarding_episodes=5, retrain_episodes=0, confidence_tau=0.0),
    )
    account.run_until(7 * DAY)
    window = Window(3 * DAY, 7 * DAY)
    client = CloudWarehouseClient(account)
    records = client.query_history("BI_WH", window)
    latencies = [r.total_seconds for r in records]
    return {
        "credits": client.credits_in_window("BI_WH", window),
        "avg": float(np.mean(latencies)),
        "p99": percentile(latencies, 99),
        "cold": float(np.mean([1 - r.cache_hit_ratio for r in records])),
    }


def main() -> None:
    positions = [
        SliderPosition.LOWEST_COST,
        SliderPosition.BALANCED,
        SliderPosition.BEST_PERFORMANCE,
    ]
    print(f"{'slider':>18} {'credits':>9} {'avg lat':>8} {'p99':>8} {'cold reads':>11}")
    results = {}
    for position in positions:
        r = run_at(position)
        results[position] = r
        print(
            f"{position.label:>18} {r['credits']:>9.1f} {r['avg']:>7.2f}s "
            f"{r['p99']:>7.1f}s {r['cold']:>10.1%}"
        )
    print()
    cheap = results[SliderPosition.LOWEST_COST]
    fast = results[SliderPosition.BEST_PERFORMANCE]
    print(
        f"moving the slider from Best Performance to Lowest Cost cuts the bill by "
        f"{1 - cheap['credits'] / fast['credits']:.1%} and slows average dashboards by "
        f"{cheap['avg'] / fast['avg'] - 1:.1%}"
    )


if __name__ == "__main__":
    main()
