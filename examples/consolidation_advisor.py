"""Warehouse consolidation analysis (paper §1's optimization catalogue).

Scenario: an organization where three teams each provisioned their own
Medium warehouse.  Team A and Team B run light, interleaving traffic all
day — individually each warehouse pays a full auto-suspend tail per query;
together they would keep one warehouse continuously warm.  Team C runs a
heavy nightly batch that genuinely needs its own capacity.

The advisor fits the cost model on each warehouse's telemetry, what-ifs
every pairwise merge, and recommends only the merges that save credits
without exceeding the latency tolerance.

Run:  python examples/consolidation_advisor.py
"""

from repro import Account, WarehouseConfig, WarehouseSize
from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, HOUR, Window
from repro.core.consolidation import ConsolidationAdvisor
from repro.warehouse.api import CloudWarehouseClient
from repro.workloads import AdhocWorkload, EtlWorkload


def main() -> None:
    account = Account(name="multi-team", seed=91)
    for team in ("TEAM_A_WH", "TEAM_B_WH", "TEAM_C_WH"):
        account.create_warehouse(
            team,
            WarehouseConfig(size=WarehouseSize.M, auto_suspend_seconds=300.0, max_clusters=2),
        )

    registry = RngRegistry(92)
    # Teams A and B: light all-day dashboards/queries that interleave.
    for team, stream in (("TEAM_A_WH", "a"), ("TEAM_B_WH", "b")):
        light = AdhocWorkload.synthesize(
            # One stream per team; the loop tuple guarantees distinct suffixes.
            registry.stream(f"workload.{stream}"),  # repro-lint: disable=R003
            n_templates=10,
            peak_rate_per_hour=12.0,
            base_rate_per_hour=4.0,
            spike_probability_per_day=0.0,
            month_end_boost=1.0,
        )
        account.schedule_workload(team, light.generate(Window(0, 3 * DAY)))
    # Team C: heavy nightly ETL.
    etl = EtlWorkload.synthesize(
        registry.stream("workload.c"),
        n_pipelines=3,
        steps_per_pipeline=6,
        launches_per_day=1,
        base_work_range=(300.0, 900.0),
    )
    account.schedule_workload("TEAM_C_WH", etl.generate(Window(0, 3 * DAY)))
    account.run_until(3 * DAY + HOUR)

    client = CloudWarehouseClient(account, actor="keebo")
    window = Window(0, 3 * DAY)
    print("current spend per warehouse:")
    for team in ("TEAM_A_WH", "TEAM_B_WH", "TEAM_C_WH"):
        print(f"  {team}: {client.credits_in_window(team, window):8.1f} credits")
    print()

    advisor = ConsolidationAdvisor(client, max_latency_factor=1.15)
    recommendations = advisor.analyze(
        ["TEAM_A_WH", "TEAM_B_WH", "TEAM_C_WH"], window
    )
    if not recommendations:
        print("no profitable, latency-safe merges found")
        return
    print("recommended consolidations (best first):")
    for rec in recommendations:
        print(f"  {rec.describe()}")
        for team, factor in rec.latency_factors.items():
            print(f"      {team}: predicted avg latency x{factor:.2f}")
    best = recommendations[0]
    print()
    print(
        f"top recommendation saves {best.savings_credits:.1f} credits "
        f"({best.savings_fraction:.1%}) over this 3-day window"
    )


if __name__ == "__main__":
    main()
