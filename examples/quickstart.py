"""Quickstart: optimize one warehouse end to end.

Builds a simulated account with an over-provisioned warehouse, drives three
days of analyst traffic, onboards Keebo Warehouse Optimization, runs three
more days, and prints the before/after dashboard plus the value-based
invoice.

Run:  python examples/quickstart.py
"""

from repro import Account, KeeboService, OptimizerConfig, WarehouseConfig, WarehouseSize
from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, Window
from repro.portal import render_savings, savings_dashboard
from repro.warehouse.api import CloudWarehouseClient
from repro.workloads import make_unpredictable_workload


def main() -> None:
    # 1. A customer account with one over-provisioned warehouse: X-Large,
    #    a one-hour auto-suspend, up to 4 clusters.
    account = Account(name="acme", seed=7, price_per_credit=3.0)
    account.create_warehouse(
        "ANALYTICS_WH",
        WarehouseConfig(size=WarehouseSize.XL, auto_suspend_seconds=3600.0, max_clusters=4),
    )

    # 2. Six days of spiky analyst traffic (arrivals are scheduled up front;
    #    the discrete-event simulator executes them as time advances).
    workload = make_unpredictable_workload(RngRegistry(11))
    account.schedule_workload("ANALYTICS_WH", workload.generate(Window(0, 6 * DAY)))

    # 3. Run three days without Keebo -- this is the baseline period.
    account.run_until(3 * DAY)

    # 4. Onboard KWO: it reads telemetry, fits the cost model, trains the
    #    smart model offline, and starts the real-time decision loop.
    service = KeeboService(account, fee_fraction=0.3)
    optimizer = service.onboard_warehouse(
        "ANALYTICS_WH",
        config=OptimizerConfig(onboarding_episodes=6, retrain_episodes=0, confidence_tau=0.0),
    )

    # 5. Run three optimized days.
    account.run_until(6 * DAY)

    # 6. Inspect the results the way a customer would: daily dashboard,
    #    savings estimate, and the value-based invoice.
    client = CloudWarehouseClient(account)
    dashboard = savings_dashboard(client, "ANALYTICS_WH", Window(0, 6 * DAY), 3 * DAY)
    print(render_savings(dashboard))
    print()
    invoice = service.invoice("ANALYTICS_WH", Window(3 * DAY, 6 * DAY))
    print(f"estimated without-Keebo cost: {invoice.without_keebo_credits:8.1f} credits")
    print(f"actual with-Keebo cost:       {invoice.with_keebo_credits:8.1f} credits")
    print(f"savings:                      {invoice.savings_credits:8.1f} credits")
    print(f"Keebo fee (30% of savings):   ${invoice.fee_dollars:8.2f}")
    print(f"customer net benefit:         ${invoice.customer_net_benefit_dollars:8.2f}")
    print()
    print(f"decision mix: {optimizer.decision_counts()}")


if __name__ == "__main__":
    main()
