"""ETL warehouse with hard business constraints (paper §4.1 "Constraints").

Scenario: a nightly-and-hourly ETL warehouse where the data team has two
hard rules, mirroring the paper's examples:

  1. weekday mornings 9:00-9:30 the warehouse must be at least Large with
     a minimum of 2 clusters (the BI refresh rides on it);
  2. on the last day of the (28-day) month it must never be downsized,
     even if underutilized (month-end closing jobs).

KWO optimizes around the rules and the example verifies from telemetry that
no Keebo-initiated change ever violated them.

Run:  python examples/etl_pipeline_constraints.py
"""

from repro import (
    Account,
    ConstraintRule,
    ConstraintSet,
    KeeboService,
    OptimizerConfig,
    WarehouseConfig,
    WarehouseSize,
)
from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, Window, day_of_week, hour_of_day
from repro.portal import actions_dashboard, render_actions
from repro.workloads import make_predictable_workload


def main() -> None:
    account = Account(name="etl-shop", seed=31)
    account.create_warehouse(
        "ETL_WH",
        WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=900.0, max_clusters=3),
    )
    workload = make_predictable_workload(RngRegistry(32), intensity=1.2)
    account.schedule_workload("ETL_WH", workload.generate(Window(0, 8 * DAY)))

    rules = ConstraintSet(
        [
            ConstraintRule(
                "bi-morning-floor",
                weekdays=(0, 1, 2, 3, 4),
                start_hour=9.0,
                end_hour=9.5,
                min_size=WarehouseSize.L,
                min_clusters=2,
            ),
            ConstraintRule(
                "month-end-no-downsize",
                month_days=(27, 28),
                allow_downsize=False,
            ),
        ]
    )

    account.run_until(3 * DAY)
    service = KeeboService(account)
    optimizer = service.onboard_warehouse(
        "ETL_WH",
        constraints=rules,
        config=OptimizerConfig(onboarding_episodes=5, retrain_episodes=0, confidence_tau=0.0),
    )
    account.run_until(8 * DAY)

    print(render_actions(actions_dashboard(optimizer, Window(3 * DAY, 8 * DAY))))
    print()

    # Audit every Keebo-initiated configuration change against the rules.
    violations = 0
    for snap in account.telemetry.config_history("ETL_WH"):
        if snap.initiator != "keebo":
            continue
        in_morning = (
            day_of_week(snap.time) < 5 and 9.0 <= hour_of_day(snap.time) < 9.5
        )
        if in_morning and (snap.config.size < WarehouseSize.L or snap.config.max_clusters < 2):
            violations += 1
    print(f"constraint violations found in telemetry audit: {violations}")
    assert violations == 0, "KWO must never violate an active rule"

    floors = [d for d in optimizer.decisions if d.kind.value == "constraint_floor"]
    print(f"times KWO proactively lifted resources to satisfy a rule: {len(floors)}")
    savings = optimizer.estimate_savings(Window(3 * DAY, 8 * DAY))
    print(f"savings despite the rules: {savings.savings_fraction:.1%}")


if __name__ == "__main__":
    main()
