"""Setup shim: the offline environment lacks the `wheel` package, so PEP 660
editable installs fail; this file enables pip's legacy `setup.py develop`
path.  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
